"""The software trace cache (Section 4.2, item 3).

"It also lets us develop an aggressive optimization strategy that
operates on traces of LLVA code corresponding to the hot traces of
native code.  We have implemented the tracing strategy and software
trace cache, including the ability to gather cross-procedure traces."

Traces are formed from block-level profiles by the classic
most-frequent-successor walk.  Applying a trace *lays the function's
blocks out in trace order*, which lets the translators delete the
unconditional jumps between consecutive hot blocks (the simulator falls
through) — the software analogue of keeping the hot path straight in a
hardware trace cache.  Cross-procedure traces come from inlining hot
call sites first (see :mod:`repro.llee.pgo`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro import observe
from repro.ir.module import BasicBlock, Function, Module
from repro.llee.profile import Profile


@dataclass
class Trace:
    """A hot straight-line path through one function."""

    function: Function
    blocks: List[BasicBlock]
    heat: int

    @property
    def length(self) -> int:
        return len(self.blocks)


def form_function_traces(function: Function, profile: Profile,
                         hot_threshold: int = 50,
                         successor_bias: float = 0.4) -> List[Trace]:
    """Form hot traces inside one function by the most-frequent-
    successor walk (same algorithm :class:`SoftwareTraceCache` uses
    module-wide).  This is the per-function export the tier-2
    superblock code generator consumes: it guides straight-line
    emission without reordering ``function.blocks``, so block ids stay
    stable across tiers."""
    counts = {
        block.name or "": profile.block_count(function.name,
                                              block.name or "")
        for block in function.blocks
    }
    claimed: Set[int] = set()
    traces: List[Trace] = []
    seeds = sorted(function.blocks,
                   key=lambda b: -counts[b.name or ""])
    for seed in seeds:
        if id(seed) in claimed:
            continue
        heat = counts[seed.name or ""]
        if heat < hot_threshold:
            break
        blocks = [seed]
        claimed.add(id(seed))
        current = seed
        while True:
            successor = _best_successor_of(current, counts, claimed,
                                           hot_threshold, successor_bias)
            if successor is None:
                break
            blocks.append(successor)
            claimed.add(id(successor))
            current = successor
        if len(blocks) > 1:
            traces.append(Trace(function, blocks, heat))
    return traces


def _best_successor_of(block: BasicBlock, counts: Dict[str, int],
                       claimed: Set[int], hot_threshold: int,
                       successor_bias: float) -> Optional[BasicBlock]:
    successors = [s for s in set(block.successors())
                  if id(s) not in claimed]
    if not successors:
        return None
    best = max(successors, key=lambda s: counts[s.name or ""])
    block_count = max(counts[block.name or ""], 1)
    if counts[best.name or ""] < hot_threshold:
        return None
    if counts[best.name or ""] < block_count * successor_bias:
        return None
    return best


def layout_signature(traces: Optional[List[Trace]]) -> str:
    """A stable content hash of one function's trace layout — the
    per-function component of the persistent tier-2 key that
    invalidates stale superblocks when profiles (and hence layouts)
    change.  ``traces`` of None or [] both mean plain block dispatch
    and hash to the reserved sentinel ``"-"``."""
    if not traces:
        return "-"
    digest = hashlib.sha256()
    for trace in traces:
        for block in trace.blocks:
            digest.update((block.name or "").encode("utf-8"))
            digest.update(b"\x00")
        digest.update(b"\x01")
    return digest.hexdigest()[:16]


class SoftwareTraceCache:
    """Forms, stores, and applies traces for one module."""

    def __init__(self, module: Module,
                 hot_threshold: int = 50,
                 successor_bias: float = 0.4):
        self.module = module
        self.hot_threshold = hot_threshold
        #: A successor must carry at least this fraction of the block's
        #: executions for the trace to continue through it.
        self.successor_bias = successor_bias
        self.traces: List[Trace] = []
        #: Called with each Function whose block layout changed in
        #: :meth:`apply_layout`.  Relayout does not bump ``smc_version``
        #: (the body is unchanged), so caches keyed on decoded block
        #: order — the fast engine's :class:`DecodeCache` — hook in
        #: here, mirroring the ``smc_listeners`` invalidation path.
        self.relayout_listeners: List[Callable[[Function], None]] = []

    # -- formation -----------------------------------------------------------

    def form_traces(self, profile: Profile) -> List[Trace]:
        with observe.span("tracecache.form_traces",
                          module=self.module.name) as span:
            self.traces = []
            for function in self.module.functions.values():
                if function.is_declaration:
                    continue
                self.traces.extend(self._form_in(function, profile))
            self.traces.sort(key=lambda t: -t.heat)
            span.set(traces=len(self.traces))
        if observe.enabled():
            observe.counter("tracecache.traces_formed",
                            len(self.traces))
            for trace in self.traces:
                observe.histogram("tracecache.trace_length",
                                  trace.length)
        return self.traces

    def _form_in(self, function: Function,
                 profile: Profile) -> List[Trace]:
        return form_function_traces(function, profile,
                                    self.hot_threshold,
                                    self.successor_bias)

    # -- application ------------------------------------------------------------

    def apply_layout(self) -> int:
        """Reorder each traced function's blocks so every trace is
        contiguous (entry block stays first).  Returns the number of
        functions relaid."""
        by_function: Dict[int, List[Trace]] = {}
        for trace in self.traces:
            by_function.setdefault(id(trace.function), []).append(trace)
        changed = 0
        for traces in by_function.values():
            function = traces[0].function
            new_order: List[BasicBlock] = []
            placed: Set[int] = set()

            def place(block: BasicBlock) -> None:
                if id(block) not in placed:
                    placed.add(id(block))
                    new_order.append(block)

            place(function.entry_block)
            for trace in traces:
                for block in trace.blocks:
                    place(block)
            for block in function.blocks:
                place(block)
            if new_order != function.blocks:
                function.blocks = new_order
                changed += 1
                for listener in self.relayout_listeners:
                    listener(function)
        observe.counter("tracecache.functions_relaid", changed)
        return changed

    # -- reporting ----------------------------------------------------------------

    def coverage(self, profile: Profile) -> float:
        """Fraction of all block executions that fall inside traces."""
        total = sum(profile.counts.values())
        if total == 0:
            return 0.0
        in_trace = 0
        for trace in self.traces:
            for block in trace.blocks:
                in_trace += profile.block_count(trace.function.name,
                                                block.name or "")
        return in_trace / total
