"""The function-at-a-time JIT (Section 4.1, 5.2).

"Both the JIT and offline compilers ... the JIT translates functions on
demand, so that unused code is not translated."  The JIT is the
``resolver`` the machine simulator calls when control first reaches an
untranslated function; it also listens for self-modifying-code events
and invalidates stale translations (Section 3.4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import observe
from repro.ir.module import Function, Module
from repro.targets.machine import MachineFunction
from repro.targets.native import NativeModule


@dataclass
class JITStats:
    """Accounting for the Table 2 translation-cost columns."""

    functions_translated: int = 0
    instructions_translated: int = 0
    translate_seconds: float = 0.0
    invalidations: int = 0
    retranslations: int = 0
    #: Cumulative translate time per function — a retranslated function
    #: (SMC invalidation) accumulates instead of overwriting.
    per_function: Dict[str, float] = field(default_factory=dict)
    #: How many times each function has been translated.
    translation_counts: Dict[str, int] = field(default_factory=dict)


class FunctionJIT:
    """Translates LLVA functions for one target, on demand."""

    def __init__(self, module: Module, target):
        self.module = module
        self.target = target
        self.stats = JITStats()

    def translate(self, name: str) -> MachineFunction:
        """Translate one function now (the resolver callback)."""
        function = self.module.get_function(name)
        flight = observe.flight()
        if flight is not None:
            flight.record("jit.translate.begin", function=name,
                          target=self.target.name)
        with observe.span("jit.translate", function=name,
                          target=self.target.name) as span:
            started = time.perf_counter()
            machine = self.target.translate_function(function)
            elapsed = time.perf_counter() - started
        if flight is not None:
            flight.record("jit.translate.end", function=name,
                          target=self.target.name,
                          seconds=round(elapsed, 9))
        llva_instructions = function.cached_num_instructions()
        stats = self.stats
        stats.functions_translated += 1
        stats.instructions_translated += llva_instructions
        stats.translate_seconds += elapsed
        stats.per_function[name] = stats.per_function.get(name, 0.0) + elapsed
        count = stats.translation_counts.get(name, 0) + 1
        stats.translation_counts[name] = count
        if count > 1:
            stats.retranslations += 1
        if observe.enabled():
            native_instructions = machine.num_instructions()
            span.set(llva_instructions=llva_instructions,
                     native_instructions=native_instructions)
            observe.counter("jit.functions_translated", 1,
                            target=self.target.name)
            observe.counter("jit.llva_instructions",
                            llva_instructions,
                            target=self.target.name)
            observe.counter("jit.native_instructions",
                            native_instructions,
                            target=self.target.name)
            observe.counter("jit.translate_seconds", elapsed,
                            target=self.target.name)
            observe.histogram("jit.function_translate_seconds",
                              elapsed, target=self.target.name)
            if llva_instructions:
                observe.histogram(
                    "jit.expansion_ratio",
                    native_instructions / llva_instructions,
                    target=self.target.name)
        return machine

    def translate_all(self, native: Optional[NativeModule] = None
                      ) -> NativeModule:
        """Offline mode: translate the entire module up front
        ("the total code generation time ... to compile the entire
        program (regardless of which functions are actually executed)",
        Section 5.2)."""
        if native is None:
            native = NativeModule(self.target, self.module.name)
        with observe.span("jit.translate_all",
                          module=self.module.name,
                          target=self.target.name):
            for function in self.module.functions.values():
                if function.is_declaration:
                    continue
                if function.name not in native.functions:
                    native.add_function(self.translate(function.name))
        return native

    def on_smc_replace(self, native: NativeModule):
        """A listener for the engines' ``smc_listeners`` hook: drop the
        cached translation so the next invocation retranslates."""
        def listener(function: Function) -> None:
            if native.functions.pop(function.name, None) is not None:
                self.stats.invalidations += 1
                observe.counter("jit.invalidations", 1,
                                target=self.target.name)
                flight = observe.flight()
                if flight is not None:
                    flight.record("smc.invalidate", layer="native",
                                  reason="smc-replace",
                                  function=function.name)
        return listener
