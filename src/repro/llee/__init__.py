"""LLEE — the Low Level Execution Environment (paper Section 4).

Orchestrates translation: offline caching through the OS-independent
storage API, function-at-a-time JIT, profiling, the software trace
cache, and idle-time profile-guided reoptimization.
"""

from repro.llee.jit import FunctionJIT, JITStats
from repro.llee.manager import LLEE, RunReport
from repro.llee.pgo import PGOReport, idle_time_reoptimize
from repro.llee.profile import (
    Profile,
    ProfileMap,
    instrument_module,
    read_profile,
    strip_instrumentation,
)
from repro.llee.storage import DiskStorage, InMemoryStorage, StorageAPI
from repro.llee.tracecache import SoftwareTraceCache, Trace

__all__ = [
    "FunctionJIT",
    "JITStats",
    "LLEE",
    "RunReport",
    "PGOReport",
    "idle_time_reoptimize",
    "Profile",
    "ProfileMap",
    "instrument_module",
    "read_profile",
    "strip_instrumentation",
    "DiskStorage",
    "InMemoryStorage",
    "StorageAPI",
    "SoftwareTraceCache",
    "Trace",
]
