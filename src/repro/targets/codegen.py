"""The shared translation driver: LLVA → machine code.

This implements the translator structure Section 3 describes:

* **phi elimination** by copies in predecessor blocks ("The translator
  eliminates the φ-nodes by introducing copy operations into predecessor
  basic blocks", Section 3.1), with critical edges split first;
* **alloca preallocation**: every fixed-size ``alloca`` gets a frame slot
  assigned at translation time ("the translator preallocates all
  fixed-size alloca objects in the function's stack frame", Section 3.2);
* **calling-convention expansion**: the abstract ``call`` becomes
  argument pushes/moves, the call, result retrieval, and stack cleanup —
  the "verbose machine-specific code for argument passing, register
  saves and restores" that makes native code bigger than virtual object
  code (Section 5.2);
* ``getelementptr`` lowering to concrete address arithmetic using the
  target's pointer size and struct layouts — the only place in the whole
  system where those I-ISA details are consulted.

The driver produces generic three-address machine code over unlimited
virtual registers; each target then runs *pattern expansion* (imposing
two-address form, immediate-range splitting, addressing-mode folding)
and *register allocation* (see :mod:`repro.targets.regalloc`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import BasicBlock, Function
from repro.ir.values import (
    Constant,
    ConstantBool,
    ConstantFP,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)
from repro.ir.module import Function as IRFunction
from repro.ir.module import GlobalVariable
from repro.targets.machine import (
    Imm,
    LabelRef,
    MachineBasicBlock,
    MachineError,
    MachineFunction,
    MachineInstr,
    Mem,
    PhysReg,
    Semantics,
    SymRef,
    TargetInfo,
    VirtualReg,
)


def split_critical_edges(function: Function) -> int:
    """Split every critical CFG edge (multi-successor block to
    multi-predecessor block) by inserting a forwarding block, so phi
    copies can be placed on the edge.  Returns the number split."""
    split = 0
    for block in list(function.blocks):
        if not block.has_terminator():
            continue
        terminator = block.terminator
        successors = terminator.successors()
        if len(successors) < 2:
            continue  # a single out-edge is never critical
        # Snapshot phi values for edges from `block` before rewriting:
        # duplicate successor slots (both branch arms to one target)
        # share a single phi entry that each split edge must inherit.
        saved_phi_values = {}
        for successor in set(successors):
            for phi in successor.phis():
                value = phi.incoming_for_block(block)
                if value is not None:
                    saved_phi_values[id(phi)] = (phi, value)
        for index, operand in enumerate(list(terminator.operands)):
            if not isinstance(operand, BasicBlock):
                continue
            target = operand
            if len(target.predecessors()) < 2 \
                    and successors.count(target) < 2:
                continue
            middle = function.add_block(
                "{0}.{1}.crit".format(block.name, target.name),
                before=target)
            middle.append(insts.BranchInst(target=target))
            terminator.set_operand(index, middle)
            for phi in target.phis():
                saved = saved_phi_values.get(id(phi))
                if saved is None:
                    continue
                if phi.incoming_for_block(block) is not None:
                    phi.remove_incoming(block)
                phi.add_incoming(saved[1], middle)
            split += 1
    return split


class LoweringError(MachineError):
    pass


class FunctionLowering:
    """Lowers one LLVA function to generic machine code for a target."""

    def __init__(self, function: Function, target: TargetInfo,
                 hosted: bool = False):
        self.function = function
        self.target = target
        #: Hosted mode (the tier-3 in-process executor): allocas stay on
        #: the interpreter's stack (ALLOCA pseudo instead of frame
        #: slots), and every emitted run is annotated with its LLVA site
        #: plus step/V-ABI bookkeeping so execution state maps back onto
        #: tier-1 frames.
        self.hosted = hosted
        self.machine = MachineFunction(function.name, target)
        self.machine.smc_version = function.smc_version
        self.td = target.target_data
        self._value_regs: Dict[int, VirtualReg] = {}
        #: Vector SSA values are scalarized: each lane lives in its own
        #: scalar virtual register (machine value types stay scalar, so
        #: spill slots, serialization, and the simulators are untouched).
        self._vector_lane_regs: Dict[int, List[VirtualReg]] = {}
        self._alloca_offsets: Dict[int, int] = {}
        self._frame_cursor = 0
        self._block_map: Dict[int, MachineBasicBlock] = {}
        self._current: Optional[MachineBasicBlock] = None
        self._phi_sites: Optional[Dict[int, str]] = None

    # -- entry point ----------------------------------------------------------

    def lower(self) -> MachineFunction:
        split_critical_edges(self.function)
        if not self.hosted:
            self._preallocate_static_allocas()
        for block in self.function.blocks:
            self._block_map[id(block)] = self.machine.add_block(block.name)
        self._lower_arguments()
        for block in self.function.blocks:
            self._current = self._block_map[id(block)]
            self._lower_block(block)
        self.machine.frame_size = _align(self._frame_cursor, 16)
        return self.machine

    # -- helpers ---------------------------------------------------------------

    def emit(self, semantics: str, operands=(), mnemonic: Optional[str]
             = None, **attrs) -> MachineInstr:
        instr = MachineInstr(mnemonic or semantics, semantics, operands,
                             **attrs)
        self._current.append(instr)
        return instr

    def vreg_for(self, value: Value) -> VirtualReg:
        reg = self._value_regs.get(id(value))
        if reg is None:
            reg = self.machine.new_vreg(value.type, value.name)
            self._value_regs[id(value)] = reg
        return reg

    def operand(self, value: Value):
        """Machine operand for an LLVA operand: an Imm for constants, a
        vreg otherwise (materializing symbol addresses as needed)."""
        if isinstance(value, ConstantInt):
            return Imm(value.value)
        if isinstance(value, ConstantBool):
            return Imm(1 if value.value else 0)
        if isinstance(value, ConstantFP):
            return Imm(value.value)
        if isinstance(value, ConstantNull):
            return Imm(0)
        if isinstance(value, UndefValue):
            return Imm(0 if not value.type.is_floating_point else 0.0)
        if isinstance(value, (IRFunction, GlobalVariable)):
            reg = self.machine.new_vreg(value.type)
            self.emit(Semantics.MOV, [reg, SymRef(value.name)],
                      value_type=value.type)
            return reg
        if isinstance(value, insts.AllocaInst) \
                and id(value) in self._alloca_offsets:
            reg = self.machine.new_vreg(value.type)
            self.emit(Semantics.LEA,
                      [reg, Mem(base=_FP, offset=self._alloca_offsets[
                          id(value)])])
            return reg
        return self.vreg_for(value)

    def operand_reg(self, value: Value) -> VirtualReg:
        """Like :meth:`operand` but always a register."""
        machine_operand = self.operand(value)
        if isinstance(machine_operand, VirtualReg):
            return machine_operand
        reg = self.machine.new_vreg(value.type)
        self.emit(Semantics.MOV, [reg, machine_operand],
                  value_type=value.type)
        return reg

    def _frame_slot(self, size: int, align_to: int) -> int:
        self._frame_cursor = _align(self._frame_cursor, align_to)
        offset = self._frame_cursor
        self._frame_cursor += size
        return offset

    # -- prologue pieces ----------------------------------------------------------

    def _preallocate_static_allocas(self) -> None:
        for block in self.function.blocks:
            for inst in block.instructions:
                if isinstance(inst, insts.AllocaInst) and inst.is_static:
                    count = 1
                    if isinstance(inst.count, ConstantInt):
                        count = max(inst.count.value, 0)
                    size = self.td.size_of(inst.allocated_type) * count
                    align_to = self.td.align_of(inst.allocated_type)
                    self._alloca_offsets[id(inst)] = self._frame_slot(
                        max(size, 1), align_to)

    def _lower_arguments(self) -> None:
        """Copy incoming arguments into their virtual registers."""
        self._current = self._block_map[id(self.function.entry_block)]
        for index, arg in enumerate(self.function.args):
            location = _incoming_arg_location(self.target, index, self.td)
            reg = self.vreg_for(arg)
            if isinstance(location, PhysReg):
                self.emit(Semantics.MOV, [reg, location],
                          value_type=arg.type)
            else:
                # Stack-passed arguments live in 8-byte slots; read them
                # with the slot representation so big-endian layouts see
                # the right bytes.
                from repro.targets.machine import spill_slot_type
                self.emit(Semantics.LOAD, [reg, location],
                          value_type=spill_slot_type(arg.type), ee=False)

    # -- instruction dispatch -------------------------------------------------------

    def _lower_block(self, block: BasicBlock) -> None:
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, insts.PhiInst):
                continue  # receives copies from predecessors
            start = len(self._current.instructions)
            if inst.is_terminator:
                self._lower_phi_copies(block)
                start = len(self._current.instructions)
                self._lower_terminator(block, inst)
            else:
                self._lower_instruction(inst)
            if self.hosted:
                self._annotate_run(block, index, inst, start)

    def _annotate_run(self, block: BasicBlock, index: int,
                      inst: insts.Instruction, start: int) -> None:
        """Hosted-mode bookkeeping on the machine instructions emitted
        for one LLVA instruction: the whole run carries its source site,
        the first instruction charges the interpreter step, and the last
        definition of the result register carries the V-ABI site so the
        executor can maintain a tier-1 register shadow."""
        run = self._current.instructions[start:]
        if not run:
            return
        site = "{0}:{1}".format(block.name, index)
        for instr in run:
            instr.attrs["site"] = site
        if not isinstance(inst, (insts.BranchInst,
                                 insts.MultiwayBranchInst)):
            # Branch steps are charged at block entry (1 + phi count of
            # the successor), exactly matching tier-1's per-edge charge.
            run[0].attrs["step"] = 1
        if getattr(inst, "produces_value", False):
            reg = self._value_regs.get(id(inst))
            if reg is not None:
                for instr in reversed(run):
                    ops = instr.operands
                    if ops and isinstance(ops[0], VirtualReg) \
                            and ops[0].index == reg.index:
                        instr.attrs["vabi"] = site
                        break

    def _phi_site(self, phi: insts.PhiInst) -> str:
        if self._phi_sites is None:
            self._phi_sites = {}
            for blk in self.function.blocks:
                for position, candidate in enumerate(blk.instructions):
                    if isinstance(candidate, insts.PhiInst):
                        self._phi_sites[id(candidate)] = \
                            "{0}:{1}".format(blk.name, position)
        return self._phi_sites[id(phi)]

    def _lower_phi_copies(self, block: BasicBlock) -> None:
        """Parallel copies into successor phis.

        A copy whose source is itself one of the phis being written on
        this edge (a swap/rotation) stages through a temporary; all
        other copies — the overwhelmingly common case — are single
        moves, which is why "these copies are usually eliminated during
        register allocation" costs so little even when they are not
        (Section 3.1).
        """
        copies: List[Tuple[insts.PhiInst, VirtualReg, Value]] = []
        written: set = set()
        for successor in set(block.successors()):
            for phi in successor.phis():
                value = phi.incoming_for_block(block)
                if value is not None:
                    copies.append((phi, self.vreg_for(phi), value))
                    written.add(id(phi))
        if not copies:
            return
        # All reads of to-be-written phi registers happen first (into
        # temporaries), then the plain writes, then the staged writes.
        staged: List[Tuple[insts.PhiInst, VirtualReg, VirtualReg]] = []
        plain: List[Tuple[insts.PhiInst, VirtualReg, Value]] = []
        for phi, phi_reg, value in copies:
            if isinstance(value, insts.PhiInst) and id(value) in written:
                temp = self.machine.new_vreg(value.type)
                self.emit(Semantics.MOV, [temp, self.operand(value)],
                          value_type=value.type)
                staged.append((phi, phi_reg, temp))
            else:
                plain.append((phi, phi_reg, value))
        for phi, phi_reg, value in plain:
            instr = self.emit(Semantics.MOV,
                              [phi_reg, self.operand(value)],
                              value_type=value.type)
            if self.hosted:
                instr.attrs["vabi"] = self._phi_site(phi)
        for phi, phi_reg, temp in staged:
            instr = self.emit(Semantics.MOV, [phi_reg, temp],
                              value_type=temp.type)
            if self.hosted:
                instr.attrs["vabi"] = self._phi_site(phi)

    def _lower_terminator(self, block: BasicBlock,
                          inst: insts.Instruction) -> None:
        if isinstance(inst, insts.RetInst):
            if inst.return_value is not None:
                value_type = inst.return_value.type
                self.emit(Semantics.MOV,
                          [PhysReg(self.target.return_reg,
                                   value_type.is_floating_point),
                           self.operand(inst.return_value)],
                          value_type=value_type)
            self.emit(Semantics.RET)
            return
        if isinstance(inst, insts.BranchInst):
            if inst.is_conditional:
                condition = self.operand_reg(inst.operand(0))
                self.emit(Semantics.JCC,
                          [condition, LabelRef(inst.operand(1).name)])
                self.emit(Semantics.JMP,
                          [LabelRef(inst.operand(2).name)])
            else:
                self.emit(Semantics.JMP,
                          [LabelRef(inst.operand(0).name)])
            return
        if isinstance(inst, insts.MultiwayBranchInst):
            selector = self.operand_reg(inst.selector)
            for case_value, case_label in inst.cases():
                flag = self.machine.new_vreg(types.BOOL)
                self.emit(Semantics.CMP,
                          [flag, selector, Imm(case_value.value)],
                          rel="eq", value_type=inst.selector.type)
                self.emit(Semantics.JCC,
                          [flag, LabelRef(case_label.name)])
            self.emit(Semantics.JMP, [LabelRef(inst.default.name)])
            return
        if isinstance(inst, insts.InvokeInst):
            self._lower_call(inst, list(inst.args),
                             normal=inst.normal_dest.name,
                             unwind=inst.unwind_dest.name)
            return
        if isinstance(inst, insts.UnwindInst):
            self.emit(Semantics.UNWIND)
            return
        raise LoweringError("unknown terminator {0!r}".format(inst))

    def _lower_instruction(self, inst: insts.Instruction) -> None:
        # Vector instructions first: VectorBinaryInst subclasses
        # BinaryInst, so these arms must precede the scalar ALU arm.
        if isinstance(inst, insts.VectorBinaryInst):
            self._lower_vbinary(inst)
            return
        if isinstance(inst, insts.VSplatInst):
            self._lower_vsplat(inst)
            return
        if isinstance(inst, insts.VReduceInst):
            self._lower_vreduce(inst)
            return
        if isinstance(inst, insts.VLoadInst):
            self._lower_vload(inst)
            return
        if isinstance(inst, insts.VStoreInst):
            self._lower_vstore(inst)
            return
        if isinstance(inst, insts.BinaryInst) \
                and not isinstance(inst, insts.CompareInst):
            dest = self.vreg_for(inst)
            self.emit(Semantics.ALU,
                      [dest, self.operand_reg(inst.operand(0)),
                       self.operand(inst.operand(1))],
                      op=inst.opcode, value_type=inst.type,
                      ee=inst.exceptions_enabled)
            return
        if isinstance(inst, insts.CompareInst):
            dest = self.vreg_for(inst)
            self.emit(Semantics.CMP,
                      [dest, self.operand_reg(inst.operand(0)),
                       self.operand(inst.operand(1))],
                      rel=inst.relation, value_type=inst.operand(0).type)
            return
        if isinstance(inst, insts.LoadInst):
            dest = self.vreg_for(inst)
            address = self._address_of(inst.pointer)
            self.emit(Semantics.LOAD, [dest, address],
                      value_type=inst.type, ee=inst.exceptions_enabled)
            return
        if isinstance(inst, insts.StoreInst):
            address = self._address_of(inst.pointer)
            self.emit(Semantics.STORE,
                      [self.operand_reg(inst.value), address],
                      value_type=inst.value.type,
                      ee=inst.exceptions_enabled)
            return
        if isinstance(inst, insts.GetElementPtrInst):
            self._lower_gep(inst)
            return
        if isinstance(inst, insts.AllocaInst):
            self._lower_alloca(inst)
            return
        if isinstance(inst, insts.CastInst):
            self._lower_cast(inst)
            return
        if isinstance(inst, insts.CallInst):
            self._lower_call(inst, list(inst.args))
            return
        raise LoweringError("cannot lower {0!r}".format(inst))

    # -- the vector extension -----------------------------------------------------------
    #
    # Vector values are scalarized into per-lane scalar registers.
    # Register-to-register vector arithmetic becomes one scalar ALU op
    # per lane (ee=False: the V-ISA contract is that lane arithmetic
    # wraps without trapping), reductions become an ordered left fold
    # over the lanes, and the memory ops lower to single atomic
    # VLOAD/VSTORE micro-ops so masked-fault behaviour (all-zero result
    # vector / stop at the faulting lane) is identical to the
    # interpreters.  Caveat: lane registers carry no V-ABI annotation —
    # a deliverable trap cannot fire inside a vectorized body (the
    # autovectorizer only emits vector ops whose faults are the vload/
    # vstore's own, and those deopt at the vector instruction's site
    # before any lane register would be consulted); scalar reduction
    # results do enter the deopt shadow.

    def _lane_regs(self, value: Value) -> List[VirtualReg]:
        regs = self._vector_lane_regs.get(id(value))
        if regs is None:
            element = value.type.element
            regs = [self.machine.new_vreg(element)
                    for _ in range(value.type.lanes)]
            self._vector_lane_regs[id(value)] = regs
        return regs

    def _lane_operands(self, value: Value) -> List[object]:
        """Per-lane machine operands for one vector-typed operand."""
        if isinstance(value, UndefValue):
            zero = Imm(0.0 if value.type.element.is_floating_point
                       else 0)
            return [zero] * value.type.lanes
        if not value.type.is_vector:
            raise LoweringError(
                "expected a vector operand, got {0!r}".format(value))
        return self._lane_regs(value)

    def _lane_reg(self, operand, type_: types.Type) -> VirtualReg:
        if isinstance(operand, VirtualReg):
            return operand
        reg = self.machine.new_vreg(type_)
        self.emit(Semantics.MOV, [reg, operand], value_type=type_)
        return reg

    def _lower_vbinary(self, inst: insts.VectorBinaryInst) -> None:
        element = inst.type.element
        op = inst.opcode[1:]  # vadd -> add, ...
        dests = self._lane_regs(inst)
        lhs = self._lane_operands(inst.operand(0))
        rhs = self._lane_operands(inst.operand(1))
        for dest, a, b in zip(dests, lhs, rhs):
            self.emit(Semantics.ALU,
                      [dest, self._lane_reg(a, element), b],
                      op=op, value_type=element, ee=False)

    def _lower_vsplat(self, inst: insts.VSplatInst) -> None:
        element = inst.type.element
        source = self.operand(inst.scalar)
        for dest in self._lane_regs(inst):
            self.emit(Semantics.MOV, [dest, source],
                      value_type=element)

    def _lower_vreduce(self, inst: insts.VReduceInst) -> None:
        # MOV init; then one ALU per lane — the same ordered left fold
        # the interpreters perform, with "min"/"max" ALU ops defined as
        # `lane if lane REL acc else acc` (NaN-propagation-free, like
        # the reference reduce).
        element = inst.type
        dest = self.vreg_for(inst)
        self.emit(Semantics.MOV, [dest, self.operand(inst.init)],
                  value_type=element)
        for lane in self._lane_operands(inst.vector):
            self.emit(Semantics.ALU, [dest, dest, lane],
                      op=inst.kind, value_type=element, ee=False)

    def _lower_vload(self, inst: insts.VLoadInst) -> None:
        element = inst.type.element
        lanes = self._lane_regs(inst)
        address = self._address_of(inst.pointer)
        self.emit(Semantics.VLOAD, list(lanes) + [address],
                  value_type=element, lanes=len(lanes),
                  esize=self.td.size_of(element),
                  ee=inst.exceptions_enabled)

    def _lower_vstore(self, inst: insts.VStoreInst) -> None:
        element = inst.value.type.element
        sources = self._lane_operands(inst.value)
        address = self._address_of(inst.pointer)
        self.emit(Semantics.VSTORE, list(sources) + [address],
                  value_type=element, lanes=len(sources),
                  esize=self.td.size_of(element),
                  ee=inst.exceptions_enabled)

    # -- addresses and geps -----------------------------------------------------------

    def _address_of(self, pointer: Value) -> Mem:
        """Addressing mode for a load/store pointer operand."""
        if isinstance(pointer, (IRFunction, GlobalVariable)):
            return Mem(symbol=pointer.name)
        if isinstance(pointer, insts.AllocaInst) \
                and id(pointer) in self._alloca_offsets:
            return Mem(base=_FP,
                       offset=self._alloca_offsets[id(pointer)])
        return Mem(base=self.operand_reg(pointer))

    def _lower_gep(self, inst: insts.GetElementPtrInst) -> None:
        """Typed pointer arithmetic becomes concrete address math here —
        the one place pointer size and struct layout are consulted."""
        dest = self.vreg_for(inst)
        base = self.operand_reg(inst.pointer)
        td = self.td
        current: types.Type = inst.pointer.type.pointee
        constant_offset = 0
        running: Optional[VirtualReg] = None

        def add_scaled(index_value: Value, scale: int) -> None:
            nonlocal constant_offset, running
            if isinstance(index_value, ConstantInt):
                constant_offset += index_value.value * scale
                return
            index_reg = self.operand_reg(index_value)
            scaled = self.machine.new_vreg(index_value.type)
            if scale == 1:
                scaled = index_reg
            else:
                self.emit(Semantics.ALU,
                          [scaled, index_reg, Imm(scale)],
                          op="mul", value_type=td.pointer_int_type)
            if running is None:
                running = scaled
            else:
                summed = self.machine.new_vreg(td.pointer_int_type)
                self.emit(Semantics.ALU, [summed, running, scaled],
                          op="add", value_type=td.pointer_int_type)
                running = summed

        for position, index in enumerate(inst.indices):
            if position == 0:
                add_scaled(index, td.size_of(current))
            elif current.is_struct:
                field = index.value  # constant ubyte, checked at build
                constant_offset += td.struct_offsets(current)[field]
                current = current.fields[field]
            else:
                add_scaled(index, td.size_of(current.element))
                current = current.element

        self.emit(Semantics.LEA,
                  [dest, Mem(base=base, index=running,
                             offset=constant_offset)])

    def _lower_alloca(self, inst: insts.AllocaInst) -> None:
        if self.hosted:
            # Hosted execution shares the interpreter's memory: the
            # frame is carved with push_frame so alloca addresses are
            # identical to tier-1's, instead of living in the (virtual)
            # machine frame.
            reg = self.vreg_for(inst)
            count = Imm(1) if inst.count is None \
                else self.operand(inst.count)
            self.emit(Semantics.ALLOCA, [reg, count],
                      esize=self.td.size_of(inst.allocated_type),
                      align=self.td.align_of(inst.allocated_type),
                      ee=inst.exceptions_enabled)
            return
        if id(inst) in self._alloca_offsets:
            # Static slot: the value is just its frame address; uses go
            # through operand()/_address_of, but the register may still
            # be demanded (e.g. stored or passed), so materialize it.
            reg = self.vreg_for(inst)
            self.emit(Semantics.LEA,
                      [reg, Mem(base=_FP,
                                offset=self._alloca_offsets[id(inst)])])
            return
        # Dynamic alloca: adjust SP at run time.
        size_reg = self.machine.new_vreg(self.td.pointer_int_type)
        element_size = self.td.size_of(inst.allocated_type)
        self.emit(Semantics.ALU,
                  [size_reg, self.operand_reg(inst.count),
                   Imm(element_size)],
                  op="mul", value_type=self.td.pointer_int_type)
        self.emit(Semantics.ADJSP, [size_reg], negate=True)
        reg = self.vreg_for(inst)
        self.emit(Semantics.MOV, [reg, _SP], value_type=inst.type)

    def _lower_cast(self, inst: insts.CastInst) -> None:
        dest = self.vreg_for(inst)
        source = self.operand(inst.value)
        if inst.is_noop or _same_machine_class(inst.value.type, inst.type,
                                               self.td):
            self.emit(Semantics.MOV, [dest, source],
                      value_type=inst.type)
            return
        self.emit(Semantics.CVT, [dest, source],
                  from_type=inst.value.type, to_type=inst.type)

    # -- calls -------------------------------------------------------------------------

    def _lower_call(self, inst, args: List[Value],
                    normal: Optional[str] = None,
                    unwind: Optional[str] = None) -> None:
        target = self.target
        arg_regs = target.arg_regs
        stack_args = args[len(arg_regs):]
        # Stack arguments are pushed right-to-left (x86 style).
        pushed_bytes = 0
        for value in reversed(stack_args):
            self.emit(Semantics.PUSH, [self.operand_reg(value)],
                      value_type=value.type)
            pushed_bytes += 8
        for index, value in enumerate(args[:len(arg_regs)]):
            self.emit(Semantics.MOV,
                      [PhysReg(arg_regs[index],
                               value.type.is_floating_point),
                       self.operand(value)],
                      value_type=value.type)
        callee = inst.callee
        if isinstance(callee, IRFunction):
            callee_operand = SymRef(callee.name)
        else:
            callee_operand = self.operand_reg(callee)
        self.emit(Semantics.CALL, [callee_operand],
                  nargs=len(args), normal=normal, unwind=unwind,
                  return_type=inst.signature.return_type,
                  ee=getattr(inst, "exceptions_enabled", True))
        if pushed_bytes:
            self.emit(Semantics.ADJSP, [Imm(pushed_bytes)])
        if inst.produces_value:
            self.emit(Semantics.MOV,
                      [self.vreg_for(inst),
                       PhysReg(target.return_reg,
                               inst.type.is_floating_point)],
                      value_type=inst.type)
        if normal is not None:
            self.emit(Semantics.JMP, [LabelRef(normal)])


def remove_fallthrough_jumps(machine) -> int:
    """Delete unconditional jumps to the lexically next block (the
    simulator falls through), plus any delay-slot nop riding on them.
    Trace-based block layout (Section 4.2's runtime reoptimization)
    maximizes how often this fires on the hot path."""
    removed = 0
    for index, block in enumerate(machine.blocks):
        if index + 1 >= len(machine.blocks):
            continue
        next_name = machine.blocks[index + 1].name
        instructions = block.instructions
        # The jump may be followed only by a delay-slot nop.
        position = len(instructions) - 1
        while position >= 0 \
                and instructions[position].semantics == Semantics.NOP:
            position -= 1
        if position < 0:
            continue
        last = instructions[position]
        if last.semantics != Semantics.JMP:
            continue
        target = last.operands[0]
        if isinstance(target, LabelRef) and target.name == next_name:
            del instructions[position:]
            removed += 1
    return removed


#: Symbolic frame-pointer / stack-pointer registers shared by targets.
_FP = PhysReg("fp")
_SP = PhysReg("sp")

FRAME_POINTER = _FP
STACK_POINTER = _SP


#: Sentinel in Mem.symbol marking an incoming stack-argument slot: the
#: simulator resolves it to ``fp + frame_size + offset`` (the caller's
#: pushed arguments sit just above the callee frame).
INCOMING_ARGS = "__incoming_args__"


def _incoming_arg_location(target: TargetInfo, index: int,
                           td: types.TargetData):
    if index < len(target.arg_regs):
        return PhysReg(target.arg_regs[index])
    stack_index = index - len(target.arg_regs)
    return Mem(base=_FP, offset=8 * stack_index, symbol=INCOMING_ARGS)


def _align(value: int, align_to: int) -> int:
    return (value + align_to - 1) // align_to * align_to


def _same_machine_class(a: types.Type, b: types.Type,
                        td: types.TargetData) -> bool:
    """Casts that are pure register moves at machine level."""
    def size(t: types.Type) -> int:
        return td.size_of(t)
    if a.is_floating_point != b.is_floating_point:
        return False
    if a.is_floating_point:
        return size(a) == size(b)
    return False  # integer width changes still need CVT truncation
