"""The x86-flavoured I-ISA.

Models the properties of IA-32 that drive the paper's Table 2 numbers:

* CISC reg-mem instructions: ALU/MOV/CMP sources may be memory operands,
  so the spill-everything allocator folds stack slots straight into the
  instruction (``movl %eax, [slot]; addl %eax, [slot2]; movl [slot3],
  %eax`` — the classic naive-x86 pattern);
* two-address arithmetic (implied by that same pattern);
* all arguments passed on the stack (cdecl pushes);
* variable-length instruction encoding (1-8 bytes);
* "virtually no optimization and very simple register allocation
  resulting in significant spill code" (Section 5.2) — spill-all.
"""

from __future__ import annotations

from typing import List

from repro.ir.module import Function
from repro.targets.codegen import FunctionLowering
from repro.targets.machine import (
    Imm,
    MachineFunction,
    MachineInstr,
    Mem,
    Semantics,
    TargetInfo,
    VirtualReg,
)
from repro.targets.regalloc import SpillAllAllocator, instr_defs_uses

_MNEMONICS = {
    "add": "addl", "sub": "subl", "mul": "imull", "div": "idivl",
    "rem": "idivl",
    "and": "andl", "or": "orl", "xor": "xorl", "shl": "shll",
    "shr": "sarl",
    "min": "minl", "max": "maxl",
}

_FP_MNEMONICS = {
    "add": "fadd", "sub": "fsub", "mul": "fmul", "div": "fdiv",
    "rem": "fprem",
    "min": "minsd", "max": "maxsd",
}


class X86Target(TargetInfo):
    """TargetInfo plus the x86 translation pipeline."""

    def translate_function(self, function: Function,
                           hosted: bool = False) -> MachineFunction:
        from repro.targets.codegen import remove_fallthrough_jumps
        machine = FunctionLowering(function, self, hosted=hosted).lower()
        _expand(machine)
        _X86SpillAll().run(machine)
        remove_fallthrough_jumps(machine)
        return machine


def make_x86_target(pointer_size: int = 4) -> X86Target:
    """The IA-32 configuration (32-bit pointers, little-endian)."""
    return X86Target(
        name="x86",
        pointer_size=pointer_size,
        endianness="little",
        gpr_names=("eax", "ecx", "edx", "ebx", "esi", "edi"),
        fpr_names=("st0", "st1", "st2", "st3"),
        scratch_gprs=("eax", "ecx", "edx"),
        scratch_fprs=("st0", "st1"),
        callee_saved=("ebx", "esi", "edi"),
        return_reg="eax",
        arg_regs=(),  # cdecl: everything on the stack
        max_alu_immediate=(1 << 31) - 1,
        fixed_instr_width=0,  # variable-length encoding
    )


def _expand(machine: MachineFunction) -> None:
    """Rename generic mnemonics to x86 ones and legalize immediates."""
    for block in machine.blocks:
        expanded: List[MachineInstr] = []
        for instr in block.instructions:
            _legalize_immediates(machine, instr, expanded)
            instr.mnemonic = _mnemonic_for(instr)
            expanded.append(instr)
        block.instructions = expanded


def _mnemonic_for(instr: MachineInstr) -> str:
    semantics = instr.semantics
    if semantics == Semantics.ALU:
        value_type = instr.attrs.get("value_type")
        if value_type is not None and value_type.is_floating_point:
            return _FP_MNEMONICS[instr.attrs["op"]]
        op = instr.attrs["op"]
        if op == "div" and value_type is not None \
                and not value_type.is_signed:
            return "divl"
        if op == "shr" and value_type is not None \
                and not value_type.is_signed:
            return "shrl"
        return _MNEMONICS[op]
    if semantics == Semantics.MOV:
        return "movl"
    if semantics == Semantics.CMP:
        return "cmpl"
    if semantics == Semantics.LOAD:
        return "movl"
    if semantics == Semantics.STORE:
        return "movl"
    if semantics in (Semantics.VLOAD, Semantics.VSTORE):
        return "movups"
    if semantics == Semantics.LEA:
        return "leal"
    if semantics == Semantics.JMP:
        return "jmp"
    if semantics == Semantics.JCC:
        return "jnz"
    if semantics == Semantics.CALL:
        return "call"
    if semantics == Semantics.RET:
        return "ret"
    if semantics == Semantics.PUSH:
        return "pushl"
    if semantics == Semantics.POP:
        return "popl"
    if semantics == Semantics.CVT:
        return "cvt"
    if semantics == Semantics.ADJSP:
        return "addl"
    if semantics == Semantics.UNWIND:
        return "int3"
    return semantics


def _legalize_immediates(machine: MachineFunction, instr: MachineInstr,
                         expanded: List[MachineInstr]) -> None:
    """IA-32 immediates are at most 32 bits: wider constants are
    materialized in two halves."""
    limit = machine.target.max_alu_immediate
    for index, operand in enumerate(instr.operands):
        if not isinstance(operand, Imm):
            continue
        value = operand.value
        if isinstance(value, float):
            continue  # FP immediates load from a constant pool slot
        if -limit - 1 <= value <= limit:
            continue
        low = value & 0xFFFFFFFF
        high = (value >> 32) & 0xFFFFFFFF
        temp = machine.new_vreg(instr.attrs.get("value_type")
                                or _long_type())
        expanded.append(MachineInstr("movl", Semantics.MOV,
                                     [temp, Imm(high)],
                                     value_type=_long_type()))
        expanded.append(MachineInstr("shll", Semantics.ALU,
                                     [temp, temp, Imm(32)],
                                     op="shl", value_type=_long_type()))
        expanded.append(MachineInstr("orl", Semantics.ALU,
                                     [temp, temp, Imm(low)],
                                     op="or", value_type=_long_type()))
        instr.operands[index] = temp


def _long_type():
    from repro.ir import types
    return types.ULONG


class _X86SpillAll(SpillAllAllocator):
    """Spill-all with CISC memory-operand folding.

    Source operands of MOV/ALU/CMP fold their stack slot directly into
    the instruction instead of a separate reload — the defining x86
    translation pattern (and why x86's expansion ratio in Table 2 stays
    below SPARC's despite the spill code).
    """

    def run(self, machine: MachineFunction) -> None:
        self._fold(machine)
        self._store_to_slot(machine)
        super().run(machine)
        self._drop_redundant_reloads(machine)

    def _drop_redundant_reloads(self, machine: MachineFunction) -> None:
        """Within a block, a reload of a slot whose value is already
        sitting in the same scratch register is a no-op; delete it.

        This is the one peephole every naive spill-everything code
        generator carries (the classic ``mov [S], eax; mov eax, [S]``
        pair), and it keeps the x86 expansion ratio in the paper's
        2-3x band instead of drifting above it.
        """
        from repro.targets.regalloc import instr_defs_uses

        def slot_of(operand):
            if isinstance(operand, Mem) and operand.symbol is None \
                    and operand.index is None \
                    and getattr(operand.base, "name", None) == "fp":
                return operand.offset
            return None

        def value_type_of(instr):
            return id(instr.attrs.get("value_type"))

        for block in machine.blocks:
            known = {}  # slot offset -> (register name, value type)
            kept = []
            for instr in block.instructions:
                if instr.semantics == Semantics.LOAD:
                    slot = slot_of(instr.operands[1])
                    dest = instr.operands[0]
                    if slot is not None and hasattr(dest, "name"):
                        entry = (dest.name, value_type_of(instr))
                        if known.get(slot) == entry:
                            continue  # redundant reload
                        known = {s: e for s, e in known.items()
                                 if e[0] != dest.name}
                        known[slot] = entry
                        kept.append(instr)
                        continue
                if instr.semantics == Semantics.STORE:
                    slot = slot_of(instr.operands[1])
                    source = instr.operands[0]
                    if slot is not None:
                        if hasattr(source, "name"):
                            known[slot] = (source.name,
                                           value_type_of(instr))
                        else:
                            known.pop(slot, None)
                        kept.append(instr)
                        continue
                    # A store through an arbitrary pointer may hit any
                    # frame address: forget everything.
                    known.clear()
                    kept.append(instr)
                    continue
                if instr.semantics == Semantics.CALL:
                    known.clear()
                    kept.append(instr)
                    continue
                if instr.semantics in (Semantics.VLOAD,
                                       Semantics.VSTORE):
                    # A vload writes its lane frame slots directly (the
                    # post-rewrite lanes are Mem operands, invisible to
                    # instr_defs_uses); a vstore writes arbitrary
                    # memory like a store through a pointer.  Forget
                    # everything either way.
                    known.clear()
                    kept.append(instr)
                    continue
                defs, _uses = instr_defs_uses(instr)
                for index in defs:
                    operand = instr.operands[index]
                    if hasattr(operand, "name"):
                        known = {s: e for s, e in known.items()
                                 if e[0] != operand.name}
                kept.append(instr)
            block.instructions = kept

    def _store_to_slot(self, machine: MachineFunction) -> None:
        """``movl [slot], $imm`` / ``movl [slot], %reg`` are single x86
        instructions: a MOV defining a spilled vreg from an immediate or
        physical register becomes one store instead of scratch+spill."""
        from repro.ir import types as _t
        from repro.targets.codegen import FRAME_POINTER
        from repro.targets.machine import spill_slot_type
        for block in machine.blocks:
            for instr in block.instructions:
                if instr.semantics != Semantics.MOV:
                    continue
                dest = instr.operands[0]
                source = instr.operands[1]
                if not isinstance(dest, VirtualReg):
                    continue
                if not isinstance(source, Imm) and not (
                        hasattr(source, "name")
                        and not isinstance(source, VirtualReg)):
                    continue
                value_type = instr.attrs.get("value_type") or _t.ULONG
                instr.semantics = Semantics.STORE
                instr.operands = [
                    source,
                    Mem(base=FRAME_POINTER,
                        offset=self.slot_of(machine, dest)),
                ]
                instr.attrs["value_type"] = spill_slot_type(value_type)
                instr.attrs["ee"] = False

    def _fold(self, machine: MachineFunction) -> None:
        # Fold the *last source* operand of reg-mem capable instructions
        # into its (shared) stack slot; the base allocator rewrites the
        # remaining register operands against the same slot table.
        foldable = {Semantics.ALU, Semantics.CMP, Semantics.MOV}
        from repro.targets.codegen import FRAME_POINTER
        for block in machine.blocks:
            for instr in block.instructions:
                if instr.semantics not in foldable:
                    continue
                last = len(instr.operands) - 1
                operand = instr.operands[last]
                if last >= 1 and isinstance(operand, VirtualReg):
                    instr.operands[last] = Mem(
                        base=FRAME_POINTER,
                        offset=self.slot_of(machine, operand))
                    instr.attrs.setdefault("mem_value_type",
                                           _slot_type_for(operand))


def _slot_type_for(reg: VirtualReg):
    from repro.targets.regalloc import _slot_type
    return _slot_type(reg.type)
