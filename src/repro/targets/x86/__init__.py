"""The simulated Intel IA-32-flavoured I-ISA back end."""

from repro.targets.x86.target import X86Target, make_x86_target

__all__ = ["X86Target", "make_x86_target"]
