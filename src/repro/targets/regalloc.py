"""Register allocation for the machine layer.

Two allocators, reproducing the paper's asymmetry between its back ends
(Section 5.2):

* :class:`SpillAllAllocator` — "virtually no optimization and very
  simple register allocation resulting in significant spill code": every
  virtual register lives in a stack slot; each instruction loads its
  operands into scratch registers and stores its result back.  This is
  the x86 back end's allocator and the source of its instruction-count
  inflation.

* :class:`LinearScanAllocator` — Poletto-Sarkar linear scan over live
  intervals (extended across loop back edges via a machine-level
  liveness fixpoint).  Intervals spanning calls prefer callee-saved
  registers; used callee-saved registers are saved/restored in the
  prologue/epilogue, the "register saves and restores" verbosity of
  native code.  This is the SPARC back end's allocator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir import types
from repro.targets.machine import (
    Imm,
    LabelRef,
    MachineBasicBlock,
    MachineError,
    MachineFunction,
    MachineInstr,
    Mem,
    PhysReg,
    Semantics,
    SymRef,
    VirtualReg,
)

#: Semantics whose first operand is a definition.
_DEF0 = {Semantics.MOV, Semantics.ALU, Semantics.CMP, Semantics.LOAD,
         Semantics.LEA, Semantics.POP, Semantics.CVT, Semantics.ALLOCA}


def instr_defs_uses(instr: MachineInstr
                    ) -> Tuple[List[int], List[int]]:
    """Operand indices that are (defined, used) by *instr*.

    Memory operands are always uses of their base/index registers, even
    in operand slot 0.
    """
    defs: List[int] = []
    uses: List[int] = []
    if instr.semantics == Semantics.VLOAD:
        # Every lane operand is a definition; the trailing address Mem
        # is a use.  (VSTORE needs no arm: all its operands are uses,
        # which is the default below.)
        for index, operand in enumerate(instr.operands):
            if isinstance(operand, Mem):
                uses.append(index)
            elif isinstance(operand, (VirtualReg, PhysReg)):
                defs.append(index)
        return defs, uses
    for index, operand in enumerate(instr.operands):
        if isinstance(operand, Mem):
            uses.append(index)
        elif isinstance(operand, (VirtualReg, PhysReg)):
            if index == 0 and instr.semantics in _DEF0:
                defs.append(index)
            else:
                uses.append(index)
    return defs, uses


class AllocationError(MachineError):
    pass


# ---------------------------------------------------------------------------
# Spill-everything
# ---------------------------------------------------------------------------

class SpillAllAllocator:
    """Every vreg gets a frame slot; scratch registers do the work."""

    name = "spill-all"

    def __init__(self):
        self._slots: Dict[int, int] = {}

    def slot_of(self, machine: MachineFunction, reg: VirtualReg) -> int:
        offset = self._slots.get(reg.index)
        if offset is None:
            offset = machine.frame_size
            machine.frame_size += 8
            self._slots[reg.index] = offset
        return offset

    def run(self, machine: MachineFunction) -> None:
        target = machine.target

        def slot_of(reg: VirtualReg) -> int:
            return self.slot_of(machine, reg)

        for block in machine.blocks:
            rewritten: List[MachineInstr] = []
            for instr in block.instructions:
                scratch_pool = {"int": list(target.scratch_gprs),
                                "float": list(target.scratch_fprs)}
                assigned: Dict[int, PhysReg] = {}

                def scratch_for(reg: VirtualReg) -> PhysReg:
                    existing = assigned.get(reg.index)
                    if existing is not None:
                        return existing
                    pool_key = "float" if reg.type.is_floating_point \
                        else "int"
                    pool = scratch_pool[pool_key]
                    if not pool:
                        raise AllocationError(
                            "out of scratch registers in {0!r}"
                            .format(instr))
                    phys = PhysReg(pool.pop(0),
                                   is_float=pool_key == "float")
                    assigned[reg.index] = phys
                    return phys

                if instr.semantics in (Semantics.VLOAD,
                                       Semantics.VSTORE):
                    # One atomic vector op can name more lanes than
                    # there are scratch registers: bind each lane vreg
                    # straight to its frame slot (the executor reads/
                    # writes lane slots directly) and only scratch the
                    # address registers.
                    lane_loads: List[MachineInstr] = []
                    for index, operand in enumerate(instr.operands):
                        if isinstance(operand, VirtualReg):
                            instr.operands[index] = Mem(
                                base=_fp(), offset=slot_of(operand))
                        elif isinstance(operand, Mem):
                            for attr in ("base", "index"):
                                reg = getattr(operand, attr)
                                if isinstance(reg, VirtualReg):
                                    phys = scratch_for(reg)
                                    lane_loads.append(_reload(
                                        phys, slot_of(reg), reg.type))
                                    setattr(operand, attr, phys)
                    rewritten.extend(lane_loads)
                    rewritten.append(instr)
                    continue
                defs, uses = instr_defs_uses(instr)
                loads: List[MachineInstr] = []
                stores: List[MachineInstr] = []
                # Rewrite uses: reload from the slot.
                for index in uses:
                    operand = instr.operands[index]
                    if isinstance(operand, VirtualReg):
                        phys = scratch_for(operand)
                        loads.append(_reload(phys, slot_of(operand),
                                             operand.type))
                        instr.operands[index] = phys
                    elif isinstance(operand, Mem):
                        operand_base = operand.base
                        if isinstance(operand_base, VirtualReg):
                            phys = scratch_for(operand_base)
                            loads.append(_reload(
                                phys, slot_of(operand_base),
                                operand_base.type))
                            operand.base = phys
                        operand_index = operand.index
                        if isinstance(operand_index, VirtualReg):
                            phys = scratch_for(operand_index)
                            loads.append(_reload(
                                phys, slot_of(operand_index),
                                operand_index.type))
                            operand.index = phys
                # Rewrite the def: compute into scratch, spill to slot.
                for index in defs:
                    operand = instr.operands[index]
                    if isinstance(operand, VirtualReg):
                        phys = scratch_for(operand)
                        stores.append(_spill(phys, slot_of(operand),
                                             operand.type))
                        instr.operands[index] = phys
                rewritten.extend(loads)
                rewritten.append(instr)
                rewritten.extend(stores)
            block.instructions = rewritten


def _reload(phys: PhysReg, offset: int, type_: types.Type) -> MachineInstr:
    return MachineInstr("reload", Semantics.LOAD,
                        [phys, Mem(base=_fp(), offset=offset)],
                        value_type=_slot_type(type_), ee=False)


def _spill(phys: PhysReg, offset: int, type_: types.Type) -> MachineInstr:
    return MachineInstr("spill", Semantics.STORE,
                        [phys, Mem(base=_fp(), offset=offset)],
                        value_type=_slot_type(type_), ee=False)


from repro.targets.machine import spill_slot_type as _slot_type


def _fp() -> PhysReg:
    from repro.targets.codegen import FRAME_POINTER
    return FRAME_POINTER


# ---------------------------------------------------------------------------
# Linear scan
# ---------------------------------------------------------------------------

class _Interval:
    __slots__ = ("reg", "start", "end", "crosses_call", "phys", "slot")

    def __init__(self, reg: VirtualReg):
        self.reg = reg
        self.start = -1
        self.end = -1
        self.crosses_call = False
        self.phys: Optional[PhysReg] = None
        self.slot: Optional[int] = None

    def extend(self, index: int) -> None:
        if self.start < 0 or index < self.start:
            self.start = index
        if index > self.end:
            self.end = index


class LinearScanAllocator:
    """Poletto-Sarkar linear scan with call-aware register classes."""

    name = "linear-scan"

    def run(self, machine: MachineFunction) -> None:
        order, positions = self._linearize(machine)
        live_in, live_out = self._block_liveness(machine)
        intervals = self._build_intervals(machine, order, live_in,
                                          live_out)
        self._mark_call_crossings(machine, intervals, live_out)
        used_callee_saved = self._allocate(machine, intervals)
        self._rewrite(machine, intervals)
        self._save_restore(machine, used_callee_saved)

    # -- linearization -----------------------------------------------------------

    def _linearize(self, machine: MachineFunction):
        order: List[MachineInstr] = []
        positions: Dict[int, int] = {}
        for block in machine.blocks:
            for instr in block.instructions:
                positions[id(instr)] = len(order)
                order.append(instr)
        return order, positions

    # -- liveness-extended intervals ------------------------------------------------

    def _build_intervals(self, machine: MachineFunction,
                         order: Sequence[MachineInstr],
                         live_in: Dict[str, Set[int]],
                         live_out: Dict[str, Set[int]]
                         ) -> List[_Interval]:
        intervals: Dict[int, _Interval] = {}

        def interval(reg: VirtualReg) -> _Interval:
            entry = intervals.get(reg.index)
            if entry is None:
                entry = intervals[reg.index] = _Interval(reg)
            return entry

        # Block boundaries in the linear order.
        block_ranges: Dict[str, Tuple[int, int]] = {}
        cursor = 0
        for block in machine.blocks:
            block_ranges[block.name] = (cursor,
                                        cursor + len(block.instructions))
            cursor += len(block.instructions)

        # Local first-def / last-use positions.
        for index, instr in enumerate(order):
            defs, uses = instr_defs_uses(instr)
            for op_index in uses:
                operand = instr.operands[op_index]
                if isinstance(operand, VirtualReg):
                    interval(operand).extend(index)
                elif isinstance(operand, Mem):
                    if isinstance(operand.base, VirtualReg):
                        interval(operand.base).extend(index)
                    if isinstance(operand.index, VirtualReg):
                        interval(operand.index).extend(index)
            for op_index in defs:
                operand = instr.operands[op_index]
                if isinstance(operand, VirtualReg):
                    interval(operand).extend(index)

        # Machine-level liveness fixpoint to extend across back edges.
        for block in machine.blocks:
            start, end = block_ranges[block.name]
            if end == start:
                continue
            for reg_index in live_out.get(block.name, ()):
                if reg_index in intervals:
                    intervals[reg_index].extend(end - 1)
            for reg_index in live_in.get(block.name, ()):
                if reg_index in intervals:
                    intervals[reg_index].extend(start)
        return sorted(intervals.values(), key=lambda iv: iv.start)

    def _block_liveness(self, machine: MachineFunction):
        successors: Dict[str, List[str]] = {}
        blocks_by_name = {block.name: block for block in machine.blocks}
        for block in machine.blocks:
            outs: List[str] = []
            for instr in block.instructions:
                for operand in instr.operands:
                    if isinstance(operand, LabelRef) \
                            and operand.name in blocks_by_name:
                        outs.append(operand.name)
                unwind = instr.attrs.get("unwind")
                if unwind and unwind in blocks_by_name:
                    outs.append(unwind)
            successors[block.name] = outs
        gen: Dict[str, Set[int]] = {}
        kill: Dict[str, Set[int]] = {}
        for block in machine.blocks:
            block_gen: Set[int] = set()
            block_kill: Set[int] = set()
            for instr in block.instructions:
                defs, uses = instr_defs_uses(instr)
                for op_index in uses:
                    operand = instr.operands[op_index]
                    for reg in _operand_vregs(operand):
                        if reg.index not in block_kill:
                            block_gen.add(reg.index)
                for op_index in defs:
                    operand = instr.operands[op_index]
                    if isinstance(operand, VirtualReg):
                        block_kill.add(operand.index)
            gen[block.name] = block_gen
            kill[block.name] = block_kill
        live_in: Dict[str, Set[int]] = {b.name: set()
                                        for b in machine.blocks}
        live_out: Dict[str, Set[int]] = {b.name: set()
                                         for b in machine.blocks}
        changed = True
        while changed:
            changed = False
            for block in reversed(machine.blocks):
                name = block.name
                out: Set[int] = set()
                for successor in successors[name]:
                    out |= live_in[successor]
                new_in = gen[name] | (out - kill[name])
                if out != live_out[name] or new_in != live_in[name]:
                    live_out[name] = out
                    live_in[name] = new_in
                    changed = True
        return live_in, live_out

    def _mark_call_crossings(self, machine: MachineFunction,
                             intervals: List[_Interval],
                             live_out: Dict[str, Set[int]]) -> None:
        """Mark every interval live across any CALL.

        Computed per block with a backwards live-set walk — linear
        positions alone are unsound because layout order is not
        execution order (a value can cross a call through a back
        edge whose blocks are laid out after its last linear use).
        """
        by_index = {interval.reg.index: interval
                    for interval in intervals}
        for block in machine.blocks:
            live: Set[int] = set(live_out.get(block.name, ()))
            for instr in reversed(block.instructions):
                defs, uses = instr_defs_uses(instr)
                for op_index in defs:
                    operand = instr.operands[op_index]
                    if isinstance(operand, VirtualReg):
                        live.discard(operand.index)
                if instr.semantics == Semantics.CALL:
                    for reg_index in live:
                        interval = by_index.get(reg_index)
                        if interval is not None:
                            interval.crosses_call = True
                for op_index in uses:
                    operand = instr.operands[op_index]
                    for reg in _operand_vregs(operand):
                        live.add(reg.index)

    # -- allocation --------------------------------------------------------------------

    def _allocate(self, machine: MachineFunction,
                  intervals: List[_Interval]) -> List[str]:
        target = machine.target
        callee_saved = set(target.callee_saved)
        free_int = [name for name in target.gpr_names]
        free_float = [name for name in target.fpr_names]
        active: List[_Interval] = []
        used_callee_saved: Set[str] = set()

        def free_list(interval: _Interval) -> List[str]:
            return free_float if interval.reg.type.is_floating_point \
                else free_int

        def pick(interval: _Interval) -> Optional[str]:
            pool = free_list(interval)
            if interval.crosses_call:
                for name in pool:
                    if name in callee_saved:
                        return name
                return None  # caller-saved would be clobbered: spill
            for name in pool:
                if name not in callee_saved:
                    return name
            return pool[0] if pool else None

        for interval in intervals:
            # Expire finished intervals.
            for finished in [a for a in active if a.end < interval.start]:
                active.remove(finished)
                if finished.phys is not None:
                    free_list(finished).append(finished.phys.name)
            choice = pick(interval)
            if choice is None:
                self._spill_one(machine, interval, active, free_list)
                continue
            free_list(interval).remove(choice)
            interval.phys = PhysReg(
                choice, interval.reg.type.is_floating_point)
            if choice in callee_saved:
                used_callee_saved.add(choice)
            active.append(interval)
        return sorted(used_callee_saved)

    def _spill_one(self, machine: MachineFunction, interval: _Interval,
                   active: List[_Interval], free_list) -> None:
        """Spill either this interval or the active one ending last."""
        candidates = [a for a in active
                      if a.phys is not None
                      and a.reg.type.is_floating_point
                      == interval.reg.type.is_floating_point
                      and (a.crosses_call or not interval.crosses_call)]
        victim = max(candidates, key=lambda a: a.end, default=None)
        if victim is not None and victim.end > interval.end \
                and not interval.crosses_call:
            interval.phys = victim.phys
            victim.phys = None
            victim.slot = machine.frame_size
            machine.frame_size += 8
            active.remove(victim)
            active.append(interval)
        else:
            interval.slot = machine.frame_size
            machine.frame_size += 8

    # -- rewriting ---------------------------------------------------------------------

    def _rewrite(self, machine: MachineFunction,
                 intervals: List[_Interval]) -> None:
        assignment: Dict[int, _Interval] = {
            interval.reg.index: interval for interval in intervals}
        scratch = list(machine.target.scratch_gprs)
        scratch_float = list(machine.target.scratch_fprs)
        for block in machine.blocks:
            rewritten: List[MachineInstr] = []
            for instr in block.instructions:
                loads: List[MachineInstr] = []
                stores: List[MachineInstr] = []
                pool = {"int": list(scratch), "float": list(scratch_float)}
                local: Dict[int, PhysReg] = {}

                def resolve(reg: VirtualReg, is_def: bool) -> PhysReg:
                    interval = assignment[reg.index]
                    if interval.phys is not None:
                        return interval.phys
                    phys = local.get(reg.index)
                    if phys is None:
                        key = "float" if reg.type.is_floating_point \
                            else "int"
                        if not pool[key]:
                            raise AllocationError(
                                "out of scratch registers")
                        phys = PhysReg(pool[key].pop(0), key == "float")
                        local[reg.index] = phys
                    if is_def:
                        stores.append(_spill(phys, interval.slot,
                                             reg.type))
                    else:
                        loads.append(_reload(phys, interval.slot,
                                             reg.type))
                    return phys

                if instr.semantics in (Semantics.VLOAD,
                                       Semantics.VSTORE):
                    # Lane operands of the atomic vector ops never go
                    # through scratch staging: allocated lanes become
                    # their physical register, spilled lanes bind to
                    # their frame slot directly (one vector op can name
                    # more lanes than the scratch pool holds).
                    for index, operand in enumerate(instr.operands):
                        if isinstance(operand, VirtualReg):
                            interval = assignment[operand.index]
                            if interval.phys is not None:
                                instr.operands[index] = interval.phys
                            else:
                                instr.operands[index] = Mem(
                                    base=_fp(), offset=interval.slot)
                        elif isinstance(operand, Mem):
                            if isinstance(operand.base, VirtualReg):
                                operand.base = resolve(operand.base,
                                                       False)
                            if isinstance(operand.index, VirtualReg):
                                operand.index = resolve(operand.index,
                                                        False)
                    rewritten.extend(loads)
                    rewritten.append(instr)
                    continue
                defs, uses = instr_defs_uses(instr)
                for index in uses:
                    operand = instr.operands[index]
                    if isinstance(operand, VirtualReg):
                        instr.operands[index] = resolve(operand, False)
                    elif isinstance(operand, Mem):
                        if isinstance(operand.base, VirtualReg):
                            operand.base = resolve(operand.base, False)
                        if isinstance(operand.index, VirtualReg):
                            operand.index = resolve(operand.index, False)
                for index in defs:
                    operand = instr.operands[index]
                    if isinstance(operand, VirtualReg):
                        instr.operands[index] = resolve(operand, True)
                rewritten.extend(loads)
                rewritten.append(instr)
                rewritten.extend(stores)
            block.instructions = rewritten

    # -- prologue/epilogue --------------------------------------------------------------

    def _save_restore(self, machine: MachineFunction,
                      used_callee_saved: List[str]) -> None:
        if not used_callee_saved or not machine.blocks:
            return
        entry = machine.blocks[0]
        saves = [MachineInstr("save", Semantics.PUSH,
                              [PhysReg(name)], value_type=types.ULONG)
                 for name in used_callee_saved]
        entry.instructions[0:0] = saves
        for block in machine.blocks:
            for index, instr in enumerate(list(block.instructions)):
                if instr.semantics == Semantics.RET:
                    restores = [
                        MachineInstr("restore", Semantics.POP,
                                     [PhysReg(name)],
                                     value_type=types.ULONG)
                        for name in reversed(used_callee_saved)]
                    position = block.instructions.index(instr)
                    block.instructions[position:position] = restores


def _operand_vregs(operand):
    if isinstance(operand, VirtualReg):
        yield operand
    elif isinstance(operand, Mem):
        if isinstance(operand.base, VirtualReg):
            yield operand.base
        if isinstance(operand.index, VirtualReg):
            yield operand.index
