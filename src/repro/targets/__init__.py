"""Translators from LLVA to the two simulated hardware I-ISAs.

The x86 back end pairs naive CISC selection with the spill-everything
allocator ("virtually no optimization and very simple register
allocation", Section 5.2); the SPARC back end pairs RISC legalization
(immediate synthesis, delay slots, explicit loads/stores) with a linear
scan allocator.  Both share the lowering driver in
:mod:`repro.targets.codegen`.
"""

from repro.targets.codegen import FunctionLowering, split_critical_edges
from repro.targets.machine import (
    MachineBasicBlock,
    MachineError,
    MachineFunction,
    MachineInstr,
    Semantics,
    TargetInfo,
    spill_slot_type,
)
from repro.targets.native import (
    NativeModule,
    deserialize_native,
    serialize_native,
    translate_module,
)
from repro.targets.sparc import make_sparc_target
from repro.targets.verify import (
    MachineVerificationError,
    disassemble,
    verify_machine_function,
    verify_native_module,
)
from repro.targets.x86 import make_x86_target

TARGET_FACTORIES = {
    "x86": make_x86_target,
    "sparc": make_sparc_target,
}


def make_target(name: str):
    """Construct a target by name (``x86`` or ``sparc``)."""
    return TARGET_FACTORIES[name]()


__all__ = [
    "FunctionLowering",
    "split_critical_edges",
    "MachineBasicBlock",
    "MachineError",
    "MachineFunction",
    "MachineInstr",
    "Semantics",
    "TargetInfo",
    "spill_slot_type",
    "NativeModule",
    "deserialize_native",
    "serialize_native",
    "translate_module",
    "make_sparc_target",
    "make_x86_target",
    "make_target",
    "TARGET_FACTORIES",
    "MachineVerificationError",
    "disassemble",
    "verify_machine_function",
    "verify_native_module",
]
