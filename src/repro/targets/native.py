"""Native object code: the output of translation.

A :class:`NativeModule` holds the translated machine functions for one
target plus size/count accounting (the "Native size" and "#X86/#SPARC
Inst." columns of Table 2).  It serializes to a compact byte format so
LLEE can cache translations offline through the storage API
(Section 4.1) and reload them with a relocation step.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.ir import types
from repro.ir.module import Module
from repro.targets.machine import (
    Imm,
    LabelRef,
    MachineBasicBlock,
    MachineFunction,
    MachineInstr,
    Mem,
    PhysReg,
    Semantics,
    SymRef,
    TargetInfo,
)

NATIVE_MAGIC = "LLVA-NATIVE-1"


class NativeModule:
    """Translated code for one target."""

    def __init__(self, target: TargetInfo, source_name: str = "module"):
        self.target = target
        self.source_name = source_name
        self.functions: Dict[str, MachineFunction] = {}

    def add_function(self, machine: MachineFunction) -> MachineFunction:
        self.functions[machine.name] = machine
        return machine

    def num_instructions(self) -> int:
        return sum(f.num_instructions() for f in self.functions.values())

    def code_size(self) -> int:
        """Total encoded bytes of machine code."""
        return sum(f.code_size() for f in self.functions.values())

    def data_size(self, module: Module) -> int:
        """Bytes of *initialized* global data in the executable file.

        Zero-initialized and uninitialized globals live in .bss: they
        occupy address space but no file bytes, in the native executable
        and in the virtual object code alike.
        """
        from repro.ir.values import ConstantZero

        td = self.target.target_data
        total = 0
        for variable in module.globals.values():
            if variable.initializer is None \
                    or isinstance(variable.initializer, ConstantZero):
                total += 16  # symbol + bss record overhead only
                continue
            try:
                total += td.size_of(variable.value_type)
            except types.LlvaTypeError:
                pass
        return total

    def executable_size(self, module: Module,
                        per_function_overhead: int = 32,
                        base_overhead: int = 1024) -> int:
        """A linked-executable size model: code + data + symbol/linkage
        overhead (headers, plt-like stubs)."""
        return (self.code_size() + self.data_size(module)
                + per_function_overhead * len(self.functions)
                + base_overhead)


def translate_module(module: Module, target) -> NativeModule:
    """Translate every defined function of *module* (the offline,
    whole-module translation mode)."""
    native = NativeModule(target, module.name)
    for function in module.functions.values():
        if function.is_declaration:
            continue
        native.add_function(target.translate_function(function))
    return native


# ---------------------------------------------------------------------------
# Serialization (for the LLEE offline cache)
# ---------------------------------------------------------------------------

_TYPE_BY_NAME = dict(types.PRIMITIVES)


def _type_tag(type_: Optional[types.Type], target: TargetInfo) -> str:
    if type_ is None:
        return ""
    if type_.is_pointer:
        # Machine code only needs a pointer's size and integer-ness.
        return "ptr"
    return str(type_)


def _type_from_tag(tag: str, target: TargetInfo) -> Optional[types.Type]:
    if not tag:
        return None
    if tag == "ptr":
        return types.pointer_to(types.SBYTE)
    primitive = _TYPE_BY_NAME.get(tag)
    if primitive is not None:
        return primitive
    raise ValueError("bad native type tag {0!r}".format(tag))


def _operand_to_json(operand, target: TargetInfo):
    if isinstance(operand, PhysReg):
        return ["r", operand.name, 1 if operand.is_float else 0]
    if isinstance(operand, Imm):
        return ["i", operand.value]
    if isinstance(operand, Mem):
        return ["m",
                operand.base.name if operand.base is not None else None,
                operand.offset,
                operand.index.name if operand.index is not None else None,
                operand.scale,
                operand.symbol]
    if isinstance(operand, LabelRef):
        return ["l", operand.name]
    if isinstance(operand, SymRef):
        return ["s", operand.name]
    raise TypeError(
        "unserializable operand {0!r} (virtual registers must be "
        "allocated before caching)".format(operand))


def _operand_from_json(record, target: TargetInfo):
    kind = record[0]
    if kind == "r":
        return PhysReg(record[1], bool(record[2]))
    if kind == "i":
        return Imm(record[1])
    if kind == "m":
        base = PhysReg(record[1]) if record[1] is not None else None
        index = PhysReg(record[3]) if record[3] is not None else None
        return Mem(base=base, offset=record[2], index=index,
                   scale=record[4], symbol=record[5])
    if kind == "l":
        return LabelRef(record[1])
    if kind == "s":
        return SymRef(record[1])
    raise ValueError("bad operand kind {0!r}".format(kind))

_TYPE_ATTRS = ("value_type", "mem_value_type", "from_type", "to_type",
               "return_type")


def serialize_native(native: NativeModule) -> bytes:
    """Encode a native module for the offline cache."""
    target = native.target
    payload = {
        "magic": NATIVE_MAGIC,
        "target": target.name,
        "source": native.source_name,
        "functions": [],
    }
    for machine in native.functions.values():
        blocks = []
        for block in machine.blocks:
            instrs = []
            for instr in block.instructions:
                attrs = {}
                for key, value in instr.attrs.items():
                    if key in _TYPE_ATTRS:
                        attrs[key] = _type_tag(value, target)
                    else:
                        attrs[key] = value
                instrs.append([
                    instr.mnemonic, instr.semantics,
                    [_operand_to_json(op, target)
                     for op in instr.operands],
                    attrs,
                ])
            blocks.append([block.name, instrs])
        payload["functions"].append({
            "name": machine.name,
            "frame_size": machine.frame_size,
            "smc_version": machine.smc_version,
            "blocks": blocks,
        })
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def deserialize_native(data: bytes, target) -> NativeModule:
    """Decode a cached native module; raises ``ValueError`` when the
    cache was produced for a different target (the validation step of
    Section 4.1's cache lookup)."""
    payload = json.loads(data.decode("utf-8"))
    if payload.get("magic") != NATIVE_MAGIC:
        raise ValueError("not a native cache object")
    if payload.get("target") != target.name:
        raise ValueError(
            "cached translation is for target {0!r}, not {1!r}"
            .format(payload.get("target"), target.name))
    native = NativeModule(target, payload.get("source", "module"))
    for record in payload["functions"]:
        machine = MachineFunction(record["name"], target)
        machine.frame_size = record["frame_size"]
        machine.smc_version = record.get("smc_version", 0)
        for block_name, instr_records in record["blocks"]:
            block = machine.add_block(block_name)
            for mnemonic, semantics, operand_records, attrs in \
                    instr_records:
                operands = [_operand_from_json(r, target)
                            for r in operand_records]
                decoded_attrs = {}
                for key, value in attrs.items():
                    if key in _TYPE_ATTRS:
                        decoded_attrs[key] = _type_from_tag(value, target)
                    else:
                        decoded_attrs[key] = value
                block.append(MachineInstr(mnemonic, semantics, operands,
                                          **decoded_attrs))
        native.add_function(machine)
    return native
