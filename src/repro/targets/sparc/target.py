"""The SPARC V9-flavoured I-ISA.

Models the RISC properties that make the paper's SPARC expansion ratio
*higher* than x86's (2.5-4 vs 2.2-3.3 in Table 2) even though this back
end "produces higher quality code":

* strict load/store architecture: no memory operands — every access is
  its own instruction;
* 13-bit signed immediates: larger constants synthesize via
  ``sethi``/``or`` pairs;
* branch/call delay slots filled with ``nop`` by this simple translator;
* explicit register-argument moves plus callee-saved save/restore
  sequences in prologue/epilogue;
* fixed 4-byte instruction encoding.

Register allocation is linear scan over 16 allocatable integer registers
(the flat-window model: locals ``l0-l7`` callee-saved, outs ``o0-o5``
plus globals caller-saved).
"""

from __future__ import annotations

from typing import List

from repro.ir import types
from repro.ir.module import Function
from repro.targets.codegen import FunctionLowering
from repro.targets.machine import (
    Imm,
    LabelRef,
    MachineFunction,
    MachineInstr,
    Mem,
    PhysReg,
    Semantics,
    SymRef,
    TargetInfo,
    VirtualReg,
)
from repro.targets.regalloc import LinearScanAllocator

SIMM13_MAX = 4095
SIMM13_MIN = -4096

_MNEMONICS = {
    "add": "add", "sub": "sub", "mul": "mulx", "div": "sdivx",
    "rem": "srem",
    "and": "and", "or": "or", "xor": "xor", "shl": "sllx",
    "shr": "srax",
    "min": "min", "max": "max",
}

_FP_MNEMONICS = {
    "add": "faddd", "sub": "fsubd", "mul": "fmuld", "div": "fdivd",
    "rem": "fremd",
    "min": "fmind", "max": "fmaxd",
}

_LOAD_MNEMONIC = {1: "ldub", 2: "lduh", 4: "lduw", 8: "ldx"}
_STORE_MNEMONIC = {1: "stb", 2: "sth", 4: "stw", 8: "stx"}


class SparcTarget(TargetInfo):
    """TargetInfo plus the SPARC translation pipeline."""

    def translate_function(self, function: Function,
                           hosted: bool = False) -> MachineFunction:
        from repro.targets.codegen import remove_fallthrough_jumps
        machine = FunctionLowering(function, self, hosted=hosted).lower()
        _expand(machine)
        LinearScanAllocator().run(machine)
        _insert_register_window_ops(machine)
        _insert_delay_slots(machine)
        remove_fallthrough_jumps(machine)
        return machine


def make_sparc_target(pointer_size: int = 8) -> SparcTarget:
    """The SPARC V9 configuration (64-bit pointers, big-endian)."""
    return SparcTarget(
        name="sparc",
        pointer_size=pointer_size,
        endianness="big",
        # o0-o5 carry arguments/results and are written directly by the
        # calling-convention lowering, so they are never allocatable:
        # linear scan does not model physical-register liveness.
        gpr_names=(
            "l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7",
            "g4", "g5", "g6", "g7",
        ),
        fpr_names=("f0", "f2", "f4", "f6", "f8", "f10"),
        scratch_gprs=("g1", "g2", "g3"),
        scratch_fprs=("f60", "f62"),
        callee_saved=("l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7"),
        return_reg="o0",
        arg_regs=("o0", "o1", "o2", "o3", "o4", "o5"),
        max_alu_immediate=SIMM13_MAX,
        fixed_instr_width=4,
    )


def _expand(machine: MachineFunction) -> None:
    """Legalize to SPARC patterns: split wide immediates, expand LEA to
    adds, rename mnemonics."""
    for block in machine.blocks:
        expanded: List[MachineInstr] = []
        for instr in block.instructions:
            _expand_one(machine, instr, expanded)
        block.instructions = expanded


def _fits_simm13(value: object) -> bool:
    return isinstance(value, int) and SIMM13_MIN <= value <= SIMM13_MAX


def _materialize(machine: MachineFunction, value: object,
                 out: List[MachineInstr]) -> VirtualReg:
    """sethi %hi(value); or %lo(value) — the RISC immediate synthesis.

    Values wider than 32 bits chain two more shifted pairs (the classic
    64-bit SPARC sequence), and floats load through a constant slot."""
    temp = machine.new_vreg(types.ULONG)
    if isinstance(value, float):
        # SPARC builds the 64-bit pattern in an integer register, spills
        # it, and loads it back into an FP register: sethi/or pair for
        # each half plus the store/load round trip.
        out.append(MachineInstr("sethi", Semantics.MOV,
                                [temp, Imm(value)],
                                value_type=types.DOUBLE))
        for filler in ("or", "sethi", "or", "stx"):
            out.append(MachineInstr(filler, Semantics.NOP, []))
        out.append(MachineInstr("ldd", Semantics.NOP, []))
        return temp
    # The first instruction carries the exact value for the simulator;
    # the rest of the real synthesis sequence (or / sethi / or / sllx /
    # or, depending on width and sign) is emitted as filler so the
    # instruction counts, sizes, and cycles stay faithful.
    out.append(MachineInstr("sethi", Semantics.MOV, [temp, Imm(value)],
                            value_type=types.LONG if value < 0
                            else types.ULONG))
    fillers = ["or"]
    high32 = (value >> 32) & 0xFFFFFFFF
    if high32 not in (0, 0xFFFFFFFF):
        fillers += ["sethi", "or", "sllx", "or"]
    elif value < 0:
        fillers += ["signx"]
    for mnemonic in fillers:
        out.append(MachineInstr(mnemonic, Semantics.NOP, []))
    return temp


def _expand_one(machine: MachineFunction, instr: MachineInstr,
                out: List[MachineInstr]) -> None:
    semantics = instr.semantics

    # Immediate legalization for ALU/CMP/MOV sources.
    if semantics in (Semantics.ALU, Semantics.CMP):
        last = len(instr.operands) - 1
        operand = instr.operands[last]
        if isinstance(operand, Imm) and not _fits_simm13(operand.value):
            instr.operands[last] = _materialize(machine, operand.value,
                                                out)
        if semantics == Semantics.CMP:
            # SPARC materializes booleans with a preset + conditional
            # move around the compare (mov 0; subcc; movcc 1) — one of
            # the RISC verbosity sources behind the higher SPARC
            # expansion ratio in Table 2.
            out.append(MachineInstr("movcc", Semantics.NOP, []))
        elif semantics == Semantics.ALU:
            value_type = instr.attrs.get("value_type")
            if value_type is not None and value_type.is_integer \
                    and value_type.size < 8 \
                    and instr.attrs.get("op") not in (
                        "and", "or", "xor", "min", "max"):
                # V9 computes in 64-bit registers: sub-64-bit results
                # are re-canonicalized with an explicit shift pair
                # (sra/srl reg, 0) so wraparound and signedness match
                # the declared width.  (The simulator folds the effect
                # into the ALU op itself; the instruction is emitted for
                # faithful count/size/cycle accounting.)
                out.append(instr)
                instr.mnemonic = _mnemonic_for(instr)
                out.append(MachineInstr(
                    "sra" if value_type.is_signed else "srl",
                    Semantics.NOP, []))
                return
    elif semantics == Semantics.MOV:
        source = instr.operands[1]
        if isinstance(source, Imm) and not _fits_simm13(source.value):
            reg = _materialize(machine, source.value, out)
            instr.operands[1] = reg

    # Vector block transfers: lane operands stay as allocated (register
    # or frame slot); only the trailing program address needs the
    # [reg + simm13] legalization.
    if semantics in (Semantics.VLOAD, Semantics.VSTORE):
        mem_index = len(instr.operands) - 1
        operand = instr.operands[mem_index]
        if isinstance(operand, Mem):
            instr.operands[mem_index] = _legalize_mem(machine, operand,
                                                      out)
        instr.mnemonic = "ldblk" if semantics == Semantics.VLOAD \
            else "stblk"
        out.append(instr)
        return

    # Addressing legalization: loads/stores take [reg + simm13] only.
    if semantics in (Semantics.LOAD, Semantics.STORE):
        mem_index = 1
        operand = instr.operands[mem_index]
        if isinstance(operand, Mem):
            instr.operands[mem_index] = _legalize_mem(machine, operand,
                                                      out)
        value_type = instr.attrs.get("value_type")
        size = 8
        if value_type is not None:
            try:
                size = machine.target.target_data.size_of(value_type)
            except Exception:
                size = 8
        if value_type is not None and value_type.is_floating_point:
            instr.mnemonic = "ldd" if semantics == Semantics.LOAD \
                else "std"
        else:
            table = _LOAD_MNEMONIC if semantics == Semantics.LOAD \
                else _STORE_MNEMONIC
            instr.mnemonic = table.get(size, "ldx")
        out.append(instr)
        return

    if semantics == Semantics.LEA:
        _expand_lea(machine, instr, out)
        return

    if semantics == Semantics.CVT:
        from_type = instr.attrs.get("from_type")
        to_type = instr.attrs.get("to_type")
        crosses = (from_type is not None and to_type is not None
                   and from_type.is_floating_point
                   != to_type.is_floating_point)
        if crosses:
            # No direct int<->fp register moves on SPARC: the value
            # round-trips through a stack slot before the convert.
            out.append(MachineInstr("stx", Semantics.NOP, []))
            out.append(MachineInstr("ldd", Semantics.NOP, []))
        instr.mnemonic = _mnemonic_for(instr)
        out.append(instr)
        return

    instr.mnemonic = _mnemonic_for(instr)
    out.append(instr)


def _legalize_mem(machine: MachineFunction, mem: Mem,
                  out: List[MachineInstr]) -> Mem:
    from repro.targets.codegen import INCOMING_ARGS
    if mem.symbol == INCOMING_ARGS:
        return mem  # resolved against the frame by the simulator
    if mem.symbol is not None:
        address = machine.new_vreg(types.ULONG)
        out.append(MachineInstr("sethi", Semantics.MOV,
                                [address, SymRef(mem.symbol)],
                                value_type=types.ULONG))
        out.append(MachineInstr("or", Semantics.ALU,
                                [address, address, Imm(0)],
                                op="or", value_type=types.ULONG))
        base = address
        mem = Mem(base=base, offset=mem.offset)
    if mem.index is not None:
        summed = machine.new_vreg(types.ULONG)
        out.append(MachineInstr("add", Semantics.ALU,
                                [summed, mem.base, mem.index],
                                op="add", value_type=types.ULONG))
        mem = Mem(base=summed, offset=mem.offset)
    if not _fits_simm13(mem.offset):
        offset_reg = _materialize(machine, mem.offset, out)
        summed = machine.new_vreg(types.ULONG)
        out.append(MachineInstr("add", Semantics.ALU,
                                [summed, mem.base, offset_reg],
                                op="add", value_type=types.ULONG))
        mem = Mem(base=summed, offset=0)
    return mem


def _expand_lea(machine: MachineFunction, instr: MachineInstr,
                out: List[MachineInstr]) -> None:
    """RISC has no LEA: explicit add sequence."""
    start = len(out)
    dest = instr.operands[0]
    mem = instr.operands[1]
    assert isinstance(mem, Mem)
    current = mem.base
    if mem.index is not None:
        out.append(MachineInstr("add", Semantics.ALU,
                                [dest, current, mem.index],
                                op="add", value_type=types.ULONG))
        current = dest
    if mem.offset or current is not dest:
        offset = mem.offset
        if _fits_simm13(offset):
            out.append(MachineInstr("add", Semantics.ALU,
                                    [dest, current, Imm(offset)],
                                    op="add", value_type=types.ULONG))
        else:
            offset_reg = _materialize(machine, offset, out)
            out.append(MachineInstr("add", Semantics.ALU,
                                    [dest, current, offset_reg],
                                    op="add", value_type=types.ULONG))
    # Hosted (tier-3) annotations ride on the replaced LEA: the step
    # charge and site move to the first expansion instruction, the
    # V-ABI definition to the last one (which writes `dest`).
    if len(out) > start:
        site = instr.attrs.get("site")
        if site is not None:
            for expanded in out[start:]:
                expanded.attrs.setdefault("site", site)
        if "step" in instr.attrs:
            out[start].attrs["step"] = instr.attrs["step"]
        if "vabi" in instr.attrs:
            out[-1].attrs["vabi"] = instr.attrs["vabi"]


def _mnemonic_for(instr: MachineInstr) -> str:
    semantics = instr.semantics
    if semantics == Semantics.ALU:
        value_type = instr.attrs.get("value_type")
        op = instr.attrs["op"]
        if value_type is not None and value_type.is_floating_point:
            return _FP_MNEMONICS[op]
        if op == "shr" and value_type is not None \
                and not value_type.is_signed:
            return "srlx"
        if op == "div" and value_type is not None \
                and not value_type.is_signed:
            return "udivx"
        return _MNEMONICS[op]
    if semantics == Semantics.MOV:
        return "mov"
    if semantics == Semantics.CMP:
        return "cmp"
    if semantics == Semantics.JMP:
        return "ba"
    if semantics == Semantics.JCC:
        return "brnz"
    if semantics == Semantics.CALL:
        return "call"
    if semantics == Semantics.RET:
        return "ret"
    if semantics == Semantics.PUSH:
        return "stx"
    if semantics == Semantics.POP:
        return "ldx"
    if semantics == Semantics.CVT:
        return "fcvt"
    if semantics == Semantics.ADJSP:
        return "sub"
    if semantics == Semantics.LEA:
        return "add"
    if semantics == Semantics.UNWIND:
        return "ta"
    return semantics


def _insert_register_window_ops(machine: MachineFunction) -> None:
    """SPARC prologues execute ``save %sp, -N, %sp`` and epilogues pair
    ``ret`` with ``restore`` — fixed per-function overhead the paper's
    Section 5.2 folds into "register saves and restores"."""
    if not machine.blocks:
        return
    machine.blocks[0].instructions.insert(
        0, MachineInstr("save", Semantics.NOP, []))
    for block in machine.blocks:
        for position in range(len(block.instructions) - 1, -1, -1):
            if block.instructions[position].semantics == Semantics.RET:
                block.instructions.insert(
                    position, MachineInstr("restore", Semantics.NOP, []))


def _insert_delay_slots(machine: MachineFunction) -> None:
    """This simple translator fills every branch/call delay slot with a
    ``nop`` — one source of SPARC's higher expansion ratio."""
    delayed = {Semantics.JMP, Semantics.JCC, Semantics.CALL,
               Semantics.RET}
    for block in machine.blocks:
        with_delays: List[MachineInstr] = []
        for instr in block.instructions:
            with_delays.append(instr)
            if instr.semantics in delayed:
                with_delays.append(
                    MachineInstr("nop", Semantics.NOP, []))
        block.instructions = with_delays
