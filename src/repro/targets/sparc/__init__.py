"""The simulated SPARC V9-flavoured I-ISA back end."""

from repro.targets.sparc.target import SparcTarget, make_sparc_target

__all__ = ["SparcTarget", "make_sparc_target"]
