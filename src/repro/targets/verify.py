"""Machine-code verification and disassembly listing.

The machine verifier is the JIT's output check: after register
allocation no virtual registers may remain, every branch target must
resolve to a block of the same function, every block must end in
control flow (or fall through to an existing next block), and operand
shapes must match each semantic's contract.  LLEE runs it on
deserialized cache entries in paranoid mode; the tests run it on every
translation.

The disassembler renders a :class:`MachineFunction` as an assembler-
style listing for debugging and the examples.
"""

from __future__ import annotations

from typing import List, Set

from repro.targets.machine import (
    Imm,
    LabelRef,
    MachineError,
    MachineFunction,
    MachineInstr,
    Mem,
    PhysReg,
    Semantics,
    SymRef,
    VirtualReg,
)

#: Minimum operand counts per semantic micro-op.
_MIN_OPERANDS = {
    Semantics.MOV: 2, Semantics.ALU: 3, Semantics.CMP: 3,
    Semantics.LOAD: 2, Semantics.STORE: 2, Semantics.LEA: 2,
    Semantics.JMP: 1, Semantics.JCC: 2, Semantics.CALL: 1,
    Semantics.RET: 0, Semantics.PUSH: 1, Semantics.POP: 1,
    Semantics.CVT: 2, Semantics.ADJSP: 1, Semantics.UNWIND: 0,
    Semantics.NOP: 0,
    Semantics.VLOAD: 2, Semantics.VSTORE: 2,
}

_FLOW = {Semantics.JMP, Semantics.RET, Semantics.UNWIND}


class MachineVerificationError(MachineError):
    def __init__(self, errors: List[str]):
        super().__init__("\n".join(errors))
        self.errors = errors


def verify_machine_function(machine: MachineFunction) -> None:
    """Verify one translated function; raises on any violation."""
    errors: List[str] = []
    labels: Set[str] = {block.name for block in machine.blocks}
    if not machine.blocks:
        errors.append("{0}: no blocks".format(machine.name))
    for index, block in enumerate(machine.blocks):
        where = "{0}:{1}".format(machine.name, block.name)
        for instr in block.instructions:
            _verify_instr(instr, labels, where, errors)
        if not _block_exits(block) \
                and index + 1 >= len(machine.blocks):
            errors.append(where + ": last block neither returns, "
                                  "jumps, nor falls through anywhere")
    if machine.frame_size % 8 != 0:
        # The lowering driver 16-aligns the alloca area and both
        # allocators append 8-byte spill slots, so 8 is the contract
        # (doubles and pointers stay naturally aligned off fp).
        errors.append("{0}: frame size {1} not 8-byte aligned"
                      .format(machine.name, machine.frame_size))
    if errors:
        raise MachineVerificationError(errors)


def _block_exits(block) -> bool:
    for instr in reversed(block.instructions):
        if instr.semantics == Semantics.NOP:
            continue  # delay slots
        return instr.semantics in _FLOW
    return False


def _verify_instr(instr: MachineInstr, labels: Set[str], where: str,
                  errors: List[str]) -> None:
    minimum = _MIN_OPERANDS.get(instr.semantics)
    if minimum is None:
        errors.append("{0}: unknown semantics {1!r} in {2!r}"
                      .format(where, instr.semantics, instr.mnemonic))
        return
    if len(instr.operands) < minimum:
        errors.append("{0}: {1} needs {2} operands, has {3}"
                      .format(where, instr.semantics, minimum,
                              len(instr.operands)))
        return
    for operand in instr.operands:
        if isinstance(operand, VirtualReg):
            errors.append(
                "{0}: unallocated virtual register {1!r} in {2!r}"
                .format(where, operand, instr))
        elif isinstance(operand, Mem):
            for reg in (operand.base, operand.index):
                if isinstance(reg, VirtualReg):
                    errors.append(
                        "{0}: unallocated virtual register in memory "
                        "operand of {1!r}".format(where, instr))
        elif isinstance(operand, LabelRef):
            if operand.name not in labels:
                errors.append("{0}: branch to unknown label {1}"
                              .format(where, operand.name))
    if instr.semantics == Semantics.JCC:
        target = instr.operands[1]
        if not isinstance(target, LabelRef):
            errors.append("{0}: jcc target must be a label".format(where))
    if instr.semantics in (Semantics.LOAD, Semantics.STORE):
        if not isinstance(instr.operands[1], Mem):
            errors.append("{0}: {1} needs a memory operand"
                          .format(where, instr.semantics))
        if instr.attrs.get("value_type") is None:
            errors.append("{0}: {1} missing value_type"
                          .format(where, instr.semantics))
    if instr.semantics in (Semantics.VLOAD, Semantics.VSTORE):
        if not isinstance(instr.operands[-1], Mem):
            errors.append("{0}: {1} needs a trailing memory operand"
                          .format(where, instr.semantics))
        if instr.attrs.get("value_type") is None:
            errors.append("{0}: {1} missing value_type"
                          .format(where, instr.semantics))
        if instr.attrs.get("lanes") != len(instr.operands) - 1:
            errors.append("{0}: {1} lane count {2!r} does not match "
                          "{3} lane operands".format(
                              where, instr.semantics,
                              instr.attrs.get("lanes"),
                              len(instr.operands) - 1))
    if instr.semantics == Semantics.CALL:
        callee = instr.operands[0]
        if not isinstance(callee, (SymRef, PhysReg)):
            errors.append("{0}: call target must be a symbol or "
                          "register".format(where))


def verify_native_module(native) -> None:
    """Verify every function of a native module."""
    errors: List[str] = []
    for machine in native.functions.values():
        try:
            verify_machine_function(machine)
        except MachineVerificationError as failure:
            errors.extend(failure.errors)
    if errors:
        raise MachineVerificationError(errors)


# ---------------------------------------------------------------------------
# Disassembly listing
# ---------------------------------------------------------------------------

def disassemble(machine: MachineFunction) -> str:
    """Render a function as an assembler-style listing."""
    lines = ["{0}:                        ; frame {1} bytes, {2} "
             "instructions, {3} bytes".format(
                 machine.name, machine.frame_size,
                 machine.num_instructions(), machine.code_size())]
    for block in machine.blocks:
        lines.append(".{0}:".format(block.name))
        for instr in block.instructions:
            operand_text = ", ".join(_operand(op)
                                     for op in instr.operands)
            text = "        {0:<8} {1}".format(instr.mnemonic,
                                               operand_text).rstrip()
            lines.append(text)
    return "\n".join(lines) + "\n"


def _operand(operand) -> str:
    if isinstance(operand, PhysReg):
        return "%" + operand.name
    if isinstance(operand, Imm):
        return "${0}".format(operand.value)
    if isinstance(operand, Mem):
        inner = []
        if operand.symbol:
            inner.append(operand.symbol)
        if operand.base is not None:
            inner.append("%" + operand.base.name)
        if operand.index is not None:
            inner.append("%{0}*{1}".format(operand.index.name,
                                           operand.scale))
        if operand.offset:
            inner.append("{0:+d}".format(operand.offset))
        return "[" + "".join(inner) + "]"
    if isinstance(operand, LabelRef):
        return "." + operand.name
    if isinstance(operand, SymRef):
        return "@" + operand.name
    return repr(operand)
