"""The machine-code layer shared by both I-ISA back ends.

A :class:`MachineInstr` pairs a *target-specific mnemonic* (what gets
counted, sized, and printed — e.g. x86's two-address ``addl`` vs SPARC's
three-address ``add``) with a *semantic micro-operation* from a small
common vocabulary (:class:`Semantics`) that the machine simulator
executes.  The two back ends therefore differ exactly where real ones
do — instruction selection patterns, register sets, calling conventions,
immediate ranges, and encoding sizes — while sharing one execution
substrate, which keeps the differential tests (interpreter vs x86 vs
SPARC) honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ir import types


class Semantics:
    """The micro-operation vocabulary executed by the simulator."""

    MOV = "mov"          # rd <- src
    ALU = "alu"          # rd <- ra OP rb     (op + result type attached)
    CMP = "cmp"          # rd <- ra REL rb    (bool result)
    LOAD = "load"        # rd <- mem[addr]    (value type attached)
    STORE = "store"      # mem[addr] <- rs
    LEA = "lea"          # rd <- base + index*scale + offset
    JMP = "jmp"          # goto label
    JCC = "jcc"          # if rcond goto label (else fall through)
    CALL = "call"        # call sym/reg
    RET = "ret"          # return (value already in the return register)
    PUSH = "push"        # sp -= size; mem[sp] <- rs
    POP = "pop"          # rd <- mem[sp]; sp += size
    CVT = "cvt"          # rd <- convert(rs)  (from/to types attached)
    ADJSP = "adjsp"      # sp += imm (stack adjustment)
    UNWIND = "unwind"    # pop frames to the nearest invoke
    NOP = "nop"
    ALLOCA = "alloca"    # rd <- push_frame(esize*count) (hosted tier-3
    #                      lowering only: keeps alloca addresses
    #                      identical to the interpreter's)
    # Vector-extension memory ops.  Lane operands come first, the
    # program address (a Mem) last; ``value_type``/``lanes``/``esize``
    # attrs carry the element type and geometry.  The op is *atomic
    # over lanes* so a masked fault matches the V-ISA contract exactly:
    # a faulting vload yields the all-zero vector (no partial lanes), a
    # faulting vstore stops at the faulting lane.  After register
    # allocation a lane operand may be either a physical register or a
    # frame-slot Mem — one vector op can name more lanes than either
    # back end has scratch registers, so the allocators bind spilled
    # lanes straight to their slots.
    VLOAD = "vload"      # lane0..laneN-1 <- mem[addr + i*esize]
    VSTORE = "vstore"    # mem[addr + i*esize] <- lane0..laneN-1


class VirtualReg:
    """A machine-level virtual register (pre-register-allocation)."""

    __slots__ = ("index", "type", "name")

    def __init__(self, index: int, type_: types.Type,
                 name: Optional[str] = None):
        self.index = index
        self.type = type_
        self.name = name

    def __repr__(self) -> str:
        return "v{0}".format(self.index)


class PhysReg:
    """A physical register of some target."""

    __slots__ = ("name", "is_float")

    def __init__(self, name: str, is_float: bool = False):
        self.name = name
        self.is_float = is_float

    def __repr__(self) -> str:
        return "%" + self.name


Reg = Union[VirtualReg, PhysReg]


@dataclass
class Imm:
    """An immediate operand."""

    value: object  # int or float

    def __repr__(self) -> str:
        return "${0}".format(self.value)


@dataclass
class Mem:
    """A memory operand: ``[base + index*scale + offset]``.

    ``base`` may be a register or the symbolic frame pointer/stack
    pointer; ``symbol`` addresses a global directly.
    """

    base: Optional[Reg] = None
    offset: int = 0
    index: Optional[Reg] = None
    scale: int = 1
    symbol: Optional[str] = None

    def __repr__(self) -> str:
        parts = []
        if self.symbol:
            parts.append(self.symbol)
        if self.base is not None:
            parts.append(repr(self.base))
        if self.index is not None:
            parts.append("{0!r}*{1}".format(self.index, self.scale))
        if self.offset:
            parts.append(str(self.offset))
        return "[" + "+".join(parts) + "]"


@dataclass
class LabelRef:
    """A branch target (machine basic block by name)."""

    name: str

    def __repr__(self) -> str:
        return "." + self.name


@dataclass
class SymRef:
    """A direct reference to a function or global symbol."""

    name: str

    def __repr__(self) -> str:
        return "@" + self.name


Operand = Union[VirtualReg, PhysReg, Imm, Mem, LabelRef, SymRef]


class MachineInstr:
    """One target instruction."""

    __slots__ = ("mnemonic", "semantics", "operands", "attrs", "cost")

    def __init__(self, mnemonic: str, semantics: str,
                 operands: Sequence[Operand] = (), **attrs):
        self.mnemonic = mnemonic
        self.semantics = semantics
        self.operands: List[Operand] = list(operands)
        #: Semantic attributes: op (alu kind), value_type, rel, signed,
        #: from_type/to_type (cvt), normal/unwind labels (call), ...
        self.attrs: Dict[str, object] = attrs
        #: Memoized deterministic cycle cost; filled lazily by
        #: ``machine_sim.instr_cost`` so neither the simulator loop nor
        #: tier-3 block totals re-dispatch on the opcode every cycle.
        #: Not serialized — recomputed after deserialization.
        self.cost: Optional[int] = None

    def registers(self):
        """Yield (operand index, register) for register operands,
        including those buried in memory operands."""
        for index, operand in enumerate(self.operands):
            if isinstance(operand, (VirtualReg, PhysReg)):
                yield index, operand
            elif isinstance(operand, Mem):
                if operand.base is not None:
                    yield index, operand.base
                if operand.index is not None:
                    yield index, operand.index

    def __repr__(self) -> str:
        return "{0} {1}".format(
            self.mnemonic, ", ".join(repr(op) for op in self.operands))


class MachineBasicBlock:
    """A straight-line run of machine instructions."""

    def __init__(self, name: str):
        self.name = name
        self.instructions: List[MachineInstr] = []

    def append(self, instr: MachineInstr) -> MachineInstr:
        self.instructions.append(instr)
        return instr

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class MachineFunction:
    """A translated function."""

    def __init__(self, name: str, target: "TargetInfo"):
        self.name = name
        self.target = target
        self.blocks: List[MachineBasicBlock] = []
        self._vreg_count = 0
        #: Bytes of frame reserved for static allocas + spills.
        self.frame_size = 0
        #: The LLVA SMC version this translation was made from.
        self.smc_version = 0

    def new_vreg(self, type_: types.Type,
                 name: Optional[str] = None) -> VirtualReg:
        reg = VirtualReg(self._vreg_count, type_, name)
        self._vreg_count += 1
        return reg

    def add_block(self, name: str) -> MachineBasicBlock:
        block = MachineBasicBlock(name)
        self.blocks.append(block)
        return block

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)

    def code_size(self) -> int:
        """Encoded size in bytes under the target's size model."""
        return sum(self.target.encoded_size(instr)
                   for instr in self.instructions())

    def __repr__(self) -> str:
        return "<MachineFunction {0} ({1}): {2} instrs>".format(
            self.name, self.target.name, self.num_instructions())


@dataclass
class TargetInfo:
    """Static description of one I-ISA."""

    name: str
    pointer_size: int
    endianness: str
    #: Allocatable integer registers (physical names).
    gpr_names: Tuple[str, ...] = ()
    #: Allocatable floating-point registers.
    fpr_names: Tuple[str, ...] = ()
    #: Scratch registers reserved for the spill-everything allocator.
    scratch_gprs: Tuple[str, ...] = ()
    scratch_fprs: Tuple[str, ...] = ()
    #: Registers that must be preserved across calls.
    callee_saved: Tuple[str, ...] = ()
    #: Register holding return values.
    return_reg: str = "r0"
    #: Registers carrying the first arguments (empty = all on stack).
    arg_regs: Tuple[str, ...] = ()
    #: Largest immediate representable in one ALU instruction.
    max_alu_immediate: int = 1 << 31
    #: Fixed instruction width (0 = variable-length CISC encoding).
    fixed_instr_width: int = 0

    def encoded_size(self, instr: MachineInstr) -> int:
        """Size model; overridden per target via size_fn."""
        if self.fixed_instr_width:
            return self.fixed_instr_width
        return variable_length_size(instr)

    @property
    def target_data(self) -> types.TargetData:
        return types.TargetData(self.pointer_size, self.endianness)


def variable_length_size(instr: MachineInstr) -> int:
    """An x86-flavoured variable-length encoding estimate:
    opcode byte(s) + modrm + sib/displacement + immediates."""
    size = 1  # opcode
    sem = instr.semantics
    if sem in (Semantics.RET, Semantics.NOP, Semantics.UNWIND):
        return 1
    if sem in (Semantics.PUSH, Semantics.POP):
        operand = instr.operands[0] if instr.operands else None
        return 2 if isinstance(operand, Mem) else 1
    size += 1  # modrm
    for operand in instr.operands:
        if isinstance(operand, Imm):
            value = operand.value
            if isinstance(value, float):
                size += 8
            elif -128 <= int(value) <= 127:
                size += 1
            else:
                size += 4
        elif isinstance(operand, Mem):
            size += 1  # sib
            if operand.offset or operand.symbol:
                size += 1 if -128 <= operand.offset <= 127 \
                    and not operand.symbol else 4
        elif isinstance(operand, (LabelRef, SymRef)):
            size += 4  # rel32
    return size


def spill_slot_type(type_: types.Type) -> types.Type:
    """The 8-byte-slot representation type for stack-passed and spilled
    values: integers widen (sign-preserving), floats become doubles,
    pointers and bools widen to ulong.  Both the code generators and the
    simulator use this one mapping, so pushes and reads always agree —
    including on the big-endian target, where a narrow read from a wide
    slot would otherwise see the wrong bytes."""
    if type_.is_floating_point:
        return types.DOUBLE
    if type_.is_pointer or type_.is_bool:
        return types.ULONG
    if type_.is_integer:
        return types.LONG if type_.is_signed else types.ULONG
    return types.ULONG


class MachineError(Exception):
    """Raised for malformed machine code or translation failures."""
