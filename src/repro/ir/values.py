"""Values, constants, and def-use chains for LLVA IR.

Everything an instruction can refer to is a :class:`Value`: constants,
function arguments, global symbols, basic blocks (as branch targets) and
other instructions (the register they define).  LLVA's "infinite, typed
register file in SSA form" (Section 3.1) falls out of this structure: each
instruction that produces a value *is* the unique definition of its virtual
register.

Values track their users eagerly (def-use chains), which is what makes the
sparse SSA optimizations of Section 5.1 — constant propagation, dead code
elimination, value numbering — efficient.  All operand mutation must go
through :meth:`User.set_operand` / :meth:`Value.replace_all_uses_with` so
the chains stay consistent; the verifier cross-checks them.
"""

from __future__ import annotations

import struct as _struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir import types
from repro.ir.types import Type


class Use:
    """One operand slot of one user: the edge of a def-use chain."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:
        return "<use #{0} of {1!r}>".format(self.index, self.user)


class Value:
    """Base class for everything that can appear as an operand."""

    __slots__ = ("type", "name", "uses", "__weakref__")

    def __init__(self, type_: Type, name: Optional[str] = None):
        self.type = type_
        self.name = name
        self.uses: List[Use] = []

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def users(self) -> Iterator["User"]:
        """Iterate the users of this value (a user with several operand
        slots referring to this value appears once per slot)."""
        for use in self.uses:
            yield use.user

    def has_uses(self) -> bool:
        return bool(self.uses)

    def replace_all_uses_with(self, replacement: "Value") -> int:
        """Rewrite every use of ``self`` to refer to *replacement*.

        Returns the number of operand slots rewritten.  This is the
        workhorse of SSA rewriting (constant propagation, GVN, mem2reg).
        """
        if replacement is self:
            raise ValueError("cannot replace a value with itself")
        count = 0
        # set_operand mutates self.uses; iterate over a snapshot.
        for use in list(self.uses):
            use.user.set_operand(use.index, replacement)
            count += 1
        return count

    def ref(self) -> str:
        """Short printable reference, e.g. ``%tmp.1`` or ``int 4``."""
        if self.name is not None:
            return "%{0}".format(self.name)
        return "%<unnamed>"

    def __repr__(self) -> str:
        return "<{0} {1}>".format(type(self).__name__, self.ref())


class User(Value):
    """A value that uses other values as operands."""

    __slots__ = ("_operands",)

    def __init__(self, type_: Type, operands: Sequence[Value],
                 name: Optional[str] = None):
        super().__init__(type_, name)
        self._operands: List[Value] = []
        for operand in operands:
            self._append_operand(operand)

    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def set_operand(self, index: int, value: Value) -> None:
        """Replace operand *index*, keeping use lists consistent."""
        old = self._operands[index]
        if old is value:
            return
        self._remove_use(old, index)
        self._operands[index] = value
        value.uses.append(Use(self, index))

    def _append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.uses.append(Use(self, index))

    def _pop_operands(self, start: int) -> None:
        """Drop operands from *start* to the end (phi edge removal)."""
        while len(self._operands) > start:
            index = len(self._operands) - 1
            self._remove_use(self._operands[index], index)
            self._operands.pop()

    def _remove_use(self, value: Value, index: int) -> None:
        for position, use in enumerate(value.uses):
            if use.user is self and use.index == index:
                del value.uses[position]
                return
        raise RuntimeError(
            "def-use chains corrupted: {0!r} not a use of {1!r}"
            .format(self, value))

    def drop_all_references(self) -> None:
        """Detach this user from all of its operands (before deletion)."""
        self._pop_operands(0)


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------

class Constant(Value):
    """Base class for compile-time constant values."""

    __slots__ = ()

    def ref(self) -> str:
        return "{0} {1}".format(self.type, self.literal())

    def literal(self) -> str:
        """The operand spelling without the leading type."""
        raise NotImplementedError


class ConstantInt(Constant):
    """An integer constant of a specific integer type."""

    __slots__ = ("value",)

    def __init__(self, type_: types.IntegerType, value: int):
        if not type_.is_integer:
            raise types.LlvaTypeError(
                "ConstantInt requires an integer type, got {0}".format(type_))
        if not (type_.min_value <= value <= type_.max_value):
            raise types.LlvaTypeError(
                "{0} does not fit in {1}".format(value, type_))
        super().__init__(type_)
        self.value = value

    def literal(self) -> str:
        return str(self.value)


class ConstantBool(Constant):
    """``bool true`` / ``bool false``."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        super().__init__(types.BOOL)
        self.value = bool(value)

    def literal(self) -> str:
        return "true" if self.value else "false"


class ConstantFP(Constant):
    """A floating-point constant (float or double)."""

    __slots__ = ("value",)

    def __init__(self, type_: types.FloatingPointType, value: float):
        if not type_.is_floating_point:
            raise types.LlvaTypeError(
                "ConstantFP requires float/double, got {0}".format(type_))
        super().__init__(type_)
        if type_ is types.FLOAT:
            # Round through single precision so folding matches execution.
            value = _struct.unpack("<f", _struct.pack("<f", value))[0]
        self.value = float(value)

    def literal(self) -> str:
        return repr(self.value)


class ConstantNull(Constant):
    """The null pointer of a given pointer type."""

    __slots__ = ()

    def __init__(self, type_: types.PointerType):
        if not type_.is_pointer:
            raise types.LlvaTypeError(
                "null requires a pointer type, got {0}".format(type_))
        super().__init__(type_)

    def literal(self) -> str:
        return "null"


class UndefValue(Constant):
    """An unspecified value of a first-class type.

    Produced by optimizations for provably-uninitialized reads; the
    interpreter materializes it as zero so differential tests stay
    deterministic.
    """

    __slots__ = ()

    def literal(self) -> str:
        return "undef"


class ConstantAggregate(Constant):
    """Base for constants of aggregate type (global initializers only —
    registers never hold aggregates)."""

    __slots__ = ("elements",)

    def __init__(self, type_: Type, elements: Tuple[Constant, ...]):
        super().__init__(type_)
        self.elements = elements


class ConstantArray(ConstantAggregate):
    __slots__ = ()

    def __init__(self, element_type: Type, elements: Sequence[Constant]):
        elements = tuple(elements)
        for element in elements:
            if element.type is not element_type:
                raise types.LlvaTypeError(
                    "array element {0} does not have type {1}"
                    .format(element.ref(), element_type))
        super().__init__(types.array_of(element_type, len(elements)),
                         elements)

    def literal(self) -> str:
        return "[ " + ", ".join(e.ref() for e in self.elements) + " ]"


class ConstantStruct(ConstantAggregate):
    __slots__ = ()

    def __init__(self, struct_type: types.StructType,
                 elements: Sequence[Constant]):
        elements = tuple(elements)
        if len(elements) != len(struct_type.fields):
            raise types.LlvaTypeError("struct initializer arity mismatch")
        for element, field in zip(elements, struct_type.fields):
            if element.type is not field:
                raise types.LlvaTypeError(
                    "struct field initializer {0} does not have type {1}"
                    .format(element.ref(), field))
        super().__init__(struct_type, elements)

    def literal(self) -> str:
        return "{ " + ", ".join(e.ref() for e in self.elements) + " }"


class ConstantZero(Constant):
    """``zeroinitializer`` for any sized type (globals and memory)."""

    __slots__ = ()

    def literal(self) -> str:
        return "zeroinitializer"


def make_byte_array(data: bytes) -> ConstantArray:
    """Build an ``[n x sbyte]`` constant from raw bytes (no implicit
    terminator)."""
    elements = [const_int(types.SBYTE, types.SBYTE.wrap(b)) for b in data]
    return ConstantArray(types.SBYTE, elements)


def make_string_constant(text: bytes) -> ConstantArray:
    """Build a NUL-terminated ``[n x sbyte]`` constant from *text*."""
    return make_byte_array(text + b"\x00")


# Interned simple constants -------------------------------------------------

TRUE = ConstantBool(True)
FALSE = ConstantBool(False)

_int_cache: Dict[Tuple[int, int], ConstantInt] = {}
_null_cache: Dict[int, ConstantNull] = {}
_undef_cache: Dict[int, UndefValue] = {}
_zero_cache: Dict[int, ConstantZero] = {}


def const_int(type_: types.IntegerType, value: int) -> ConstantInt:
    """Return the interned integer constant ``type value``."""
    key = (id(type_), value)
    cached = _int_cache.get(key)
    if cached is None:
        cached = _int_cache[key] = ConstantInt(type_, value)
    return cached


def const_bool(value: bool) -> ConstantBool:
    return TRUE if value else FALSE


def const_fp(type_: types.FloatingPointType, value: float) -> ConstantFP:
    # FP constants are not interned: NaN != NaN makes keys unreliable.
    return ConstantFP(type_, value)


def const_null(pointer_type: types.PointerType) -> ConstantNull:
    key = id(pointer_type)
    cached = _null_cache.get(key)
    if cached is None:
        cached = _null_cache[key] = ConstantNull(pointer_type)
    return cached


def const_undef(type_: Type) -> UndefValue:
    key = id(type_)
    cached = _undef_cache.get(key)
    if cached is None:
        cached = _undef_cache[key] = UndefValue(type_)
    return cached


def const_zero(type_: Type) -> Constant:
    """The zero constant of any first-class or aggregate type."""
    if type_.is_integer:
        return const_int(type_, 0)  # type: ignore[arg-type]
    if type_.is_bool:
        return FALSE
    if type_.is_floating_point:
        return const_fp(type_, 0.0)  # type: ignore[arg-type]
    if type_.is_pointer:
        return const_null(type_)  # type: ignore[arg-type]
    key = id(type_)
    cached = _zero_cache.get(key)
    if cached is None:
        cached = _zero_cache[key] = ConstantZero(type_)
    return cached


class Placeholder(Value):
    """A typed stand-in for a value not yet materialized.

    Used by the assembly parser and the bitcode reader for forward
    references; every placeholder must be resolved with
    :meth:`Value.replace_all_uses_with` before the IR is used.
    """

    __slots__ = ()


class Argument(Value):
    """A formal parameter of a :class:`repro.ir.module.Function`."""

    __slots__ = ("function", "index")

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.function = None  # set by Function.__init__
        self.index = index
