"""The LLVA virtual instruction set — the paper's core contribution.

Public surface:

* :mod:`repro.ir.types` — the type system and target layout rules.
* :mod:`repro.ir.values` — values, constants, def-use chains.
* :mod:`repro.ir.instructions` — the 28-instruction set of Table 1.
* :mod:`repro.ir.module` — modules, functions, basic blocks, globals.
* :mod:`repro.ir.builder` — :class:`IRBuilder` construction API.
* :mod:`repro.ir.cfg` — CFG orderings, dominators, frontiers.
* :mod:`repro.ir.verifier` — structural and SSA verification.
* :mod:`repro.ir.printer` — textual assembly output.
* :mod:`repro.ir.intrinsics` — the ``llva.*`` intrinsic registry.
"""

from repro.ir import types
from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.printer import print_function, print_module
from repro.ir.types import Endianness, LlvaTypeError, TargetData
from repro.ir.values import (
    const_bool,
    const_fp,
    const_int,
    const_null,
    const_undef,
    const_zero,
)
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "types",
    "IRBuilder",
    "BasicBlock",
    "Function",
    "GlobalVariable",
    "Module",
    "print_function",
    "print_module",
    "Endianness",
    "LlvaTypeError",
    "TargetData",
    "const_bool",
    "const_fp",
    "const_int",
    "const_null",
    "const_undef",
    "const_zero",
    "VerificationError",
    "verify_function",
    "verify_module",
]
