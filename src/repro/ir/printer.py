"""Textual LLVA assembly writer.

Produces the human-readable syntax of the paper's Figure 2::

    %struct.QuadTree = type { double, [4 x %QT*] }

    void %Sum3rdChildren(%QT* %T, double* %Result) {
    entry:
            %V = alloca double
            %tmp.0 = seteq %QT* %T, null
            br bool %tmp.0, label %endif, label %else
    ...

Round-trips with :mod:`repro.asm.parser`.  Every value gets a unique
function-local name; unnamed values are numbered.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir import instructions as insts
from repro.ir import types, values
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import Constant, Value

_INDENT = "        "


class _Namer:
    """Assigns unique printable names to function-local values."""

    def __init__(self):
        self._names: Dict[int, str] = {}
        self._taken: Dict[str, int] = {}

    def name_of(self, value: Value) -> str:
        cached = self._names.get(id(value))
        if cached is not None:
            return cached
        base = value.name if value.name else "v"
        candidate = base
        while candidate in self._taken:
            self._taken[base] += 1
            candidate = "{0}.{1}".format(base, self._taken[base])
        self._taken.setdefault(base, 0)
        self._taken[candidate] = 0
        self._names[id(value)] = candidate
        return candidate


def print_module(module: Module) -> str:
    """Render *module* as LLVA assembly text."""
    lines: List[str] = []
    lines.append("; module {0}".format(module.name))
    lines.append("target pointersize = {0}".format(module.pointer_size * 8))
    lines.append("target endian = {0}".format(module.endianness))
    lines.append("")
    for name, struct in module.named_types.items():
        lines.append("%{0} = type {1}".format(name, struct.body_str()))
    if module.named_types:
        lines.append("")
    for variable in module.globals.values():
        lines.append(_format_global(variable))
    if module.globals:
        lines.append("")
    for function in module.functions.values():
        if function.is_intrinsic and function.is_declaration:
            lines.append(_format_declaration(function))
    for function in module.functions.values():
        if function.is_intrinsic:
            continue
        if function.is_declaration:
            lines.append(_format_declaration(function))
        else:
            lines.extend(_format_function(function))
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def print_function(function: Function) -> str:
    """Render a single function as assembly text."""
    return "\n".join(_format_function(function)) + "\n"


def _format_global(variable: GlobalVariable) -> str:
    keyword = "constant" if variable.is_constant else "global"
    linkage = "internal " if variable.internal else ""
    if variable.initializer is None:
        return "%{0} = {1}external {2} {3}".format(
            variable.name, linkage, keyword, variable.value_type)
    return "%{0} = {1}{2} {3}".format(
        variable.name, linkage, keyword,
        _format_constant(variable.initializer))


def _format_declaration(function: Function) -> str:
    params = ", ".join(str(p) for p in function.function_type.params)
    if function.function_type.vararg:
        params = params + ", ..." if params else "..."
    return "declare {0} %{1}({2})".format(
        function.return_type, function.name, params)


def _format_function(function: Function) -> List[str]:
    namer = _Namer()
    # Reserve argument and block names first so they keep their spelling.
    for arg in function.args:
        namer.name_of(arg)
    for block in function.blocks:
        namer.name_of(block)
    linkage = "internal " if function.internal else ""
    args = ", ".join(
        "{0} %{1}".format(arg.type, namer.name_of(arg))
        for arg in function.args)
    if function.function_type.vararg:
        args = args + ", ..." if args else "..."
    lines = ["{0}{1} %{2}({3}) {{".format(
        linkage, function.return_type, function.name, args)]
    for block in function.blocks:
        lines.append("{0}:".format(namer.name_of(block)))
        for inst in block.instructions:
            lines.append(_INDENT + format_instruction(inst, namer))
    lines.append("}")
    return lines


def _format_constant(constant: Constant) -> str:
    return constant.ref()


def _operand(value: Value, namer: Optional[_Namer],
             with_type: bool = True) -> str:
    """Format one operand, ``<type> <ref>`` or bare ``<ref>``."""
    if isinstance(value, BasicBlock):
        name = namer.name_of(value) if namer else (value.name or "?")
        return "label %{0}".format(name) if with_type else "%" + name
    if isinstance(value, (Function, GlobalVariable)):
        text = "%{0}".format(value.name)
    elif isinstance(value, Constant):
        return value.ref() if with_type else value.literal()
    else:
        name = namer.name_of(value) if namer else (value.name or "?")
        text = "%{0}".format(name)
    if with_type:
        return "{0} {1}".format(value.type, text)
    return text


def format_instruction(inst: insts.Instruction,
                       namer: Optional[_Namer] = None) -> str:
    """Render one instruction (without indentation)."""
    if namer is None:
        namer = _Namer()
        function = inst.function
        if function is not None:
            for arg in function.args:
                namer.name_of(arg)
            for block in function.blocks:
                namer.name_of(block)
    text = _instruction_body(inst, namer)
    if inst.exceptions_enabled != (
            inst.opcode in insts.DEFAULT_EXCEPTIONS_ENABLED):
        flag = "true" if inst.exceptions_enabled else "false"
        text += " !ee({0})".format(flag)
    if inst.produces_value:
        return "%{0} = {1}".format(namer.name_of(inst), text)
    return text


def _instruction_body(inst: insts.Instruction, namer: _Namer) -> str:
    opcode = inst.opcode

    if isinstance(inst, insts.CompareInst) or isinstance(
            inst, insts.BinaryInst):
        lhs, rhs = inst.operand(0), inst.operand(1)
        return "{0} {1} {2}, {3}".format(
            opcode, lhs.type, _operand(lhs, namer, with_type=False),
            _operand(rhs, namer, with_type=False)
            if rhs.type is lhs.type
            else _operand(rhs, namer))

    if isinstance(inst, insts.RetInst):
        if inst.return_value is None:
            return "ret void"
        return "ret {0}".format(_operand(inst.return_value, namer))

    if isinstance(inst, insts.BranchInst):
        if inst.is_conditional:
            return "br {0}, {1}, {2}".format(
                _operand(inst.operand(0), namer),
                _operand(inst.operand(1), namer),
                _operand(inst.operand(2), namer))
        return "br {0}".format(_operand(inst.operand(0), namer))

    if isinstance(inst, insts.MultiwayBranchInst):
        parts = ["mbr {0}, {1}".format(
            _operand(inst.selector, namer), _operand(inst.default, namer))]
        for case_value, case_label in inst.cases():
            parts.append("[ {0}, {1} ]".format(
                _operand(case_value, namer), _operand(case_label, namer)))
        return ", ".join(parts)

    if isinstance(inst, insts.InvokeInst):
        args = ", ".join(_operand(a, namer) for a in inst.args)
        return "invoke {0} {1}({2}) to {3} unwind {4}".format(
            inst.signature.return_type,
            _operand(inst.callee, namer, with_type=False), args,
            _operand(inst.normal_dest, namer),
            _operand(inst.unwind_dest, namer))

    if isinstance(inst, insts.UnwindInst):
        return "unwind"

    if isinstance(inst, insts.CallInst):
        args = ", ".join(_operand(a, namer) for a in inst.args)
        return "call {0} {1}({2})".format(
            inst.signature.return_type,
            _operand(inst.callee, namer, with_type=False), args)

    if isinstance(inst, insts.LoadInst):
        return "load {0}".format(_operand(inst.pointer, namer))

    if isinstance(inst, insts.StoreInst):
        return "store {0}, {1}".format(
            _operand(inst.value, namer), _operand(inst.pointer, namer))

    if isinstance(inst, insts.GetElementPtrInst):
        parts = ["getelementptr {0}".format(_operand(inst.pointer, namer))]
        parts.extend(_operand(index, namer) for index in inst.indices)
        return ", ".join(parts)

    if isinstance(inst, insts.AllocaInst):
        if inst.count is not None:
            return "alloca {0}, {1}".format(
                inst.allocated_type, _operand(inst.count, namer))
        return "alloca {0}".format(inst.allocated_type)

    if isinstance(inst, insts.CastInst):
        return "cast {0} to {1}".format(
            _operand(inst.value, namer), inst.type)

    if isinstance(inst, insts.PhiInst):
        pairs = ", ".join(
            "[ {0}, {1} ]".format(
                _operand(value, namer, with_type=False),
                _operand(block, namer, with_type=False))
            for value, block in inst.incoming())
        return "phi {0} {1}".format(inst.type, pairs)

    if isinstance(inst, insts.VSplatInst):
        return "vsplat {0} {1}".format(
            inst.type, _operand(inst.scalar, namer, with_type=False))

    if isinstance(inst, insts.VReduceInst):
        return "{0} {1}, {2}".format(
            opcode, _operand(inst.init, namer),
            _operand(inst.vector, namer))

    if isinstance(inst, insts.VLoadInst):
        return "vload {0}, {1}".format(
            inst.type, _operand(inst.pointer, namer))

    if isinstance(inst, insts.VStoreInst):
        return "vstore {0}, {1}".format(
            _operand(inst.value, namer), _operand(inst.pointer, namer))

    raise NotImplementedError("cannot print {0!r}".format(inst))
