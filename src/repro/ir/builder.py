"""A convenience API for constructing LLVA IR.

The builder holds an insertion point (a basic block) and appends typed,
verified instructions.  It is the programmatic equivalent of writing the
assembly of Figure 2 and is used by the MiniC front-end, the tests, and
the examples.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.ir import instructions as insts
from repro.ir import types, values
from repro.ir.module import BasicBlock, Function
from repro.ir.types import Type
from repro.ir.values import ConstantInt, Value


class IRBuilder:
    """Appends instructions at the end of a current basic block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self._name_counter = 0

    # -- positioning ---------------------------------------------------------

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder has no insertion point")
        return self.block.parent

    def _insert(self, inst: insts.Instruction) -> insts.Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion point")
        if inst.produces_value and inst.name is None:
            inst.name = self.fresh_name()
        return self.block.append(inst)

    def fresh_name(self, stem: str = "tmp") -> str:
        name = "{0}.{1}".format(stem, self._name_counter)
        self._name_counter += 1
        return name

    # -- arithmetic / bitwise ------------------------------------------------

    def add(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.AddInst(lhs, rhs, name))

    def sub(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.SubInst(lhs, rhs, name))

    def mul(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.MulInst(lhs, rhs, name))

    def div(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.DivInst(lhs, rhs, name))

    def rem(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.RemInst(lhs, rhs, name))

    def and_(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.AndInst(lhs, rhs, name))

    def or_(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.OrInst(lhs, rhs, name))

    def xor(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.XorInst(lhs, rhs, name))

    def shl(self, lhs: Value, amount: Value, name: Optional[str] = None):
        return self._insert(insts.ShlInst(lhs, amount, name))

    def shr(self, lhs: Value, amount: Value, name: Optional[str] = None):
        return self._insert(insts.ShrInst(lhs, amount, name))

    def binary(self, opcode: str, lhs: Value, rhs: Value,
               name: Optional[str] = None):
        """Build any arithmetic/bitwise instruction by opcode name."""
        return self._insert(insts.BINARY_CLASSES[opcode](lhs, rhs, name))

    # -- comparisons -----------------------------------------------------------

    def seteq(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.SetEqInst(lhs, rhs, name))

    def setne(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.SetNeInst(lhs, rhs, name))

    def setlt(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.SetLtInst(lhs, rhs, name))

    def setgt(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.SetGtInst(lhs, rhs, name))

    def setle(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.SetLeInst(lhs, rhs, name))

    def setge(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        return self._insert(insts.SetGeInst(lhs, rhs, name))

    def compare(self, relation: str, lhs: Value, rhs: Value,
                name: Optional[str] = None):
        """Build a set* instruction from a relation (``eq``/``lt``/...)."""
        return self._insert(insts.COMPARE_CLASSES[relation](lhs, rhs, name))

    # -- control flow -----------------------------------------------------------

    def ret(self, value: Optional[Value] = None):
        return self._insert(insts.RetInst(value))

    def br(self, target: BasicBlock):
        return self._insert(insts.BranchInst(target=target))

    def cond_br(self, condition: Value, if_true: BasicBlock,
                if_false: BasicBlock):
        return self._insert(insts.BranchInst(
            condition=condition, if_true=if_true, if_false=if_false))

    def mbr(self, value: Value, default: BasicBlock,
            cases: Sequence[Tuple[ConstantInt, BasicBlock]] = ()):
        return self._insert(insts.MultiwayBranchInst(value, default, cases))

    def call(self, callee: Value, args: Sequence[Value] = (),
             name: Optional[str] = None):
        return self._insert(insts.CallInst(callee, args, name))

    def invoke(self, callee: Value, args: Sequence[Value],
               normal: BasicBlock, unwind: BasicBlock,
               name: Optional[str] = None):
        return self._insert(insts.InvokeInst(
            callee, args, normal, unwind, name))

    def unwind(self):
        return self._insert(insts.UnwindInst())

    # -- memory -----------------------------------------------------------------

    def load(self, pointer: Value, name: Optional[str] = None):
        return self._insert(insts.LoadInst(pointer, name))

    def store(self, value: Value, pointer: Value):
        return self._insert(insts.StoreInst(value, pointer))

    def gep(self, pointer: Value, indices: Sequence[Value],
            name: Optional[str] = None):
        return self._insert(insts.GetElementPtrInst(pointer, indices, name))

    def gep_const(self, pointer: Value, *raw_indices: int,
                  name: Optional[str] = None):
        """``gep`` with a literal index chain.

        Indices are converted to the canonical types: ``long`` for
        array/pointer steps and constant ``ubyte`` for struct fields,
        chosen by walking the pointee type — the same convention as the
        paper's ``long 0, ubyte 1, long 3`` example.
        """
        pointee = pointer.type.pointee
        indices: list = []
        current = pointee
        for position, raw in enumerate(raw_indices):
            if position == 0:
                indices.append(values.const_int(types.LONG, raw))
                continue
            if current.is_struct:
                indices.append(values.const_int(types.UBYTE, raw))
                current = current.fields[raw]
            else:
                indices.append(values.const_int(types.LONG, raw))
                current = current.element
        return self.gep(pointer, indices, name)

    def alloca(self, allocated_type: Type, count: Optional[Value] = None,
               name: Optional[str] = None):
        return self._insert(insts.AllocaInst(allocated_type, count, name))

    # -- other --------------------------------------------------------------------

    def cast(self, value: Value, target_type: Type,
             name: Optional[str] = None):
        if value.type is target_type:
            return value
        return self._insert(insts.CastInst(value, target_type, name))

    def phi(self, type_: Type,
            incoming: Sequence[Tuple[Value, BasicBlock]] = (),
            name: Optional[str] = None):
        inst = insts.PhiInst(type_, incoming, name)
        if inst.name is None:
            inst.name = self.fresh_name()
        # Phis must precede all non-phi instructions in the block.
        if self.block is None:
            raise ValueError("builder has no insertion point")
        index = self.block.first_non_phi_index()
        self.block.instructions.insert(index, inst)
        inst.parent = self.block
        return inst
