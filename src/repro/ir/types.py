"""The LLVA type system (paper Section 3.1, "LLVA Type System").

LLVA is fully typed with a low-level, source-language-independent type
system: a small set of primitive types with predefined sizes (``bool``,
``ubyte``, ``sbyte``, ``ushort``, ``short``, ``uint``, ``int``, ``ulong``,
``long``, ``float``, ``double``) and exactly four derived types (pointer,
array, structure, and function).

Types are *interned*: constructing the same type twice yields the same
object, so identity comparison (``is``) is type equality.  This mirrors the
uniquing of types in the paper's compiler implementation and makes strict
type rules ("no mixed-type operations") cheap to enforce.

Layout questions (sizeof, alignment, struct field offsets) are never
answered by a type alone: they require a :class:`TargetData`, which carries
the two implementation properties the V-ISA deliberately abstracts but must
expose through V-ABI flags — pointer size and endianness (Section 3.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Type:
    """Base class for every LLVA type.

    Instances are immutable and interned; use the module-level factory
    helpers (:func:`pointer_to`, :func:`array_of`, :func:`struct_of`,
    :func:`function_of`) or the primitive singletons (:data:`INT`,
    :data:`DOUBLE`, ...) rather than constructing subclasses directly.
    """

    __slots__ = ()

    @property
    def is_primitive(self) -> bool:
        return isinstance(self, PrimitiveType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntegerType)

    @property
    def is_signed(self) -> bool:
        return isinstance(self, IntegerType) and self.signed

    @property
    def is_unsigned(self) -> bool:
        return isinstance(self, IntegerType) and not self.signed

    @property
    def is_floating_point(self) -> bool:
        return isinstance(self, FloatingPointType)

    @property
    def is_bool(self) -> bool:
        return self is BOOL

    @property
    def is_void(self) -> bool:
        return self is VOID

    @property
    def is_label(self) -> bool:
        return self is LABEL

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_arithmetic(self) -> bool:
        """True for types valid as ``add``/``sub``/... operands."""
        return self.is_integer or self.is_floating_point

    @property
    def is_scalar(self) -> bool:
        """True for types a virtual register may hold (Section 3.1).

        Registers can only hold scalar values: boolean, integer, floating
        point, and pointer.
        """
        return (
            self.is_bool
            or self.is_integer
            or self.is_floating_point
            or self.is_pointer
        )

    @property
    def is_first_class(self) -> bool:
        """Types that may be produced by an instruction.

        Scalars (the register types of Section 3.1) plus the short vector
        types of the vector extension.  Vectors are deliberately *not*
        scalar: they cannot flow through phi nodes, calls, returns, loads,
        casts, or comparisons — only the dedicated ``v*`` instructions
        produce and consume them, which keeps vector values block-local.
        """
        return self.is_scalar or self.is_vector

    def __repr__(self) -> str:
        return "<llva type {0}>".format(self)


class PrimitiveType(Type):
    """A primitive type with a fixed name and size."""

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size  # size in bytes; 0 for void/label

    def __str__(self) -> str:
        return self.name


class VoidType(PrimitiveType):
    __slots__ = ()

    def __init__(self):
        super().__init__("void", 0)


class LabelType(PrimitiveType):
    """The type of basic-block labels (branch targets)."""

    __slots__ = ()

    def __init__(self):
        super().__init__("label", 0)


class BoolType(PrimitiveType):
    __slots__ = ()

    def __init__(self):
        super().__init__("bool", 1)


class IntegerType(PrimitiveType):
    """A fixed-width signed or unsigned integer type."""

    __slots__ = ("signed",)

    def __init__(self, name: str, size: int, signed: bool):
        super().__init__(name, size)
        self.signed = signed

    @property
    def bits(self) -> int:
        return self.size * 8

    @property
    def min_value(self) -> int:
        if self.signed:
            return -(1 << (self.bits - 1))
        return 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary Python int into this type's value range.

        Models the two's-complement wraparound of fixed-width hardware
        arithmetic, which the interpreter and constant folder must agree on.
        """
        value &= (1 << self.bits) - 1
        if self.signed and value > self.max_value:
            value -= 1 << self.bits
        return value


class FloatingPointType(PrimitiveType):
    __slots__ = ()


# Primitive singletons.  The paper's set: bool, ubyte/sbyte, ushort/short,
# uint/int, ulong/long, float, double (plus void and label).
VOID = VoidType()
LABEL = LabelType()
BOOL = BoolType()
UBYTE = IntegerType("ubyte", 1, signed=False)
SBYTE = IntegerType("sbyte", 1, signed=True)
USHORT = IntegerType("ushort", 2, signed=False)
SHORT = IntegerType("short", 2, signed=True)
UINT = IntegerType("uint", 4, signed=False)
INT = IntegerType("int", 4, signed=True)
ULONG = IntegerType("ulong", 8, signed=False)
LONG = IntegerType("long", 8, signed=True)
FLOAT = FloatingPointType("float", 4)
DOUBLE = FloatingPointType("double", 8)

#: All primitive types, keyed by their assembly spelling.
PRIMITIVES: Dict[str, PrimitiveType] = {
    t.name: t
    for t in (
        VOID, LABEL, BOOL, UBYTE, SBYTE, USHORT, SHORT,
        UINT, INT, ULONG, LONG, FLOAT, DOUBLE,
    )
}

#: Integer types ordered small-to-large, used by the bitcode writer.
INTEGER_TYPES: Tuple[IntegerType, ...] = (
    UBYTE, SBYTE, USHORT, SHORT, UINT, INT, ULONG, LONG,
)


class PointerType(Type):
    """A typed pointer.  ``%QT*`` in assembly syntax."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def __str__(self) -> str:
        return "{0}*".format(self.pointee)


class ArrayType(Type):
    """A fixed-length homogeneous array: ``[4 x %QT*]``."""

    __slots__ = ("element", "length")

    def __init__(self, element: Type, length: int):
        self.element = element
        self.length = length

    def __str__(self) -> str:
        return "[{0} x {1}]".format(self.length, self.element)


#: Lane-count ceiling for vector types.  Keeps the extension "short
#: vector" shaped (SSE/AltiVec-era widths) and bounds the per-value cost
#: of the scalarizing target lowerings.
MAX_VECTOR_LANES = 16


class VectorType(Type):
    """A short vector of arithmetic lanes: ``<4 x double>``.

    The lane count is part of the type (and thus of the instruction
    encoding), mirroring how subword-SIMD ISAs encode element width in the
    opcode.  Elements are restricted to the arithmetic primitives — no
    vectors of pointers, bools, or aggregates — so every lane is a value
    the scalar tiers already know how to compute.
    """

    __slots__ = ("element", "lanes")

    def __init__(self, element: Type, lanes: int):
        self.element = element
        self.lanes = lanes

    def __str__(self) -> str:
        return "<{0} x {1}>".format(self.lanes, self.element)


class StructType(Type):
    """A structure: an ordered tuple of member types.

    Two flavours exist:

    * *anonymous* structs are interned structurally — two anonymous
      structs with identical bodies are the same type;
    * *named* structs (the ``%struct.QuadTree = type {...}`` form of
      Figure 2) are nominal and may be created with an unset (opaque)
      body that is filled in later, which is what makes recursive types
      like the paper's QuadTree expressible.
    """

    __slots__ = ("_fields", "name")

    def __init__(self, fields: Optional[Tuple[Type, ...]],
                 name: Optional[str] = None):
        self._fields = fields
        self.name = name

    @property
    def fields(self) -> Tuple[Type, ...]:
        if self._fields is None:
            raise LlvaTypeError(
                "opaque struct %{0} has no body yet".format(self.name))
        return self._fields

    @property
    def is_opaque(self) -> bool:
        return self._fields is None

    def set_body(self, fields: Iterable[Type]) -> None:
        """Fill in the body of a named (possibly opaque) struct."""
        if self.name is None:
            raise LlvaTypeError("cannot mutate an anonymous struct type")
        field_tuple = tuple(fields)
        _check_struct_fields(field_tuple)
        if self._fields is not None and self._fields != field_tuple:
            raise LlvaTypeError(
                "struct %{0} body already set".format(self.name))
        self._fields = field_tuple

    def __str__(self) -> str:
        if self.name is not None:
            return "%{0}".format(self.name)
        return self.body_str()

    def body_str(self) -> str:
        if self._fields is None:
            return "opaque"
        return "{ " + ", ".join(str(f) for f in self._fields) + " }"


class FunctionType(Type):
    """A function signature: return type plus parameter types."""

    __slots__ = ("return_type", "params", "vararg")

    def __init__(self, return_type: Type, params: Tuple[Type, ...],
                 vararg: bool = False):
        self.return_type = return_type
        self.params = params
        self.vararg = vararg

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return "{0} ({1})".format(self.return_type, ", ".join(parts))


class TypeError_(Exception):
    """Raised when an LLVA type rule is violated.

    Named with a trailing underscore to avoid shadowing the builtin; the
    public alias is :data:`repro.ir.TypeError_` re-exported as
    ``LlvaTypeError``.
    """


LlvaTypeError = TypeError_


# ---------------------------------------------------------------------------
# Interning
# ---------------------------------------------------------------------------

_pointer_cache: Dict[int, PointerType] = {}
_vector_cache: Dict[Tuple[int, int], VectorType] = {}
_array_cache: Dict[Tuple[int, int], ArrayType] = {}
_struct_cache: Dict[Tuple[int, ...], StructType] = {}
_function_cache: Dict[Tuple[int, Tuple[int, ...], bool], FunctionType] = {}


def pointer_to(pointee: Type) -> PointerType:
    """Return the interned pointer type to *pointee*."""
    if pointee.is_void or pointee.is_label:
        # "void*" is spelled as sbyte* at the V-ISA level; the minic
        # front-end performs that lowering.  Disallow it here to keep the
        # type system closed.
        raise LlvaTypeError("cannot form pointer to {0}".format(pointee))
    if pointee.is_vector:
        # Vectors are register-only values; vload/vstore address memory
        # through element pointers, so a pointer-to-vector type never
        # needs to exist.
        raise LlvaTypeError("cannot form pointer to {0}".format(pointee))
    key = id(pointee)
    cached = _pointer_cache.get(key)
    if cached is None:
        cached = _pointer_cache[key] = PointerType(pointee)
    return cached


def array_of(element: Type, length: int) -> ArrayType:
    """Return the interned array type ``[length x element]``."""
    if length < 0:
        raise LlvaTypeError("array length must be non-negative")
    if not (element.is_scalar or element.is_array or element.is_struct):
        raise LlvaTypeError(
            "invalid array element type {0}".format(element))
    key = (id(element), length)
    cached = _array_cache.get(key)
    if cached is None:
        cached = _array_cache[key] = ArrayType(element, length)
    return cached


def vector_of(element: Type, lanes: int) -> VectorType:
    """Return the interned vector type ``<lanes x element>``.

    *element* must be an integer or floating-point primitive and *lanes*
    must be in ``[2, MAX_VECTOR_LANES]``; a 1-lane vector is just a scalar
    and is rejected to keep the canonical form unique.
    """
    if not element.is_arithmetic:
        raise LlvaTypeError(
            "invalid vector element type {0}".format(element))
    if not isinstance(lanes, int) or lanes < 2 or lanes > MAX_VECTOR_LANES:
        raise LlvaTypeError(
            "vector lane count must be an integer in [2, {0}], got {1!r}"
            .format(MAX_VECTOR_LANES, lanes))
    key = (id(element), lanes)
    cached = _vector_cache.get(key)
    if cached is None:
        cached = _vector_cache[key] = VectorType(element, lanes)
    return cached


def _check_struct_fields(fields: Tuple[Type, ...]) -> None:
    for f in fields:
        if not (f.is_scalar or f.is_array or f.is_struct):
            raise LlvaTypeError("invalid struct field type {0}".format(f))


def struct_of(fields: Iterable[Type]) -> StructType:
    """Return the interned *anonymous* struct type with these members."""
    field_tuple = tuple(fields)
    _check_struct_fields(field_tuple)
    key = tuple(id(f) for f in field_tuple)
    cached = _struct_cache.get(key)
    if cached is None:
        cached = _struct_cache[key] = StructType(field_tuple)
    return cached


def named_struct(name: str,
                 fields: Optional[Iterable[Type]] = None) -> StructType:
    """Create a fresh *named* (nominal) struct type.

    With ``fields=None`` the struct starts opaque; fill it in with
    :meth:`StructType.set_body`, which permits recursive types such as the
    paper's ``%struct.QuadTree = type { double, [4 x %QT*] }``.
    """
    struct = StructType(None, name)
    if fields is not None:
        struct.set_body(fields)
    return struct


def function_of(return_type: Type, params: Iterable[Type],
                vararg: bool = False) -> FunctionType:
    """Return the interned function type."""
    param_tuple = tuple(params)
    if not (return_type.is_void or return_type.is_scalar):
        raise LlvaTypeError(
            "invalid function return type {0}".format(return_type))
    for p in param_tuple:
        if not p.is_scalar:
            raise LlvaTypeError("invalid parameter type {0}".format(p))
    key = (id(return_type), tuple(id(p) for p in param_tuple), vararg)
    cached = _function_cache.get(key)
    if cached is None:
        cached = _function_cache[key] = FunctionType(
            return_type, param_tuple, vararg)
    return cached


# ---------------------------------------------------------------------------
# Target layout
# ---------------------------------------------------------------------------

class Endianness:
    """Byte-order constants for V-ABI flags."""

    LITTLE = "little"
    BIG = "big"


class TargetData:
    """Layout rules for one hardware configuration (Section 3.2).

    The V-ISA abstracts pointer size and endianness, but the translator must
    know both: ``getelementptr`` offsets and struct layouts differ between
    32-bit and 64-bit targets (the paper's example: ``&T[0].Children[3]`` is
    at offset 20 with 32-bit pointers and 32 with 64-bit pointers).
    """

    def __init__(self, pointer_size: int = 8,
                 endianness: str = Endianness.LITTLE):
        if pointer_size not in (4, 8):
            raise ValueError("pointer size must be 4 or 8 bytes")
        if endianness not in (Endianness.LITTLE, Endianness.BIG):
            raise ValueError("bad endianness {0!r}".format(endianness))
        self.pointer_size = pointer_size
        self.endianness = endianness

    @property
    def pointer_int_type(self) -> IntegerType:
        """The unsigned integer type with the width of a pointer."""
        return ULONG if self.pointer_size == 8 else UINT

    def size_of(self, type_: Type) -> int:
        """Return sizeof(*type_*) in bytes, including struct padding."""
        if type_.is_pointer:
            return self.pointer_size
        if isinstance(type_, PrimitiveType):
            if type_.size == 0:
                raise LlvaTypeError("{0} has no size".format(type_))
            return type_.size
        if isinstance(type_, ArrayType):
            return type_.length * self.size_of(type_.element)
        if isinstance(type_, VectorType):
            return type_.lanes * self.size_of(type_.element)
        if isinstance(type_, StructType):
            size, _offsets = self._struct_layout(type_)
            return size
        raise LlvaTypeError("{0} has no size".format(type_))

    def align_of(self, type_: Type) -> int:
        """Return the natural alignment of *type_* in bytes."""
        if type_.is_pointer:
            return self.pointer_size
        if isinstance(type_, PrimitiveType):
            if type_.size == 0:
                raise LlvaTypeError("{0} has no alignment".format(type_))
            return type_.size
        if isinstance(type_, ArrayType):
            return self.align_of(type_.element)
        if isinstance(type_, VectorType):
            # Lane-aligned, not vector-aligned: vload/vstore are defined
            # over any element-aligned address so the autovectorizer never
            # needs alignment peeling.
            return self.align_of(type_.element)
        if isinstance(type_, StructType):
            if not type_.fields:
                return 1
            return max(self.align_of(f) for f in type_.fields)
        raise LlvaTypeError("{0} has no alignment".format(type_))

    def struct_offsets(self, struct: StructType) -> List[int]:
        """Return the byte offset of each field of *struct*."""
        _size, offsets = self._struct_layout(struct)
        return offsets

    def _struct_layout(self, struct: StructType) -> Tuple[int, List[int]]:
        offset = 0
        offsets: List[int] = []
        for field in struct.fields:
            align = self.align_of(field)
            offset = _round_up(offset, align)
            offsets.append(offset)
            offset += self.size_of(field)
        total_align = self.align_of(struct)
        return _round_up(offset, total_align) or 0, offsets

    def gep_offset(self, pointee: Type, indices: Sequence[object]) -> int:
        """Compute the byte offset of a ``getelementptr`` index chain.

        *indices* alternates array indices (ints, scaled by element size)
        and struct field numbers, exactly as in the instruction; the first
        index always scales by ``sizeof(pointee)``.  Symbolic (non-constant)
        indices cannot be folded here and raise ``ValueError``.
        """
        offset = 0
        current: Type = pointee
        for position, index in enumerate(indices):
            if not isinstance(index, int):
                raise ValueError("symbolic gep index at position {0}"
                                 .format(position))
            if position == 0:
                offset += index * self.size_of(current)
            elif isinstance(current, StructType):
                offset += self.struct_offsets(current)[index]
                current = current.fields[index]
                continue
            elif isinstance(current, ArrayType):
                offset += index * self.size_of(current.element)
                current = current.element
                continue
            else:
                raise LlvaTypeError(
                    "cannot index into {0}".format(current))
        return offset


def _round_up(value: int, align: int) -> int:
    if align <= 1:
        return value
    return (value + align - 1) // align * align


#: Default layouts used throughout the test suite and benchmarks.
TARGET_64_LE = TargetData(pointer_size=8, endianness=Endianness.LITTLE)
TARGET_32_LE = TargetData(pointer_size=4, endianness=Endianness.LITTLE)
TARGET_64_BE = TargetData(pointer_size=8, endianness=Endianness.BIG)
TARGET_32_BE = TargetData(pointer_size=4, endianness=Endianness.BIG)
