"""Modules, functions, basic blocks, and globals.

A :class:`Module` is one unit of virtual object code: global variables,
functions, named types, and the V-ABI configuration flags (pointer size and
endianness) that Section 3.2 requires to be "encoded in the object file".

Each :class:`Function` is a list of :class:`BasicBlock`\\ s; each basic
block is a list of instructions ending in exactly one control-flow
instruction that explicitly names its successors — the explicit CFG the
paper calls "another crucial feature of LLVA" (Section 3.1).  Basic blocks
are themselves values of type ``label`` so that branch targets participate
in ordinary def-use chains, which makes predecessor queries and CFG
rewrites uniform with the rest of SSA.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir import types
from repro.ir.instructions import Instruction, PhiInst
from repro.ir.types import Endianness, TargetData, Type
from repro.ir.values import Argument, Constant, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions with one terminator."""

    __slots__ = ("instructions", "parent")

    def __init__(self, name: str):
        super().__init__(types.LABEL, name)
        self.instructions: List[Instruction] = []
        self.parent: Optional["Function"] = None

    # -- structure ---------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        """Append *inst*; a terminator must come last and be unique."""
        if self.has_terminator():
            raise ValueError(
                "block {0} already has a terminator".format(self.ref()))
        self.instructions.append(inst)
        inst.parent = self
        return inst

    def insert_before(self, position: Instruction,
                      inst: Instruction) -> Instruction:
        index = self.instructions.index(position)
        self.instructions.insert(index, inst)
        inst.parent = self
        return inst

    def insert_front(self, inst: Instruction) -> Instruction:
        self.instructions.insert(0, inst)
        inst.parent = self
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    def has_terminator(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator

    @property
    def terminator(self) -> Instruction:
        if not self.has_terminator():
            raise ValueError(
                "block {0} has no terminator".format(self.ref()))
        return self.instructions[-1]

    # -- CFG ---------------------------------------------------------------

    def successors(self) -> Tuple["BasicBlock", ...]:
        if not self.has_terminator():
            return ()
        return self.terminator.successors()  # type: ignore[return-value]

    def predecessors(self) -> List["BasicBlock"]:
        """Blocks whose terminator targets this block.

        Derived from the use list: every use of a block by a terminator is
        a CFG edge (phi uses are skipped).  A predecessor with multiple
        edges to this block (e.g. both arms of a conditional branch)
        appears once.
        """
        preds: List[BasicBlock] = []
        seen = set()
        for use in self.uses:
            user = use.user
            if (isinstance(user, Instruction) and user.is_terminator
                    and user.parent is not None):
                block = user.parent
                if id(block) not in seen:
                    seen.add(id(block))
                    preds.append(block)
        return preds

    def phis(self) -> List[PhiInst]:
        out: List[PhiInst] = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                out.append(inst)
            else:
                break
        return out

    def first_non_phi_index(self) -> int:
        return len(self.phis())

    # -- misc ----------------------------------------------------------------

    def erase_from_parent(self) -> None:
        """Remove this block from its function, detaching instructions."""
        for inst in list(self.instructions):
            inst.erase()
        if self.parent is not None:
            self.parent.blocks.remove(self)
            self.parent = None

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class GlobalValue(Constant):
    """Base for module-level symbols: functions and global variables.

    Global symbols are values of pointer type — taking the "value" of a
    function or global in an operand position means taking its address,
    which is a link-time constant (so globals may appear inside constant
    initializers, e.g. function-pointer tables).
    """

    __slots__ = ("parent", "internal")

    def __init__(self, type_: Type, name: str, internal: bool = False):
        super().__init__(type_, name)
        self.parent: Optional["Module"] = None
        #: "internal" linkage: not visible outside the module, eligible
        #: for dead-global elimination after linking.
        self.internal = internal

    def literal(self) -> str:
        return "%{0}".format(self.name)

    def ref(self) -> str:
        return "{0} %{1}".format(self.type, self.name)


class GlobalVariable(GlobalValue):
    """A global data object.  Its value is the *address* of the data."""

    __slots__ = ("value_type", "initializer", "is_constant")

    def __init__(self, value_type: Type, name: str,
                 initializer: Optional[Constant] = None,
                 is_constant: bool = False, internal: bool = False):
        super().__init__(types.pointer_to(value_type), name, internal)
        if initializer is not None:
            _check_initializer_type(value_type, initializer, name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant

    @property
    def is_declaration(self) -> bool:
        return self.initializer is None


def _check_initializer_type(value_type: Type, initializer: Constant,
                            name: str) -> None:
    from repro.ir.values import ConstantZero, UndefValue

    if isinstance(initializer, (ConstantZero, UndefValue)):
        return  # typed by the slot they fill
    if initializer.type is not value_type:
        raise types.LlvaTypeError(
            "initializer for %{0} has type {1}, global is {2}"
            .format(name, initializer.type, value_type))


class Function(GlobalValue):
    """An LLVA function: arguments plus a CFG of basic blocks."""

    __slots__ = ("function_type", "args", "blocks", "smc_version",
                 "is_intrinsic", "_cached_num_instructions")

    def __init__(self, function_type: types.FunctionType, name: str,
                 arg_names: Optional[Sequence[str]] = None,
                 internal: bool = False):
        super().__init__(types.pointer_to(function_type), name, internal)
        self.function_type = function_type
        if arg_names is None:
            arg_names = ["arg{0}".format(i)
                         for i in range(len(function_type.params))]
        if len(arg_names) != len(function_type.params):
            raise ValueError("argument name count mismatch")
        self.args: List[Argument] = []
        for index, (param, arg_name) in enumerate(
                zip(function_type.params, arg_names)):
            arg = Argument(param, arg_name, index)
            arg.function = self
            self.args.append(arg)
        self.blocks: List[BasicBlock] = []
        #: Bumped by the SMC intrinsics (Section 3.4): the translator
        #: invalidates cached native code whose version is stale.
        self.smc_version = 0
        #: Intrinsic functions are implemented by the translator itself
        #: (Section 3.5) and never have LLVA bodies.
        self.is_intrinsic = name.startswith("llva.")
        #: (smc_version, block count, instruction count) memo for
        #: :meth:`cached_num_instructions`.
        self._cached_num_instructions: Optional[Tuple[int, int, int]] = None

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(
                "function {0} has no body".format(self.name))
        return self.blocks[0]

    def add_block(self, name: str,
                  before: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self._unique_block_name(name))
        block.parent = self
        if before is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(before), block)
        return block

    def _unique_block_name(self, name: str) -> str:
        existing = {b.name for b in self.blocks}
        if name not in existing:
            return name
        counter = 1
        while "{0}.{1}".format(name, counter) in existing:
            counter += 1
        return "{0}.{1}".format(name, counter)

    def instructions(self) -> Iterator[Instruction]:
        """Iterate every instruction in block order."""
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)

    def cached_num_instructions(self) -> int:
        """:meth:`num_instructions` memoized on ``(smc_version,
        len(blocks))``.

        The hot consumers (JIT translation stats, fast-engine decode)
        re-query the count for every translation of the same function;
        an SMC replacement bumps ``smc_version`` and transforms that
        restructure the CFG change the block count, so either key
        change invalidates the memo.  Passes that rewrite instructions
        *within* existing blocks must reset ``_cached_num_instructions``
        explicitly (see ``llee/pgo.py``).
        """
        key = (self.smc_version, len(self.blocks))
        cached = self._cached_num_instructions
        if cached is not None and cached[:2] == key:
            return cached[2]
        count = self.num_instructions()
        self._cached_num_instructions = key + (count,)
        return count

    def replace_body_from(self, donor: "Function") -> None:
        """Self-modifying code support (Section 3.4).

        Atomically replace this function's body with *donor*'s (which must
        have an identical signature), bumping ``smc_version`` so that
        cached translations are invalidated.  Per the paper's SMC rule,
        only *future invocations* observe the new body; active invocations
        of the old body run to completion (the execution engines snapshot
        the block list at call entry).
        """
        if donor.function_type is not self.function_type:
            raise types.LlvaTypeError(
                "SMC replacement signature mismatch: {0} vs {1}"
                .format(donor.function_type, self.function_type))
        for block in self.blocks:
            block.parent = None
        self.blocks = donor.blocks
        for block in self.blocks:
            block.parent = self
        # Donor argument values flow into the new body; adopt them.
        old_args = self.args
        self.args = donor.args
        for arg in self.args:
            arg.function = self
        donor.blocks = []
        donor.args = old_args
        donor._cached_num_instructions = None
        self.smc_version += 1

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)


class Module:
    """One virtual object code unit."""

    def __init__(self, name: str = "module",
                 pointer_size: int = 8,
                 endianness: str = Endianness.LITTLE):
        self.name = name
        #: V-ABI configuration flags, "encoded in the object file so that
        #: ... the translator for a different hardware I-ISA can correctly
        #: execute the object code" (Section 3.2).
        self.pointer_size = pointer_size
        self.endianness = endianness
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        #: Named struct types, for printing (%struct.QuadTree = type {...}).
        self.named_types: Dict[str, types.StructType] = {}

    @property
    def target_data(self) -> TargetData:
        return TargetData(self.pointer_size, self.endianness)

    # -- symbol management ---------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions or function.name in self.globals:
            raise ValueError(
                "duplicate symbol {0!r} in module".format(function.name))
        function.parent = self
        self.functions[function.name] = function
        return function

    def create_function(self, name: str, function_type: types.FunctionType,
                        arg_names: Optional[Sequence[str]] = None,
                        internal: bool = False) -> Function:
        return self.add_function(
            Function(function_type, name, arg_names, internal))

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def get_or_declare_function(
            self, name: str,
            function_type: types.FunctionType) -> Function:
        existing = self.functions.get(name)
        if existing is not None:
            if existing.function_type is not function_type:
                raise types.LlvaTypeError(
                    "conflicting declarations for {0!r}".format(name))
            return existing
        return self.create_function(name, function_type)

    def remove_function(self, function: Function) -> None:
        del self.functions[function.name]
        function.parent = None

    def add_global(self, variable: GlobalVariable) -> GlobalVariable:
        if variable.name in self.globals or variable.name in self.functions:
            raise ValueError(
                "duplicate symbol {0!r} in module".format(variable.name))
        variable.parent = self
        self.globals[variable.name] = variable
        return variable

    def create_global(self, name: str, value_type: Type,
                      initializer: Optional[Constant] = None,
                      is_constant: bool = False,
                      internal: bool = False) -> GlobalVariable:
        return self.add_global(GlobalVariable(
            value_type, name, initializer, is_constant, internal))

    def remove_global(self, variable: GlobalVariable) -> None:
        del self.globals[variable.name]
        variable.parent = None

    def add_named_type(self, name: str,
                       struct: types.StructType) -> types.StructType:
        self.named_types[name] = struct
        return struct

    # -- queries -------------------------------------------------------------

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def num_instructions(self) -> int:
        """Total LLVA instruction count (the "#LLVA Inst." column of
        Table 2)."""
        return sum(f.num_instructions() for f in self.functions.values())

    def __repr__(self) -> str:
        return "<Module {0!r}: {1} functions, {2} globals>".format(
            self.name, len(self.functions), len(self.globals))
