"""Control-flow-graph analyses: orderings, dominators, dominance frontiers.

The explicit CFG is one of LLVA's two structural pillars (the other being
SSA).  These analyses power SSA construction (mem2reg), the verifier's
dominance checks, loop detection, and the trace cache's region formation.

The dominator computation is the Cooper-Harvey-Kennedy iterative algorithm
over reverse postorder — simple, and fast in practice for the CFG sizes a
translator sees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instructions import Instruction, PhiInst
from repro.ir.module import BasicBlock, Function


def reachable_blocks(function: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in depth-first preorder."""
    if not function.blocks:
        return []
    seen: Set[int] = set()
    order: List[BasicBlock] = []
    stack = [function.entry_block]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        order.append(block)
        for successor in reversed(block.successors()):
            if id(successor) not in seen:
                stack.append(successor)
    return order


def postorder(function: Function) -> List[BasicBlock]:
    """Reachable blocks in depth-first postorder."""
    if not function.blocks:
        return []
    # Iterative DFS with explicit state to avoid recursion limits on the
    # large generated benchmark functions.
    out: List[BasicBlock] = []
    seen: Set[int] = set()
    stack: List[Tuple[BasicBlock, int]] = [(function.entry_block, 0)]
    seen.add(id(function.entry_block))
    while stack:
        block, index = stack[-1]
        successors = block.successors()
        if index < len(successors):
            stack[-1] = (block, index + 1)
            successor = successors[index]
            if id(successor) not in seen:
                seen.add(id(successor))
                stack.append((successor, 0))
        else:
            stack.pop()
            out.append(block)
    return out


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Reachable blocks in reverse postorder (a topological-ish order)."""
    order = postorder(function)
    order.reverse()
    return order


class DominatorTree:
    """Immediate-dominator tree for one function's reachable CFG."""

    def __init__(self, function: Function):
        self.function = function
        self.rpo = reverse_postorder(function)
        self._rpo_index: Dict[int, int] = {
            id(block): index for index, block in enumerate(self.rpo)}
        self.idom: Dict[int, Optional[BasicBlock]] = {}
        self._children: Dict[int, List[BasicBlock]] = {
            id(block): [] for block in self.rpo}
        self._compute()
        self._dom_depth: Dict[int, int] = {}
        self._compute_depths()

    # -- construction --------------------------------------------------------

    def _compute(self) -> None:
        if not self.rpo:
            return
        entry = self.rpo[0]
        idom: Dict[int, BasicBlock] = {id(entry): entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                new_idom: Optional[BasicBlock] = None
                for pred in block.predecessors():
                    if id(pred) not in self._rpo_index:
                        continue  # unreachable predecessor
                    if id(pred) not in idom:
                        continue  # not yet processed this round
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        self.idom[id(entry)] = None
        for block in self.rpo[1:]:
            dominator = idom[id(block)]
            self.idom[id(block)] = dominator
            self._children[id(dominator)].append(block)

    def _intersect(self, a: BasicBlock, b: BasicBlock,
                   idom: Dict[int, BasicBlock]) -> BasicBlock:
        index = self._rpo_index
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    def _compute_depths(self) -> None:
        for block in self.rpo:  # rpo order guarantees idom comes first
            dominator = self.idom.get(id(block))
            if dominator is None:
                self._dom_depth[id(block)] = 0
            else:
                self._dom_depth[id(block)] = self._dom_depth[id(dominator)] + 1

    # -- queries -----------------------------------------------------------

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(id(block))

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return self._children.get(id(block), [])

    def depth(self, block: BasicBlock) -> int:
        return self._dom_depth[id(block)]

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if *a* dominates *b* (reflexively)."""
        if id(a) not in self._dom_depth or id(b) not in self._dom_depth:
            return False
        walk: Optional[BasicBlock] = b
        target_depth = self._dom_depth[id(a)]
        while walk is not None and self._dom_depth[id(walk)] > target_depth:
            walk = self.idom.get(id(walk))
        return walk is a

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def instruction_dominates(self, def_inst: Instruction,
                              use_inst: Instruction,
                              use_operand_index: int = -1) -> bool:
        """SSA dominance: does *def_inst*'s value dominate the use?

        Uses in phi nodes are considered to occur at the end of the
        corresponding predecessor block, per standard SSA semantics.
        """
        def_block = def_inst.parent
        use_block = use_inst.parent
        if def_block is None or use_block is None:
            return False
        if isinstance(use_inst, PhiInst) and use_operand_index >= 0:
            # Operand i's controlling block is operand i+1.
            pred = use_inst.operand(use_operand_index + 1)
            return self.dominates(def_block, pred)  # type: ignore[arg-type]
        if def_block is use_block:
            block_insts = def_block.instructions
            return block_insts.index(def_inst) < block_insts.index(use_inst)
        return self.strictly_dominates(def_block, use_block)


def dominance_frontiers(function: Function,
                        domtree: Optional[DominatorTree] = None
                        ) -> Dict[int, Set[BasicBlock]]:
    """Cytron-style dominance frontiers, keyed by ``id(block)``.

    The frontier of B is the set of blocks where B's dominance stops —
    exactly the phi-placement sites for definitions in B (used by
    mem2reg).
    """
    if domtree is None:
        domtree = DominatorTree(function)
    frontiers: Dict[int, Set[BasicBlock]] = {
        id(block): set() for block in domtree.rpo}
    for block in domtree.rpo:
        preds = [p for p in block.predecessors()
                 if id(p) in domtree._rpo_index]
        if len(preds) < 2:
            continue
        idom = domtree.immediate_dominator(block)
        for pred in preds:
            runner: Optional[BasicBlock] = pred
            while runner is not None and runner is not idom:
                frontiers[id(runner)].add(block)
                runner = domtree.immediate_dominator(runner)
    return frontiers


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from the entry; returns the count.

    Phi nodes in surviving blocks drop their edges from deleted
    predecessors.
    """
    reachable = {id(block) for block in reachable_blocks(function)}
    doomed = [block for block in function.blocks
              if id(block) not in reachable]
    if not doomed:
        return 0
    doomed_ids = {id(block) for block in doomed}
    for block in function.blocks:
        if id(block) in reachable:
            for phi in block.phis():
                for _value, pred in list(phi.incoming()):
                    if id(pred) in doomed_ids:
                        phi.remove_incoming(pred)
    for block in doomed:
        block.erase_from_parent()
    return len(doomed)
