"""The LLVA instruction set — exactly the 28 instructions of Table 1.

=============  ==========================================================
Class          Instructions
=============  ==========================================================
arithmetic     ``add  sub  mul  div  rem``
bitwise        ``and  or  xor  shl  shr``
comparison     ``seteq  setne  setlt  setgt  setle  setge``
control-flow   ``ret  br  mbr  invoke  unwind``
memory         ``load  store  getelementptr  alloca``
other          ``cast  call  phi``
=============  ==========================================================

Every instruction is three-address with typed register/constant operands,
carries strict type rules ("no mixed-type operations", Section 3.1), and
carries the boolean ``ExceptionsEnabled`` attribute of Section 3.3 — true
by default only for ``load``, ``store`` and ``div``.

Instructions are themselves :class:`~repro.ir.values.Value`\\ s: the virtual
register an instruction defines *is* the instruction object, which directly
gives the SSA property (every register has exactly one definition).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.ir import types, values
from repro.ir.types import LlvaTypeError, Type
from repro.ir.values import Constant, ConstantInt, User, Value

#: The full opcode inventory, grouped exactly as the paper's Table 1.
OPCODE_GROUPS = {
    "arithmetic": ("add", "sub", "mul", "div", "rem"),
    "bitwise": ("and", "or", "xor", "shl", "shr"),
    "comparison": ("seteq", "setne", "setlt", "setgt", "setle", "setge"),
    "control-flow": ("ret", "br", "mbr", "invoke", "unwind"),
    "memory": ("load", "store", "getelementptr", "alloca"),
    "other": ("cast", "call", "phi"),
    # The vector extension rides after the paper's 28 opcodes so the
    # bitcode opcode indices of the base ISA never move.
    "vector": ("vadd", "vsub", "vmul", "vsplat",
               "vreduce.add", "vreduce.min", "vreduce.max",
               "vload", "vstore"),
}

#: Flat tuple of every opcode: the 28 of Table 1 plus the vector extension.
ALL_OPCODES: Tuple[str, ...] = tuple(
    op for group in OPCODE_GROUPS.values() for op in group)

#: The vector-extension opcodes.
VECTOR_OPCODES: Tuple[str, ...] = OPCODE_GROUPS["vector"]

#: Opcodes whose ExceptionsEnabled attribute defaults to true (Section 3.3).
#: vload/vstore inherit the memory-access default of load/store.
DEFAULT_EXCEPTIONS_ENABLED = frozenset(
    {"load", "store", "div", "vload", "vstore"})

#: Opcodes that terminate a basic block.
TERMINATOR_OPCODES = frozenset({"ret", "br", "mbr", "invoke", "unwind"})


class Instruction(User):
    """Base class of all LLVA instructions."""

    __slots__ = ("opcode", "parent", "exceptions_enabled")

    #: Overridden by each concrete subclass.
    OPCODE: str = ""

    def __init__(self, type_: Type, operands: Sequence[Value],
                 name: Optional[str] = None):
        super().__init__(type_, operands, name)
        self.opcode = self.OPCODE
        self.parent = None  # the owning BasicBlock, set on insertion
        self.exceptions_enabled = self.OPCODE in DEFAULT_EXCEPTIONS_ENABLED

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    @property
    def produces_value(self) -> bool:
        return not self.type.is_void

    @property
    def function(self):
        """The function containing this instruction (or None)."""
        return self.parent.parent if self.parent is not None else None

    def may_raise(self) -> bool:
        """Whether executing this instruction can deliver an exception,
        given its current ``ExceptionsEnabled`` setting."""
        return self.exceptions_enabled and bool(self.possible_exceptions())

    def possible_exceptions(self) -> Tuple[str, ...]:
        """The set of exception conditions this opcode defines (Section
        3.3: "Each LLVA instruction defines a set of possible
        exceptions")."""
        return ()

    def has_side_effects(self) -> bool:
        """True if the instruction must be kept even when its value is
        unused (stores, calls, terminators, potential traps)."""
        return self.is_terminator or self.may_raise()

    def erase(self) -> None:
        """Unlink from the parent block and drop operand references."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    def successors(self) -> Tuple["Value", ...]:
        """Successor blocks (terminators only)."""
        return ()

    def __repr__(self) -> str:
        return "<{0} {1}>".format(type(self).__name__, self.opcode)


# ---------------------------------------------------------------------------
# Arithmetic and bitwise
# ---------------------------------------------------------------------------

class BinaryInst(Instruction):
    """Shared base for the three-address binary operations."""

    __slots__ = ()

    def __init__(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        self._check_operand_types(lhs, rhs)
        super().__init__(lhs.type, (lhs, rhs), name)

    def _check_operand_types(self, lhs: Value, rhs: Value) -> None:
        if lhs.type is not rhs.type:
            raise LlvaTypeError(
                "{0}: mixed operand types {1} and {2} (no implicit "
                "coercion in LLVA)".format(self.OPCODE, lhs.type, rhs.type))

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    @property
    def is_commutative(self) -> bool:
        return self.OPCODE in ("add", "mul", "and", "or", "xor")


class ArithmeticInst(BinaryInst):
    """``add``, ``sub``, ``mul``, ``div``, ``rem`` on int or fp operands."""

    __slots__ = ()

    def _check_operand_types(self, lhs: Value, rhs: Value) -> None:
        super()._check_operand_types(lhs, rhs)
        if not lhs.type.is_arithmetic:
            raise LlvaTypeError(
                "{0} requires integer or floating-point operands, got {1}"
                .format(self.OPCODE, lhs.type))

    def possible_exceptions(self) -> Tuple[str, ...]:
        if self.OPCODE in ("div", "rem"):
            if self.type.is_integer:
                return ("divide-by-zero",)
            return ()
        if self.type.is_integer:
            return ("integer-overflow",)
        return ()


class AddInst(ArithmeticInst):
    OPCODE = "add"
    __slots__ = ()


class SubInst(ArithmeticInst):
    OPCODE = "sub"
    __slots__ = ()


class MulInst(ArithmeticInst):
    OPCODE = "mul"
    __slots__ = ()


class DivInst(ArithmeticInst):
    OPCODE = "div"
    __slots__ = ()


class RemInst(ArithmeticInst):
    OPCODE = "rem"
    __slots__ = ()


class LogicalInst(BinaryInst):
    """``and``, ``or``, ``xor`` on integer or bool operands."""

    __slots__ = ()

    def _check_operand_types(self, lhs: Value, rhs: Value) -> None:
        super()._check_operand_types(lhs, rhs)
        if not (lhs.type.is_integer or lhs.type.is_bool):
            raise LlvaTypeError(
                "{0} requires integral operands, got {1}"
                .format(self.OPCODE, lhs.type))


class AndInst(LogicalInst):
    OPCODE = "and"
    __slots__ = ()


class OrInst(LogicalInst):
    OPCODE = "or"
    __slots__ = ()


class XorInst(LogicalInst):
    OPCODE = "xor"
    __slots__ = ()


class ShiftInst(BinaryInst):
    """``shl``/``shr``: shift an integer by a ``ubyte`` amount.

    ``shr`` is arithmetic for signed operands and logical for unsigned —
    signedness lives in the type, not the opcode.
    """

    __slots__ = ()

    def _check_operand_types(self, lhs: Value, rhs: Value) -> None:
        if not lhs.type.is_integer:
            raise LlvaTypeError(
                "{0} requires an integer first operand, got {1}"
                .format(self.OPCODE, lhs.type))
        if rhs.type is not types.UBYTE:
            raise LlvaTypeError(
                "{0} shift amount must be ubyte, got {1}"
                .format(self.OPCODE, rhs.type))


class ShlInst(ShiftInst):
    OPCODE = "shl"
    __slots__ = ()


class ShrInst(ShiftInst):
    OPCODE = "shr"
    __slots__ = ()


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

class CompareInst(BinaryInst):
    """``seteq``/``setne``/``setlt``/``setgt``/``setle``/``setge``.

    Operands share any scalar type; the result is always ``bool``.
    """

    __slots__ = ()

    def __init__(self, lhs: Value, rhs: Value, name: Optional[str] = None):
        self._check_operand_types(lhs, rhs)
        # Skip BinaryInst.__init__ so the result type is bool, not lhs.type.
        Instruction.__init__(self, types.BOOL, (lhs, rhs), name)

    def _check_operand_types(self, lhs: Value, rhs: Value) -> None:
        if lhs.type is not rhs.type:
            raise LlvaTypeError(
                "{0}: mixed operand types {1} and {2}"
                .format(self.OPCODE, lhs.type, rhs.type))
        if not lhs.type.is_scalar:
            raise LlvaTypeError(
                "{0} requires scalar operands, got {1}"
                .format(self.OPCODE, lhs.type))

    @property
    def is_commutative(self) -> bool:
        return self.OPCODE in ("seteq", "setne")

    @property
    def relation(self) -> str:
        """The comparison relation: ``eq ne lt gt le ge``."""
        return self.OPCODE[3:]


class SetEqInst(CompareInst):
    OPCODE = "seteq"
    __slots__ = ()


class SetNeInst(CompareInst):
    OPCODE = "setne"
    __slots__ = ()


class SetLtInst(CompareInst):
    OPCODE = "setlt"
    __slots__ = ()


class SetGtInst(CompareInst):
    OPCODE = "setgt"
    __slots__ = ()


class SetLeInst(CompareInst):
    OPCODE = "setle"
    __slots__ = ()


class SetGeInst(CompareInst):
    OPCODE = "setge"
    __slots__ = ()


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------

class RetInst(Instruction):
    """``ret void`` or ``ret <type> <value>``."""

    OPCODE = "ret"
    __slots__ = ()

    def __init__(self, value: Optional[Value] = None):
        operands = () if value is None else (value,)
        super().__init__(types.VOID, operands)

    @property
    def return_value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None


class BranchInst(Instruction):
    """``br label %dest`` or ``br bool %cond, label %then, label %else``."""

    OPCODE = "br"
    __slots__ = ()

    def __init__(self, *, target: Optional[Value] = None,
                 condition: Optional[Value] = None,
                 if_true: Optional[Value] = None,
                 if_false: Optional[Value] = None):
        if condition is None:
            if target is None or if_true is not None or if_false is not None:
                raise LlvaTypeError("unconditional br takes a single target")
            _require_label(target)
            operands: Tuple[Value, ...] = (target,)
        else:
            if target is not None or if_true is None or if_false is None:
                raise LlvaTypeError(
                    "conditional br takes a condition and two targets")
            if condition.type is not types.BOOL:
                raise LlvaTypeError("br condition must be bool, got {0}"
                                    .format(condition.type))
            _require_label(if_true)
            _require_label(if_false)
            operands = (condition, if_true, if_false)
        super().__init__(types.VOID, operands)

    @property
    def is_conditional(self) -> bool:
        return self.num_operands == 3

    @property
    def condition(self) -> Optional[Value]:
        return self.operand(0) if self.is_conditional else None

    def successors(self) -> Tuple[Value, ...]:
        if self.is_conditional:
            return (self.operand(1), self.operand(2))
        return (self.operand(0),)


class MultiwayBranchInst(Instruction):
    """``mbr`` — the multi-way branch (switch) on an integer value.

    Operand layout: ``[value, default_label, case_const0, case_label0,
    case_const1, case_label1, ...]``.
    """

    OPCODE = "mbr"
    __slots__ = ()

    def __init__(self, value: Value, default: Value,
                 cases: Sequence[Tuple[ConstantInt, Value]] = ()):
        if not value.type.is_integer:
            raise LlvaTypeError(
                "mbr requires an integer selector, got {0}"
                .format(value.type))
        _require_label(default)
        operands: List[Value] = [value, default]
        for case_value, case_label in cases:
            if not isinstance(case_value, ConstantInt):
                raise LlvaTypeError("mbr case values must be constant ints")
            if case_value.type is not value.type:
                raise LlvaTypeError(
                    "mbr case type {0} does not match selector type {1}"
                    .format(case_value.type, value.type))
            _require_label(case_label)
            operands.append(case_value)
            operands.append(case_label)
        super().__init__(types.VOID, operands)

    @property
    def selector(self) -> Value:
        return self.operand(0)

    @property
    def default(self) -> Value:
        return self.operand(1)

    def cases(self) -> Iterator[Tuple[ConstantInt, Value]]:
        for index in range(2, self.num_operands, 2):
            yield self.operand(index), self.operand(index + 1)

    @property
    def num_cases(self) -> int:
        return (self.num_operands - 2) // 2

    def successors(self) -> Tuple[Value, ...]:
        return (self.default,) + tuple(label for _v, label in self.cases())


class CallInst(Instruction):
    """``call`` through a function or function-pointer operand.

    Operand layout: ``[callee, arg0, arg1, ...]``.  The abstract calling
    convention of Section 3.2: no explicit argument registers, stack
    adjustment, or save/restore code — the translator synthesizes all of
    it.
    """

    OPCODE = "call"
    __slots__ = ()

    def __init__(self, callee: Value, args: Sequence[Value],
                 name: Optional[str] = None):
        signature = _callee_signature(callee)
        _check_call_args(signature, args)
        super().__init__(signature.return_type, (callee,) + tuple(args),
                         name)

    @property
    def callee(self) -> Value:
        return self.operand(0)

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands[1:]

    @property
    def signature(self) -> types.FunctionType:
        return _callee_signature(self.callee)


class InvokeInst(Instruction):
    """``invoke``: a call with explicit exceptional control flow.

    Operand layout: ``[callee, normal_label, unwind_label, arg0, ...]``.
    If the callee (or anything it calls) executes ``unwind``, control
    resumes at *unwind_label* instead of *normal_label* (Section 3.1:
    source-language exceptions via explicit, portable stack unwinding).
    """

    OPCODE = "invoke"
    __slots__ = ()

    def __init__(self, callee: Value, args: Sequence[Value],
                 normal: Value, unwind: Value, name: Optional[str] = None):
        signature = _callee_signature(callee)
        _check_call_args(signature, args)
        _require_label(normal)
        _require_label(unwind)
        super().__init__(signature.return_type,
                         (callee, normal, unwind) + tuple(args), name)

    @property
    def callee(self) -> Value:
        return self.operand(0)

    @property
    def normal_dest(self) -> Value:
        return self.operand(1)

    @property
    def unwind_dest(self) -> Value:
        return self.operand(2)

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands[3:]

    @property
    def signature(self) -> types.FunctionType:
        return _callee_signature(self.callee)

    def successors(self) -> Tuple[Value, ...]:
        return (self.normal_dest, self.unwind_dest)


class UnwindInst(Instruction):
    """``unwind``: pop frames to the dynamically-nearest ``invoke``."""

    OPCODE = "unwind"
    __slots__ = ()

    def __init__(self):
        super().__init__(types.VOID, ())


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

class LoadInst(Instruction):
    """``load <type>* %ptr`` — the only way to read memory."""

    OPCODE = "load"
    __slots__ = ()

    def __init__(self, pointer: Value, name: Optional[str] = None):
        pointee = _require_pointer(pointer, "load")
        if not pointee.is_scalar:
            raise LlvaTypeError(
                "load result must be scalar, got {0}".format(pointee))
        super().__init__(pointee, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    def possible_exceptions(self) -> Tuple[str, ...]:
        return ("memory-fault",)


class StoreInst(Instruction):
    """``store <type> %value, <type>* %ptr`` — the only way to write."""

    OPCODE = "store"
    __slots__ = ()

    def __init__(self, value: Value, pointer: Value):
        pointee = _require_pointer(pointer, "store")
        if value.type is not pointee:
            raise LlvaTypeError(
                "store of {0} through pointer to {1}"
                .format(value.type, pointee))
        super().__init__(types.VOID, (value, pointer))

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)

    def possible_exceptions(self) -> Tuple[str, ...]:
        return ("memory-fault",)

    def has_side_effects(self) -> bool:
        return True


class GetElementPtrInst(Instruction):
    """``getelementptr`` — typed, target-independent pointer arithmetic.

    Offsets are expressed symbolically: array steps are ``long``/``uint``
    register or constant indices, structure steps are constant ``ubyte``
    field numbers (Section 3.1's example indexes ``%T`` with
    ``long 0, ubyte 1, long 3``).  The translator — and only the
    translator — turns these into byte offsets using the target's pointer
    size and struct layout, which is what makes type-safe LLVA code
    portable across 32- and 64-bit implementations (Section 3.2).
    """

    OPCODE = "getelementptr"
    __slots__ = ()

    def __init__(self, pointer: Value, indices: Sequence[Value],
                 name: Optional[str] = None):
        pointee = _require_pointer(pointer, "getelementptr")
        if not indices:
            raise LlvaTypeError("getelementptr requires at least one index")
        result = self._walk_indices(pointee, indices)
        super().__init__(types.pointer_to(result),
                         (pointer,) + tuple(indices), name)

    @staticmethod
    def _walk_indices(pointee: types.Type,
                      indices: Sequence[Value]) -> types.Type:
        current = pointee
        for position, index in enumerate(indices):
            if position == 0:
                # The leading index steps over whole objects of the
                # pointee type; the type does not change.
                if not index.type.is_integer:
                    raise LlvaTypeError(
                        "gep index 0 must be an integer, got {0}"
                        .format(index.type))
                continue
            if current.is_struct:
                if (not isinstance(index, ConstantInt)
                        or index.type is not types.UBYTE):
                    raise LlvaTypeError(
                        "gep struct index must be a constant ubyte")
                field_number = index.value
                fields = current.fields  # type: ignore[attr-defined]
                if not 0 <= field_number < len(fields):
                    raise LlvaTypeError(
                        "gep field number {0} out of range for {1}"
                        .format(field_number, current))
                current = fields[field_number]
            elif current.is_array:
                if not index.type.is_integer:
                    raise LlvaTypeError(
                        "gep array index must be an integer, got {0}"
                        .format(index.type))
                current = current.element  # type: ignore[attr-defined]
            else:
                raise LlvaTypeError(
                    "gep cannot index into {0}".format(current))
        return current

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> Tuple[Value, ...]:
        return self.operands[1:]

    def constant_indices(self) -> Optional[Tuple[int, ...]]:
        """The index chain as plain ints if fully constant, else None."""
        out: List[int] = []
        for index in self.indices:
            if not isinstance(index, ConstantInt):
                return None
            out.append(index.value)
        return tuple(out)


class AllocaInst(Instruction):
    """``alloca <type>[, uint <n>]`` — explicit stack allocation.

    Returns a typed pointer into the current frame.  Section 3.2: "the
    translator preallocates all fixed-size alloca objects in the
    function's stack frame at compile time"; our code generators do
    exactly that, and only dynamic allocas adjust the stack pointer at
    run time.
    """

    OPCODE = "alloca"
    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: Type, count: Optional[Value] = None,
                 name: Optional[str] = None):
        if not (allocated_type.is_scalar or allocated_type.is_array
                or allocated_type.is_struct):
            raise LlvaTypeError(
                "cannot alloca type {0}".format(allocated_type))
        operands: Tuple[Value, ...] = ()
        if count is not None:
            if count.type is not types.UINT:
                raise LlvaTypeError(
                    "alloca count must be uint, got {0}".format(count.type))
            operands = (count,)
        super().__init__(types.pointer_to(allocated_type), operands, name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None

    @property
    def is_static(self) -> bool:
        """Fixed-size alloca, preallocatable in the frame at translate
        time."""
        return self.count is None or isinstance(self.count, ConstantInt)

    def possible_exceptions(self) -> Tuple[str, ...]:
        return ("stack-overflow",)


# ---------------------------------------------------------------------------
# Other
# ---------------------------------------------------------------------------

class CastInst(Instruction):
    """``cast <value> to <type>`` — the sole type-conversion mechanism.

    There is no implicit coercion anywhere in LLVA; every conversion
    (integer widening/narrowing, int<->fp, int<->pointer, pointer<->
    pointer) is an explicit cast (Section 3.1).
    """

    OPCODE = "cast"
    __slots__ = ()

    def __init__(self, value: Value, target_type: Type,
                 name: Optional[str] = None):
        if not value.type.is_scalar:
            raise LlvaTypeError(
                "cast source must be scalar, got {0}".format(value.type))
        if not target_type.is_scalar:
            raise LlvaTypeError(
                "cast target must be scalar, got {0}".format(target_type))
        if value.type.is_floating_point and target_type.is_pointer:
            raise LlvaTypeError("cannot cast floating point to pointer")
        if value.type.is_pointer and target_type.is_floating_point:
            raise LlvaTypeError("cannot cast pointer to floating point")
        super().__init__(target_type, (value,), name)

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def is_noop(self) -> bool:
        """True for casts the translator drops entirely (same type, or
        pointer-to-pointer)."""
        source = self.value.type
        return source is self.type or (source.is_pointer
                                       and self.type.is_pointer)


class PhiInst(Instruction):
    """``phi`` — SSA merge of values at control-flow join points.

    Operand layout: ``[value0, block0, value1, block1, ...]``.  The
    translator eliminates phis by placing copies in predecessor blocks
    (Section 3.1); see :mod:`repro.targets.codegen`.
    """

    OPCODE = "phi"
    __slots__ = ()

    def __init__(self, type_: Type,
                 incoming: Sequence[Tuple[Value, Value]] = (),
                 name: Optional[str] = None):
        if not type_.is_scalar:
            raise LlvaTypeError(
                "phi type must be scalar, got {0}".format(type_))
        operands: List[Value] = []
        for value, block in incoming:
            self._check_incoming(type_, value, block)
            operands.append(value)
            operands.append(block)
        super().__init__(type_, operands, name)

    @staticmethod
    def _check_incoming(type_: Type, value: Value, block: Value) -> None:
        if value.type is not type_:
            raise LlvaTypeError(
                "phi incoming value has type {0}, expected {1}"
                .format(value.type, type_))
        _require_label(block)

    def add_incoming(self, value: Value, block: Value) -> None:
        self._check_incoming(self.type, value, block)
        self._append_operand(value)
        self._append_operand(block)

    @property
    def num_incoming(self) -> int:
        return self.num_operands // 2

    def incoming(self) -> Iterator[Tuple[Value, Value]]:
        for index in range(0, self.num_operands, 2):
            yield self.operand(index), self.operand(index + 1)

    def incoming_for_block(self, block: Value) -> Optional[Value]:
        for value, pred in self.incoming():
            if pred is block:
                return value
        return None

    def remove_incoming(self, block: Value) -> None:
        """Drop the edge from *block* (used by CFG simplification)."""
        pairs = [(v, b) for v, b in self.incoming() if b is not block]
        self._pop_operands(0)
        for value, pred in pairs:
            self._append_operand(value)
            self._append_operand(pred)


# ---------------------------------------------------------------------------
# Vector extension
# ---------------------------------------------------------------------------

class VectorBinaryInst(BinaryInst):
    """``vadd``/``vsub``/``vmul`` — element-wise arithmetic on vectors.

    Both operands and the result share one vector type.  Integer lanes wrap
    like scalar arithmetic with ``ExceptionsEnabled`` off, so a vectorized
    loop computes bit-identical results to its scalar original.
    """

    __slots__ = ()

    def _check_operand_types(self, lhs: Value, rhs: Value) -> None:
        super()._check_operand_types(lhs, rhs)
        if not lhs.type.is_vector:
            raise LlvaTypeError(
                "{0} requires vector operands, got {1}"
                .format(self.OPCODE, lhs.type))


class VAddInst(VectorBinaryInst):
    OPCODE = "vadd"
    __slots__ = ()


class VSubInst(VectorBinaryInst):
    OPCODE = "vsub"
    __slots__ = ()


class VMulInst(VectorBinaryInst):
    OPCODE = "vmul"
    __slots__ = ()


class VSplatInst(Instruction):
    """``vsplat <L x T> %scalar`` — broadcast a scalar into every lane."""

    OPCODE = "vsplat"
    __slots__ = ()

    def __init__(self, vector_type: Type, scalar: Value,
                 name: Optional[str] = None):
        if not vector_type.is_vector:
            raise LlvaTypeError(
                "vsplat result must be a vector, got {0}".format(vector_type))
        if scalar.type is not vector_type.element:  # type: ignore[attr-defined]
            raise LlvaTypeError(
                "vsplat of {0} into {1} lanes"
                .format(scalar.type, vector_type))
        super().__init__(vector_type, (scalar,), name)

    @property
    def scalar(self) -> Value:
        return self.operand(0)


class VReduceInst(Instruction):
    """``vreduce.add/min/max T %init, <L x T> %v`` — ordered lane fold.

    Folds lanes left-to-right into the scalar *init* accumulator:
    ``((((init op v0) op v1) ...) op vL-1)``.  The explicit initial value
    and the fixed lane order make a reduction bit-identical to the scalar
    accumulation loop it replaces — floating-point association is
    preserved, which the differential harness depends on.
    """

    __slots__ = ()

    def __init__(self, init: Value, vector: Value,
                 name: Optional[str] = None):
        if not vector.type.is_vector:
            raise LlvaTypeError(
                "{0} requires a vector operand, got {1}"
                .format(self.OPCODE, vector.type))
        element = vector.type.element  # type: ignore[attr-defined]
        if init.type is not element:
            raise LlvaTypeError(
                "{0} accumulator has type {1}, vector lanes are {2}"
                .format(self.OPCODE, init.type, element))
        super().__init__(element, (init, vector), name)

    @property
    def init(self) -> Value:
        return self.operand(0)

    @property
    def vector(self) -> Value:
        return self.operand(1)

    @property
    def kind(self) -> str:
        """The fold operation: ``add``, ``min``, or ``max``."""
        return self.OPCODE.rsplit(".", 1)[1]


class VReduceAddInst(VReduceInst):
    OPCODE = "vreduce.add"
    __slots__ = ()


class VReduceMinInst(VReduceInst):
    OPCODE = "vreduce.min"
    __slots__ = ()


class VReduceMaxInst(VReduceInst):
    OPCODE = "vreduce.max"
    __slots__ = ()


class VLoadInst(Instruction):
    """``vload <L x T>, T* %ptr`` — load L contiguous lanes.

    Reads lanes 0..L-1 from ``ptr + i*sizeof(T)`` in ascending order; a
    fault on any lane delivers the memory-fault exception with that lane's
    address, exactly as the equivalent scalar load sequence would.
    """

    OPCODE = "vload"
    __slots__ = ()

    def __init__(self, vector_type: Type, pointer: Value,
                 name: Optional[str] = None):
        if not vector_type.is_vector:
            raise LlvaTypeError(
                "vload result must be a vector, got {0}".format(vector_type))
        pointee = _require_pointer(pointer, "vload")
        if pointee is not vector_type.element:  # type: ignore[attr-defined]
            raise LlvaTypeError(
                "vload of {0} through pointer to {1}"
                .format(vector_type, pointee))
        super().__init__(vector_type, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    def possible_exceptions(self) -> Tuple[str, ...]:
        return ("memory-fault",)


class VStoreInst(Instruction):
    """``vstore <L x T> %v, T* %ptr`` — store L contiguous lanes.

    Writes lanes in ascending order with the same per-lane fault rule as
    :class:`VLoadInst`.
    """

    OPCODE = "vstore"
    __slots__ = ()

    def __init__(self, value: Value, pointer: Value):
        if not value.type.is_vector:
            raise LlvaTypeError(
                "vstore requires a vector value, got {0}".format(value.type))
        pointee = _require_pointer(pointer, "vstore")
        if pointee is not value.type.element:  # type: ignore[attr-defined]
            raise LlvaTypeError(
                "vstore of {0} through pointer to {1}"
                .format(value.type, pointee))
        super().__init__(types.VOID, (value, pointer))

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)

    def possible_exceptions(self) -> Tuple[str, ...]:
        return ("memory-fault",)

    def has_side_effects(self) -> bool:
        return True


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _require_label(value: Value) -> None:
    if value.type is not types.LABEL:
        raise LlvaTypeError(
            "expected a basic-block label, got {0}".format(value.type))


def _require_pointer(value: Value, opcode: str) -> Type:
    if not value.type.is_pointer:
        raise LlvaTypeError(
            "{0} requires a pointer operand, got {1}"
            .format(opcode, value.type))
    return value.type.pointee  # type: ignore[attr-defined]


def _callee_signature(callee: Value) -> types.FunctionType:
    type_ = callee.type
    if type_.is_pointer:
        type_ = type_.pointee  # type: ignore[attr-defined]
    if not type_.is_function:
        raise LlvaTypeError(
            "call target must be a function (pointer), got {0}"
            .format(callee.type))
    return type_  # type: ignore[return-value]


def _check_call_args(signature: types.FunctionType,
                     args: Sequence[Value]) -> None:
    if signature.vararg:
        if len(args) < len(signature.params):
            raise LlvaTypeError(
                "call passes {0} args, callee requires at least {1}"
                .format(len(args), len(signature.params)))
    elif len(args) != len(signature.params):
        raise LlvaTypeError(
            "call passes {0} args, callee takes {1}"
            .format(len(args), len(signature.params)))
    for position, (arg, param) in enumerate(zip(args, signature.params)):
        if arg.type is not param:
            raise LlvaTypeError(
                "call argument {0} has type {1}, parameter is {2}"
                .format(position, arg.type, param))


#: Map from opcode to the implementing class, for the parser and bitcode
#: reader.
INSTRUCTION_CLASSES = {
    cls.OPCODE: cls
    for cls in (
        AddInst, SubInst, MulInst, DivInst, RemInst,
        AndInst, OrInst, XorInst, ShlInst, ShrInst,
        SetEqInst, SetNeInst, SetLtInst, SetGtInst, SetLeInst, SetGeInst,
        RetInst, BranchInst, MultiwayBranchInst, InvokeInst, UnwindInst,
        LoadInst, StoreInst, GetElementPtrInst, AllocaInst,
        CastInst, CallInst, PhiInst,
        VAddInst, VSubInst, VMulInst, VSplatInst,
        VReduceAddInst, VReduceMinInst, VReduceMaxInst,
        VLoadInst, VStoreInst,
    )
}

VECTOR_BINARY_CLASSES = {
    "vadd": VAddInst, "vsub": VSubInst, "vmul": VMulInst,
}

VREDUCE_CLASSES = {
    "vreduce.add": VReduceAddInst,
    "vreduce.min": VReduceMinInst,
    "vreduce.max": VReduceMaxInst,
}

COMPARE_CLASSES = {
    "eq": SetEqInst, "ne": SetNeInst, "lt": SetLtInst,
    "gt": SetGtInst, "le": SetLeInst, "ge": SetGeInst,
}

BINARY_CLASSES = {
    "add": AddInst, "sub": SubInst, "mul": MulInst, "div": DivInst,
    "rem": RemInst, "and": AndInst, "or": OrInst, "xor": XorInst,
    "shl": ShlInst, "shr": ShrInst,
}
