"""The LLVA module verifier.

The V-ISA has "strict type rules" (Section 3.1); the instruction
constructors enforce the local ones, and this verifier checks the global
structural invariants that constructors cannot see:

* every basic block ends in exactly one terminator, with no terminator in
  the middle;
* phi nodes appear only at the head of a block and have exactly one
  incoming entry per CFG predecessor;
* SSA dominance — every use is dominated by its definition;
* returns match the function signature;
* def-use chains are internally consistent (a safety net for transforms).

Translators run the verifier on input object code before generating native
code; the test suite runs it after every transformation.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.cfg import DominatorTree, reachable_blocks
from repro.ir.module import BasicBlock, Function, GlobalValue, Module
from repro.ir.printer import format_instruction
from repro.ir.values import Argument, Constant, User, Value


class VerificationError(Exception):
    """Raised when a module violates a structural V-ISA rule."""

    def __init__(self, errors: List[str]):
        super().__init__("\n".join(errors))
        self.errors = errors


def verify_module(module: Module) -> None:
    """Verify *module*, raising :class:`VerificationError` on failure."""
    errors: List[str] = []
    for function in module.functions.values():
        if function.is_declaration:
            continue
        _verify_function(function, errors)
    if errors:
        raise VerificationError(errors)


def verify_function(function: Function) -> None:
    """Verify a single function definition."""
    errors: List[str] = []
    _verify_function(function, errors)
    if errors:
        raise VerificationError(errors)


def _verify_function(function: Function, errors: List[str]) -> None:
    prefix = "function %{0}: ".format(function.name)

    if not function.blocks:
        errors.append(prefix + "definition with no basic blocks")
        return

    entry = function.entry_block
    if entry.predecessors():
        errors.append(prefix + "entry block has predecessors")

    for block in function.blocks:
        _verify_block(function, block, errors, prefix)

    # SSA dominance over the reachable subgraph.
    domtree = DominatorTree(function)
    reachable: Set[int] = {id(b) for b in reachable_blocks(function)}
    for block in function.blocks:
        if id(block) not in reachable:
            continue
        for inst in block.instructions:
            _verify_ssa_uses(function, inst, domtree, reachable,
                             errors, prefix)


def _verify_block(function: Function, block: BasicBlock,
                  errors: List[str], prefix: str) -> None:
    where = prefix + "block %{0}: ".format(block.name)
    if block.parent is not function:
        errors.append(where + "bad parent link")
    if not block.instructions:
        errors.append(where + "empty block")
        return
    if not block.instructions[-1].is_terminator:
        errors.append(where + "does not end in a terminator")
    seen_non_phi = False
    for index, inst in enumerate(block.instructions):
        is_last = index == len(block.instructions) - 1
        if inst.is_terminator and not is_last:
            errors.append(where + "terminator in mid-block: {0}"
                          .format(format_instruction(inst)))
        if inst.parent is not block:
            errors.append(where + "bad instruction parent link")
        if isinstance(inst, insts.PhiInst):
            if seen_non_phi:
                errors.append(where + "phi after non-phi instruction")
            _verify_phi(block, inst, errors, where)
        else:
            seen_non_phi = True
        if isinstance(inst, insts.RetInst):
            _verify_ret(function, inst, errors, where)
        _verify_use_chains(inst, errors, where)


def _verify_phi(block: BasicBlock, phi: insts.PhiInst,
                errors: List[str], where: str) -> None:
    preds = block.predecessors()
    incoming_blocks = [b for _v, b in phi.incoming()]
    if len(incoming_blocks) != len(set(id(b) for b in incoming_blocks)):
        errors.append(where + "phi has duplicate incoming blocks")
    pred_ids = {id(p) for p in preds}
    incoming_ids = {id(b) for b in incoming_blocks}
    if pred_ids != incoming_ids:
        errors.append(
            where + "phi %{0} incoming blocks {1} do not match "
            "predecessors {2}".format(
                phi.name,
                sorted(b.name or "?" for b in incoming_blocks),
                sorted(p.name or "?" for p in preds)))


def _verify_ret(function: Function, ret: insts.RetInst,
                errors: List[str], where: str) -> None:
    expected = function.return_type
    value = ret.return_value
    if expected.is_void:
        if value is not None:
            errors.append(where + "ret with value in void function")
    elif value is None:
        errors.append(where + "ret void in non-void function")
    elif value.type is not expected:
        errors.append(where + "ret type {0}, function returns {1}"
                      .format(value.type, expected))


def _verify_use_chains(inst: insts.Instruction, errors: List[str],
                       where: str) -> None:
    for index, operand in enumerate(inst.operands):
        for use in operand.uses:
            if use.user is inst and use.index == index:
                break
        else:
            errors.append(
                where + "operand {0} of '{1}' missing from use list"
                .format(index, format_instruction(inst)))


def _verify_ssa_uses(function: Function, inst: insts.Instruction,
                     domtree: DominatorTree, reachable: Set[int],
                     errors: List[str], prefix: str) -> None:
    for index, operand in enumerate(inst.operands):
        if isinstance(operand, (Constant, GlobalValue, BasicBlock)):
            continue
        if isinstance(operand, Argument):
            if operand.function is not function:
                errors.append(
                    prefix + "use of argument %{0} from another function"
                    .format(operand.name))
            continue
        if isinstance(operand, insts.Instruction):
            def_block = operand.parent
            if def_block is None or def_block.parent is not function:
                errors.append(
                    prefix + "use of instruction from another function "
                    "in '{0}'".format(format_instruction(inst)))
                continue
            if id(def_block) not in reachable:
                # Uses of unreachable definitions are themselves only
                # legal from unreachable code, which we skipped.
                errors.append(
                    prefix + "reachable use of unreachable definition "
                    "%{0}".format(operand.name))
                continue
            if operand.type.is_vector and def_block is not inst.parent:
                # Vector registers are block-local by construction: they
                # cannot cross phis, and keeping them out of cross-block
                # liveness means no engine (OSR snapshots, V-ABI shadow
                # state, tier-3 register allocation) ever has to spill
                # one.
                errors.append(
                    prefix + "vector value %{0} used outside its "
                    "defining block in '{1}'".format(
                        operand.name, format_instruction(inst)))
            if not domtree.instruction_dominates(operand, inst, index):
                errors.append(
                    prefix + "SSA violation: %{0} does not dominate its "
                    "use in '{1}'".format(operand.name,
                                          format_instruction(inst)))
        else:
            errors.append(
                prefix + "unexpected operand kind {0!r}".format(operand))
