"""Intrinsic functions — operations implemented by the translator.

Section 3.5: "LLVA uses a small set of intrinsic functions to support
operations like manipulating page tables and other kernel operations.
These intrinsics are implemented by the translator for a particular
target.  Intrinsics can be defined to be valid only if the privileged bit
is set to true, otherwise causing a kernel trap."

Section 3.4 adds the self-modifying-code intrinsics, and Section 4.1 the
special storage-API registration intrinsic that bootstraps the
OS-independent linkage between the translator and the operating system.

All intrinsic names live in the ``llva.`` namespace.  They are declared
like ordinary external functions and called with the ordinary ``call``
instruction; the execution engines and code generators dispatch on the
name.  A generic ``sbyte*`` stands in for "untyped pointer" throughout,
as in the paper's ``void*`` trap-handler argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.ir import types
from repro.ir.module import Function, Module

#: Generic byte pointer — the V-ISA spelling of ``void*``.
BYTE_PTR = types.pointer_to(types.SBYTE)


@dataclass(frozen=True)
class IntrinsicInfo:
    """Static description of one intrinsic."""

    name: str
    function_type: types.FunctionType
    privileged: bool
    description: str


def _info(name: str, return_type: types.Type,
          params: Tuple[types.Type, ...], privileged: bool,
          description: str) -> IntrinsicInfo:
    return IntrinsicInfo(
        name=name,
        function_type=types.function_of(return_type, params),
        privileged=privileged,
        description=description,
    )


#: The intrinsic registry, keyed by name.
INTRINSICS: Dict[str, IntrinsicInfo] = {
    info.name: info
    for info in (
        # -- traps and exceptions (Section 3.5, 3.3) --
        _info("llva.trap.register", types.VOID, (types.UINT, BYTE_PTR),
              privileged=True,
              description="Register the entry point of the LLVA trap "
                          "handler for a trap number."),
        _info("llva.trap.raise", types.VOID, (types.UINT, BYTE_PTR),
              privileged=False,
              description="Deliver a software trap to the registered "
                          "handler."),
        _info("llva.exceptions.set", types.VOID, (types.BOOL,),
              privileged=False,
              description="Dynamically enable/disable exception delivery "
                          "for the current execution context (used inside "
                          "trap handlers)."),
        _info("llva.priv.enabled", types.BOOL, (),
              privileged=False,
              description="Query the processor privileged bit."),
        _info("llva.priv.set", types.VOID, (types.BOOL,),
              privileged=True,
              description="Set the processor privileged bit."),
        # -- registers and stack walking (Section 3.5) --
        _info("llva.register.read", types.ULONG, (types.UINT,),
              privileged=False,
              description="Read a virtual register of the interrupted "
                          "context via the standard register numbering."),
        _info("llva.stack.depth", types.UINT, (),
              privileged=False,
              description="Number of LLVA frames on the current stack."),
        _info("llva.stack.caller", BYTE_PTR, (types.UINT,),
              privileged=False,
              description="I-ISA-independent stack walking: the function "
                          "address active N frames up."),
        # -- kernel / memory management (Section 3.5) --
        _info("llva.pagetable.map", types.VOID,
              (types.ULONG, types.ULONG, types.UINT),
              privileged=True,
              description="Map a virtual page to a physical frame with "
                          "protection bits."),
        _info("llva.pagetable.unmap", types.VOID, (types.ULONG,),
              privileged=True,
              description="Remove a virtual page mapping."),
        _info("llva.io.read", types.ULONG, (types.UINT,),
              privileged=True,
              description="Low-level device input channel read."),
        _info("llva.io.write", types.VOID, (types.UINT, types.ULONG),
              privileged=True,
              description="Low-level device output channel write."),
        # -- self-modifying code (Section 3.4) --
        _info("llva.smc.replace", types.VOID, (BYTE_PTR, BYTE_PTR),
              privileged=False,
              description="Replace a function's virtual instructions with "
                          "a donor's; affects only future invocations."),
        _info("llva.sec.register", types.VOID, (BYTE_PTR,),
              privileged=False,
              description="Register newly generated code "
                          "(self-extending code) with the translator."),
        # -- storage API bootstrap (Section 4.1) --
        _info("llva.storage.register", types.VOID, (BYTE_PTR,),
              privileged=True,
              description="Register the OS storage-API lookup routine "
                          "with the translator at OS startup."),
    )
}


def is_intrinsic_name(name: str) -> bool:
    return name.startswith("llva.")


def intrinsic_info(name: str) -> IntrinsicInfo:
    """Look up an intrinsic, raising ``KeyError`` for unknown names."""
    return INTRINSICS[name]


def declare_intrinsic(module: Module, name: str) -> Function:
    """Get-or-create the declaration of intrinsic *name* in *module*."""
    info = intrinsic_info(name)
    return module.get_or_declare_function(name, info.function_type)
