"""``repro.observe`` — unified tracing + metrics + flight recording
for the whole pipeline.

Every layer of the toolchain (MiniC front-end, pass manager, JIT,
LLEE, interpreter, machine simulator, trace cache) reports through this
module instead of keeping bespoke counters.  The design constraint is
**zero overhead when disabled** — which is the default:

* :func:`span` returns a shared no-op context manager;
* :func:`counter` / :func:`gauge` / :func:`histogram` check one module
  flag and return immediately;
* :func:`flight` returns ``None`` unless a flight recorder was
  requested; emit sites hoist it into a local (or onto interpreter
  state) and skip entirely when it is ``None``;
* hot loops (per-instruction) must hoist :func:`enabled` into a local
  before the loop and skip collection entirely when it is False.

Enable it for a run with :func:`configure` (or the CLI's ``--trace`` /
``--metrics`` / ``--stats`` / ``--flight-record`` flags, or ``repro
stats`` / ``repro profile``), read results from :func:`registry` /
:func:`tracer` / :func:`flight`, and reset with :func:`disable`.
:func:`capture` wraps that lifecycle for scoped use::

    from repro import observe

    with observe.capture(flight=True) as obs:
        run_pipeline()
    obs.registry.value("llee.cache.miss")
    obs.tracer.write_chrome("trace.json")
    obs.flight.events("tier2.")

Naming conventions are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.observe.flight import (DEFAULT_CAPACITY, EVENT_SCHEMA,
                                  FlightRecorder, validate_event)
from repro.observe.metrics import Histogram, MetricsRegistry
from repro.observe.profiler import StepProfiler
from repro.observe.tracing import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "EVENT_SCHEMA", "FlightRecorder", "Histogram", "MetricsRegistry",
    "SpanRecord", "StepProfiler", "Tracer",
    "capture", "configure", "counter", "disable", "enabled", "flight",
    "gauge", "histogram", "registry", "span", "tracer",
    "validate_event",
]

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()
_flight: Optional[FlightRecorder] = None


def enabled() -> bool:
    """Is observability on?  Hot loops hoist this into a local."""
    return _enabled


def registry() -> MetricsRegistry:
    """The active registry (meaningful once enabled)."""
    return _registry


def tracer() -> Tracer:
    """The active tracer (meaningful once enabled)."""
    return _tracer


def flight() -> Optional[FlightRecorder]:
    """The active flight recorder, or ``None`` when off.  Emit sites
    hoist this into a local and guard with ``if fl is not None``."""
    return _flight


def configure(reset: bool = True, flight: bool = False,
              flight_capacity: int = DEFAULT_CAPACITY) -> None:
    """Turn observability on, optionally clearing previous data and
    attaching a flight recorder."""
    global _enabled, _flight
    _enabled = True
    if reset:
        _registry.reset()
        _tracer.reset()
        _flight = None
    if flight and _flight is None:
        _flight = FlightRecorder(capacity=flight_capacity)


def disable(reset: bool = True) -> None:
    global _enabled, _flight
    _enabled = False
    if reset:
        _registry.reset()
        _tracer.reset()
        _flight = None


@dataclass
class Capture:
    """Handle to the data collected inside one :func:`capture` block."""

    registry: MetricsRegistry
    tracer: Tracer
    flight: Optional[FlightRecorder] = None


@contextmanager
def capture(flight: bool = False,
            flight_capacity: int = DEFAULT_CAPACITY):
    """Enable observability for a ``with`` block and hand back the
    registry/tracer (plus a flight recorder when ``flight=True``);
    restores the previous on/off state afterwards (data survives the
    block — it belongs to the returned handle)."""
    global _enabled, _registry, _tracer, _flight
    previous = (_enabled, _registry, _tracer, _flight)
    _registry = MetricsRegistry()
    _tracer = Tracer()
    _flight = (FlightRecorder(capacity=flight_capacity)
               if flight else None)
    _enabled = True
    handle = Capture(_registry, _tracer, _flight)
    try:
        yield handle
    finally:
        _enabled, _registry, _tracer, _flight = previous


# -- instrumentation points (cheap when disabled) ---------------------------


def span(name: str, /, **attrs):
    """A timed span; nest freely.  No-op singleton when disabled."""
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def counter(name: str, amount: float = 1, **labels) -> None:
    if _enabled:
        _registry.inc(name, amount, **labels)


def gauge(name: str, value: float, **labels) -> None:
    if _enabled:
        _registry.set_gauge(name, value, **labels)


def histogram(name: str, value: float, **labels) -> None:
    if _enabled:
        _registry.observe(name, value, **labels)
