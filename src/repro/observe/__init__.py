"""``repro.observe`` — unified tracing + metrics for the whole pipeline.

Every layer of the toolchain (MiniC front-end, pass manager, JIT,
LLEE, interpreter, machine simulator, trace cache) reports through this
module instead of keeping bespoke counters.  The design constraint is
**zero overhead when disabled** — which is the default:

* :func:`span` returns a shared no-op context manager;
* :func:`counter` / :func:`gauge` / :func:`histogram` check one module
  flag and return immediately;
* hot loops (per-instruction) must hoist :func:`enabled` into a local
  before the loop and skip collection entirely when it is False.

Enable it for a run with :func:`configure` (or the CLI's ``--trace`` /
``--metrics`` / ``--stats`` flags, or ``repro stats``), read results
from :func:`registry` / :func:`tracer`, and reset with
:func:`disable`.  :func:`capture` wraps that lifecycle for scoped use::

    from repro import observe

    with observe.capture() as obs:
        run_pipeline()
    obs.registry.value("llee.cache.miss")
    obs.tracer.write_chrome("trace.json")

Naming conventions are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.observe.metrics import Histogram, MetricsRegistry
from repro.observe.tracing import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "Histogram", "MetricsRegistry", "SpanRecord", "Tracer",
    "capture", "configure", "counter", "disable", "enabled", "gauge",
    "histogram", "registry", "span", "tracer",
]

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()


def enabled() -> bool:
    """Is observability on?  Hot loops hoist this into a local."""
    return _enabled


def registry() -> MetricsRegistry:
    """The active registry (meaningful once enabled)."""
    return _registry


def tracer() -> Tracer:
    """The active tracer (meaningful once enabled)."""
    return _tracer


def configure(reset: bool = True) -> None:
    """Turn observability on, optionally clearing previous data."""
    global _enabled
    _enabled = True
    if reset:
        _registry.reset()
        _tracer.reset()


def disable(reset: bool = True) -> None:
    global _enabled
    _enabled = False
    if reset:
        _registry.reset()
        _tracer.reset()


@dataclass
class Capture:
    """Handle to the data collected inside one :func:`capture` block."""

    registry: MetricsRegistry
    tracer: Tracer


@contextmanager
def capture():
    """Enable observability for a ``with`` block and hand back the
    registry/tracer; restores the previous on/off state afterwards
    (data survives the block — it belongs to the returned handle)."""
    global _enabled, _registry, _tracer
    previous = (_enabled, _registry, _tracer)
    _registry = MetricsRegistry()
    _tracer = Tracer()
    _enabled = True
    handle = Capture(_registry, _tracer)
    try:
        yield handle
    finally:
        _enabled, _registry, _tracer = previous


# -- instrumentation points (cheap when disabled) ---------------------------


def span(name: str, /, **attrs):
    """A timed span; nest freely.  No-op singleton when disabled."""
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def counter(name: str, amount: float = 1, **labels) -> None:
    if _enabled:
        _registry.inc(name, amount, **labels)


def gauge(name: str, value: float, **labels) -> None:
    if _enabled:
        _registry.set_gauge(name, value, **labels)


def histogram(name: str, value: float, **labels) -> None:
    if _enabled:
        _registry.observe(name, value, **labels)
