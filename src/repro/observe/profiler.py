"""Step-attribution profiler for the tiered execution engine.

Attributes executed V-ISA steps and wall time to ``(function, tier)``
pairs, where tier is one of:

* ``tier1`` — the closure-threaded (or reference) interpreter;
* ``tier2`` — tier-2 block-dispatch / profiling units;
* ``superblock`` — trace-compiled straight-line arms;
* ``osr`` — frames that entered tier-2 mid-run via on-stack
  replacement;
* ``tier3`` — hosted native units (machine code run by the hosted
  executor; a deopt swaps the frame back to ``tier1`` in place).

The scheme is frame-boundary accounting: the engines call
:meth:`StepProfiler.push` / :meth:`pop` / :meth:`replace` at every
frame transition (call, return, OSR swap, unwind), passing the
architectural step counter.  The window of steps since the previous
transition is charged to whatever context sat on top of the stack.
This is exact, not sampled: tier-2 generated code syncs ``st.steps``
before every yield and return, and every frame transition happens at
one of those synced points — so the per-tier totals reconcile exactly
with the engine's own ``tier1_steps`` / ``tier2_steps`` report fields.

With ``record_stack=True`` the same hooks also build a
speedscope-compatible "evented" profile (open/close frame events in
wall-clock seconds), so a hosted run can be flame-graphed at
https://www.speedscope.app — see :meth:`speedscope_document`.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

#: Tier labels, in promotion order.
TIERS: Tuple[str, ...] = ("tier1", "tier2", "superblock", "osr",
                          "tier3")

#: Tiers whose steps the engine books under ``tier2_steps``.
TIER2_TIERS = frozenset(("tier2", "superblock", "osr"))

#: Ceiling on recorded speedscope open/close events; past it the
#: profiler keeps aggregating but stops growing the event log
#: (balanced: a close is only emitted for a recorded open).
DEFAULT_MAX_STACK_EVENTS = 200_000

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

RowKey = Tuple[str, str]          # (function, tier)
Row = List[float]                 # [steps, seconds, calls]


class StepProfiler:
    """Aggregates steps/time per (function, tier); optionally records
    a frame-stack event log for speedscope export."""

    __slots__ = ("rows", "_stack", "_mark_steps", "_mark_time",
                 "_clock", "record_stack", "start_time", "end_time",
                 "max_stack_events", "_frame_index", "_frame_names",
                 "_stack_events", "_event_recorded",
                 "background_compiles", "background_compile_seconds",
                 "background_swap_wait_seconds", "tier3_backends")

    def __init__(self, record_stack: bool = False,
                 max_stack_events: int = DEFAULT_MAX_STACK_EVENTS,
                 clock=time.perf_counter):
        self.rows: Dict[RowKey, Row] = {}
        self._stack: List[RowKey] = []
        self._clock = clock
        self._mark_steps = 0
        self._mark_time = clock()
        self.start_time = self._mark_time
        self.end_time: Optional[float] = None
        self.record_stack = record_stack
        self.max_stack_events = max_stack_events
        self._frame_index: Dict[RowKey, int] = {}
        self._frame_names: List[str] = []
        self._stack_events: List[Tuple[str, int, float]] = []
        self._event_recorded: List[Optional[int]] = []
        # Off-critical-path work (async tier-2 compilation) reported
        # via note_background_compiles: it overlaps the frame windows
        # above, so it is tracked separately, never added to rows.
        self.background_compiles = 0
        self.background_compile_seconds = 0.0
        self.background_swap_wait_seconds = 0.0
        # Tier-3 frames all attribute under the one "tier3" label; the
        # execution backend (block-compiled "threaded" vs the
        # one-instruction "step" oracle) is a per-frame annotation the
        # engine reports here instead, so profiles can still say which
        # backend the native time ran under.
        self.tier3_backends: Dict[str, int] = {}

    # -- frame-transition hooks (the hot path) -------------------------------

    def _account(self, steps: int) -> float:
        """Charge the window since the last transition to the top
        context, then advance the marks."""
        now = self._clock()
        if self._stack:
            delta = steps - self._mark_steps
            elapsed = now - self._mark_time
            row = self.rows[self._stack[-1]]
            row[0] += delta
            row[1] += elapsed
        self._mark_steps = steps
        self._mark_time = now
        return now

    def push(self, steps: int, function: str, tier: str) -> None:
        """A frame was pushed; subsequent steps belong to it."""
        now = self._account(steps)
        key = (function, tier)
        row = self.rows.get(key)
        if row is None:
            row = self.rows[key] = [0, 0.0, 0]
        row[2] += 1
        self._stack.append(key)
        if self.record_stack:
            self._open_frame(key, now)

    def pop(self, steps: int) -> None:
        """The top frame returned (or was unwound)."""
        now = self._account(steps)
        if self._stack:
            self._stack.pop()
            if self.record_stack:
                self._close_frame(now)

    def replace(self, steps: int, function: str, tier: str) -> None:
        """The top frame changed tier in place (OSR entry/upgrade)."""
        now = self._account(steps)
        if self._stack:
            self._stack.pop()
            if self.record_stack:
                self._close_frame(now)
        key = (function, tier)
        row = self.rows.get(key)
        if row is None:
            row = self.rows[key] = [0, 0.0, 0]
        row[2] += 1
        self._stack.append(key)
        if self.record_stack:
            self._open_frame(key, now)

    def flush(self, steps: int) -> None:
        """End of run: charge the residual window and close every
        still-open frame (exit intrinsics and traps can strand the
        whole stack)."""
        now = self._account(steps)
        while self._stack:
            self._stack.pop()
            if self.record_stack:
                self._close_frame(now)
        self.end_time = now

    # -- speedscope event log ------------------------------------------------

    def _open_frame(self, key: RowKey, now: float) -> None:
        if len(self._stack_events) >= self.max_stack_events:
            # Past the cap: remember the open was skipped so the
            # matching close is skipped too (keeps O/C balanced).
            self._event_recorded.append(None)
            return
        index = self._frame_index.get(key)
        if index is None:
            index = self._frame_index[key] = len(self._frame_names)
            self._frame_names.append("%s [%s]" % key)
        self._event_recorded.append(index)
        self._stack_events.append(("O", index, now - self.start_time))

    def _close_frame(self, now: float) -> None:
        if not self._event_recorded:
            return
        index = self._event_recorded.pop()
        if index is not None:
            self._stack_events.append(
                ("C", index, now - self.start_time))

    # -- background (async) compile accounting -------------------------------

    def note_background_compiles(self, count: int, seconds: float,
                                 swap_wait_seconds: float = 0.0) -> None:
        """Record compile work done off the critical path by the
        background compile service.  Frame-boundary accounting cannot
        see it (the engine thread keeps running tier 1 while a worker
        compiles), so it is kept beside the rows: ``seconds`` is
        builder wall time, ``swap_wait_seconds`` the total enqueue-to-
        swap-in latency of the installed units."""
        self.background_compiles += int(count)
        self.background_compile_seconds += seconds
        self.background_swap_wait_seconds += swap_wait_seconds

    def note_tier3_backend(self, backend: str,
                           count: int = 1) -> None:
        """Record that *count* tier-3 frames ran under *backend*
        ("threaded" or "step").  Kept beside the rows — the tier label
        stays "tier3" so per-tier totals are backend-agnostic."""
        self.tier3_backends[backend] = \
            self.tier3_backends.get(backend, 0) + int(count)

    # -- reads ---------------------------------------------------------------

    def total_steps(self) -> int:
        return int(sum(row[0] for row in self.rows.values()))

    def tier_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-tier rollup: steps, seconds, calls."""
        out: Dict[str, Dict[str, float]] = {}
        for (_, tier), (steps, seconds, calls) in self.rows.items():
            bucket = out.setdefault(
                tier, {"steps": 0, "seconds": 0.0, "calls": 0})
            bucket["steps"] += int(steps)
            bucket["seconds"] += seconds
            bucket["calls"] += int(calls)
        return out

    def tier1_steps(self) -> int:
        return int(sum(row[0] for (_, tier), row in self.rows.items()
                       if tier not in TIER2_TIERS
                       and tier != "tier3"))

    def tier2_steps(self) -> int:
        """Steps the engine books as ``tier2_steps`` (tier-2 dispatch
        + superblock + OSR-entered frames)."""
        return int(sum(row[0] for (_, tier), row in self.rows.items()
                       if tier in TIER2_TIERS))

    def tier3_steps(self) -> int:
        """Steps executed inside hosted native (tier-3) frames."""
        return int(sum(row[0] for (_, tier), row in self.rows.items()
                       if tier == "tier3"))

    def function_rows(self) -> List[Dict[str, object]]:
        """Rows sorted hottest-first, JSON-ready."""
        rows = [{"function": function, "tier": tier,
                 "calls": int(calls), "steps": int(steps),
                 "seconds": seconds}
                for (function, tier), (steps, seconds, calls)
                in self.rows.items()]
        rows.sort(key=lambda row: (-row["steps"], row["function"],
                                   row["tier"]))
        return rows

    def to_dict(self) -> Dict[str, object]:
        duration = ((self.end_time if self.end_time is not None
                     else self._mark_time) - self.start_time)
        document = {
            "functions": self.function_rows(),
            "tiers": self.tier_totals(),
            "tier1_steps": self.tier1_steps(),
            "tier2_steps": self.tier2_steps(),
            "tier3_steps": self.tier3_steps(),
            "total_steps": self.total_steps(),
            "duration_seconds": duration,
        }
        if self.background_compiles:
            document["background_compile"] = {
                "compiles": self.background_compiles,
                "seconds": self.background_compile_seconds,
                "swap_wait_seconds": self.background_swap_wait_seconds,
            }
        if self.tier3_backends:
            document["tier3_backends"] = dict(self.tier3_backends)
        return document

    # -- speedscope export ---------------------------------------------------

    def speedscope_document(self, name: str = "repro profile"
                            ) -> Dict[str, object]:
        """The speedscope "evented" file format, built from the
        recorded open/close frame events."""
        end = ((self.end_time if self.end_time is not None
                else self._mark_time) - self.start_time)
        events = [{"type": type_, "frame": index, "at": at}
                  for type_, index, at in self._stack_events]
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "shared": {
                "frames": [{"name": frame_name}
                           for frame_name in self._frame_names],
            },
            "profiles": [{
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": max(end, events[-1]["at"] if events
                                else 0.0),
                "events": events,
            }],
        }

    def write_speedscope(self, path: str,
                         name: str = "repro profile") -> None:
        with open(path, "w") as handle:
            json.dump(self.speedscope_document(name), handle, indent=1)
            handle.write("\n")
