"""Flight recorder: a bounded ring buffer of timestamped, structured
events covering the full JIT lifecycle.

Where the metrics registry answers "how many deopts happened?", the
flight recorder answers "*when* did each deopt happen, in what order
relative to the compiles and OSR entries, and *why*".  It is the
black-box recorder for the tiered engine: tier-2 promotion decisions,
compile begin/end with durations, superblock formation, OSR entries
and upgrades, deopts and side exits with reasons, trap delivery,
SMC/cache invalidation, and LLEE storage traffic all land here as
small dicts in a ``collections.deque(maxlen=capacity)``.

Contract with the hot paths (mirrors the metrics layer):

* **zero overhead when off** — emit sites guard on a hoisted local
  (``fl = observe.flight()`` / ``st.flight``) and skip entirely when
  it is ``None``;
* recording an event is one dict build + one deque append — no I/O,
  no formatting;
* on a sanitizer fault or an unhandled trap the recorder dumps its
  tail to stderr once (:meth:`FlightRecorder.autodump`), so the
  evidence trail survives even when nobody asked for an export.

Export is JSONL (one event per line, preceded by a header line), the
same grep-friendly shape as the tracer's span log.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set

#: Bumped when the event vocabulary or header shape changes.
#: v2: asynchronous compilation (``tier2.compile.enqueue`` carrying
#: the service queue depth, ``tier2.swap_in`` carrying the enqueue-
#: to-swap latency).
#: v3: tier-3 hosted native execution (``tier3.promote`` /
#: ``tier3.compile.*`` / ``tier3.pin`` / ``tier3.deopt``, and
#: ``smc.invalidate`` events with ``layer="tier3"``).
#: v4: tier-3 execution backends (``tier3.backend`` recording which
#: backend — block-compiled ``threaded`` or one-instruction ``step`` —
#: each hosted unit runs under, and whether it degraded).
#: v5: loop autovectorization (``autovec.loop`` recording, per
#: candidate loop, whether it was vectorized — with the lane count —
#: or rejected, with the reason taxonomy of transforms/autovec.py).
FLIGHT_FORMAT_VERSION = 5

#: Default ring capacity — big enough to hold the full JIT lifecycle
#: of a benchsuite run (a few hundred events) with room for chatty
#: side-exit traffic, small enough that an always-on recorder stays
#: cheap (< 1 MB of dicts).
DEFAULT_CAPACITY = 4096

#: Event vocabulary: type -> required field names (beyond the
#: envelope's ``seq``/``ts``/``type``).  ``validate_event`` checks
#: incoming events against this; the parity tests check every event
#: an engine run produces.
EVENT_SCHEMA: Dict[str, Set[str]] = {
    # run lifecycle
    "run.begin": {"engine", "entry"},
    "run.end": {"engine", "steps"},
    # tier-2 promotion + compilation
    "tier2.promote": {"function", "reason"},
    "tier2.compile.begin": {"function"},
    "tier2.compile.end": {"function", "kind", "seconds", "warm"},
    # asynchronous compilation (the background compile service)
    "tier2.compile.enqueue": {"function", "queue_depth"},
    "tier2.swap_in": {"function", "wait_seconds", "kind"},
    "tier2.superblock": {"function", "traces"},
    "tier2.pin": {"function", "reason"},
    "tier2.deopt": {"function", "reason"},
    "tier2.side_exit": {"function", "src", "dst"},
    # on-stack replacement
    "tier2.osr.enter": {"function", "block"},
    "tier2.osr.upgrade": {"function", "kind"},
    # tier-3 hosted native execution
    "tier3.promote": {"function", "step_credit"},
    "tier3.compile.begin": {"function"},
    "tier3.compile.end": {"function", "kind", "seconds", "warm"},
    "tier3.pin": {"function", "reason"},
    "tier3.deopt": {"function", "site", "trap"},
    "tier3.backend": {"function", "backend", "degraded"},
    # trap delivery
    "trap.deliver": {"engine", "trap", "handler"},
    "trap.unhandled": {"engine", "trap"},
    # self-modifying code / cache invalidation
    "smc.invalidate": {"layer", "reason"},
    # LLEE caches + storage
    "llee.cache": {"cache", "event"},
    "llee.storage": {"op", "cache", "name", "hit"},
    # native (simulated) translation
    "jit.translate.begin": {"function", "target"},
    "jit.translate.end": {"function", "target", "seconds"},
    # loop autovectorization (--vectorize)
    "autovec.loop": {"function", "header", "vectorized"},
    # sanitizer
    "san.fault": {"kind", "detail"},
}


def validate_event(event: Dict[str, object]) -> List[str]:
    """Return a list of problems with one recorded event (empty if it
    is well-formed): known type, envelope present, required fields
    present, JSON-serializable payload."""
    problems: List[str] = []
    for field in ("seq", "ts", "type"):
        if field not in event:
            problems.append("missing envelope field %r" % field)
    type_ = event.get("type")
    if type_ not in EVENT_SCHEMA:
        problems.append("unknown event type %r" % (type_,))
    else:
        missing = EVENT_SCHEMA[type_] - set(event)
        if missing:
            problems.append("type %s missing fields %s"
                            % (type_, sorted(missing)))
    try:
        json.dumps(event)
    except (TypeError, ValueError) as exc:
        problems.append("not JSON-serializable: %s" % exc)
    return problems


class FlightRecorder:
    """Bounded ring buffer of structured events.

    ``record`` is the only hot-path method; everything else is
    post-run analysis/export.  Timestamps are seconds relative to the
    recorder's creation (monotonic), so JSONL diffs are stable across
    runs.
    """

    __slots__ = ("capacity", "_events", "recorded", "epoch", "_clock",
                 "autodump_enabled", "_dumped")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 autodump: bool = True, clock=time.perf_counter):
        self.capacity = int(capacity)
        self._events: Deque[Dict[str, object]] = \
            deque(maxlen=self.capacity)
        self.recorded = 0
        self._clock = clock
        self.epoch = clock()
        self.autodump_enabled = autodump
        self._dumped = False

    # -- hot path ------------------------------------------------------------

    def record(self, type_: str, **fields) -> Dict[str, object]:
        """Append one event.  Oldest events fall off when full."""
        self.recorded += 1
        event: Dict[str, object] = {
            "seq": self.recorded,
            "ts": round(self._clock() - self.epoch, 9),
            "type": type_,
        }
        if fields:
            event.update(fields)
        self._events.append(event)
        return event

    # -- reads ---------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.recorded - len(self._events)

    def events(self, type_: Optional[str] = None
               ) -> List[Dict[str, object]]:
        """Events still in the ring, oldest first; optionally
        filtered by exact type or ``"prefix."``-style prefix."""
        if type_ is None:
            return list(self._events)
        if type_.endswith("."):
            return [e for e in self._events
                    if str(e["type"]).startswith(type_)]
        return [e for e in self._events if e["type"] == type_]

    def counts(self) -> Dict[str, int]:
        """Event count per type (ring contents only)."""
        out: Dict[str, int] = {}
        for event in self._events:
            key = str(event["type"])
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))

    def validate(self) -> List[str]:
        """Problems across every buffered event (empty == clean)."""
        problems: List[str] = []
        for event in self._events:
            for problem in validate_event(event):
                problems.append("seq %s: %s" % (event.get("seq"),
                                                problem))
        return problems

    def reset(self) -> None:
        self._events.clear()
        self.recorded = 0
        self.epoch = self._clock()
        self._dumped = False

    # -- export --------------------------------------------------------------

    def header(self) -> Dict[str, object]:
        return {
            "flight": FLIGHT_FORMAT_VERSION,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
        }

    def to_jsonl_lines(self) -> Iterable[str]:
        yield json.dumps(self.header(), sort_keys=True)
        for event in self._events:
            yield json.dumps(event, sort_keys=True)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line)
                handle.write("\n")

    def dump(self, stream=None, last: int = 40,
             reason: str = "") -> None:
        """Human-readable tail of the ring, for crash forensics."""
        stream = stream if stream is not None else sys.stderr
        events = list(self._events)[-last:]
        title = "flight recorder"
        if reason:
            title += " (%s)" % reason
        stream.write("== %s: last %d of %d events"
                     % (title, len(events), self.recorded))
        if self.dropped:
            stream.write(", %d dropped" % self.dropped)
        stream.write(" ==\n")
        for event in events:
            extra = " ".join(
                "%s=%s" % (k, v) for k, v in event.items()
                if k not in ("seq", "ts", "type"))
            stream.write("  [%6d] %10.6fs %-22s %s\n"
                         % (event["seq"], event["ts"],
                            event["type"], extra))

    def autodump(self, reason: str, stream=None) -> None:
        """One-shot crash dump: fires at most once per recorder so a
        trap storm cannot flood stderr."""
        if not self.autodump_enabled or self._dumped:
            return
        self._dumped = True
        self.dump(stream=stream, reason=reason)
