"""Process-local metrics: counters, gauges, and histograms with labels.

The registry is deliberately tiny and dependency-free: metric identity
is ``(name, sorted label items)``, values are plain Python numbers, and
the export format is a stable JSON document (see :meth:`MetricsRegistry.
snapshot`).  Everything in the toolchain that used to keep bespoke
counters (`JITStats`, `PipelineReport`, simulator cycle counts, LLEE
cache hits) reports through one of these registries, so `repro stats`
and ``--metrics`` can render a run from a single source of truth.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds — exponential, wide enough for
#: both "seconds per pass" (left edge) and "instructions per function"
#: (right edge) style distributions.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 10000.0,
)


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """A fixed-bucket histogram plus exact count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        # Prometheus-style `le` buckets are cumulative: each bucket
        # counts every observation <= its bound, and `+Inf` equals the
        # total count.  Accumulate first, then drop the (still-zero)
        # leading buckets — dropping per-bucket zeros before
        # accumulating (the old behaviour) broke monotonicity.
        buckets: List[Dict[str, object]] = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            cumulative += count
            if cumulative:
                buckets.append({"le": bound, "count": cumulative})
        if self.count:
            buckets.append({"le": "+Inf", "count": self.count})
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Holds every metric for one process (or one captured run)."""

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelItems], float] = {}
        self._gauges: Dict[Tuple[str, LabelItems], float] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    # -- writes --------------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels) -> None:
        key = (name, _label_items(labels))
        self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[(name, _label_items(labels))] = value

    def observe(self, name: str, value: float,
                bounds: Optional[Iterable[float]] = None,
                **labels) -> None:
        key = (name, _label_items(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(bounds or DEFAULT_BUCKETS)
            self._histograms[key] = histogram
        histogram.observe(value)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- reads ---------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current value of a counter or gauge (0 if never written)."""
        key = (name, _label_items(labels))
        if key in self._counters:
            return self._counters[key]
        return self._gauges.get(key, 0)

    def histogram(self, name: str, **labels) -> Optional[Histogram]:
        return self._histograms.get((name, _label_items(labels)))

    def counters(self, prefix: str = ""
                 ) -> List[Tuple[str, LabelItems, float]]:
        """Sorted ``(name, labels, value)`` over counters and gauges."""
        rows = [(name, labels, value)
                for (name, labels), value in list(self._counters.items())
                + list(self._gauges.items())
                if name.startswith(prefix)]
        rows.sort(key=lambda row: (row[0], row[1]))
        return rows

    def histograms(self, prefix: str = ""
                   ) -> List[Tuple[str, LabelItems, Histogram]]:
        rows = [(name, labels, histogram)
                for (name, labels), histogram
                in self._histograms.items()
                if name.startswith(prefix)]
        rows.sort(key=lambda row: (row[0], row[1]))
        return rows

    def label_values(self, name: str, label: str
                     ) -> List[Tuple[str, float]]:
        """All ``(label value, counter value)`` pairs for one metric —
        e.g. per-pass timings keyed by the ``pass`` label."""
        out = []
        for metric_name, labels, value in self.counters():
            if metric_name != name:
                continue
            for key, label_value in labels:
                if key == label:
                    out.append((label_value, value))
        return out

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A stable, JSON-ready view of every metric."""
        def entry(name: str, labels: LabelItems, value: object):
            record: Dict[str, object] = {"name": name}
            if labels:
                record["labels"] = dict(labels)
            record["value"] = value
            return record

        return {
            "counters": [entry(n, l, v) for n, l, v in self.counters()],
            "histograms": [entry(n, l, h.to_dict())
                           for n, l, h in self.histograms()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
