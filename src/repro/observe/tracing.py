"""Nested timed spans with attributes, exportable two ways:

* **JSONL** — one JSON object per finished span, in completion order;
  easy to grep and to post-process.
* **Chrome ``trace_event`` JSON** — complete ("X") events loadable in
  chrome://tracing or https://ui.perfetto.dev, which renders the
  compile -> translate -> execute pipeline as a flame graph.

Span nesting is tracked with an explicit stack per tracer; the
toolchain is single-threaded, so one stack is enough (the exporter
still stamps pid/tid for the Chrome format).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) \
            - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _SpanContext:
    """The ``with tracer.span(...)`` handle; ``set()`` adds attributes
    mid-span (e.g. a pass recording whether it changed anything)."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self._record = record

    def set(self, **attrs) -> "_SpanContext":
        self._record.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._record)


class NullSpan:
    """The disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def set(self, **attrs) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = NullSpan()


class Tracer:
    """Records spans for one run."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._next_id = 1
        self._stack: List[SpanRecord] = []
        self.records: List[SpanRecord] = []

    def span(self, name: str, /, **attrs) -> _SpanContext:
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=self._clock(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(record)
        return _SpanContext(self, record)

    def _finish(self, record: SpanRecord) -> None:
        record.end = self._clock()
        # Pop through abandoned children so an exception mid-span
        # cannot wedge the stack.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
        self.records.append(record)

    def reset(self) -> None:
        self._stack.clear()
        self.records.clear()
        self._next_id = 1

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """The ``trace_event`` "JSON Object Format" (complete events)."""
        pid = os.getpid()
        events = []
        for record in self.records:
            args = {str(k): v for k, v in record.attrs.items()}
            if record.parent_id is not None:
                args["parent_span"] = record.parent_id
            events.append({
                "name": record.name,
                "cat": record.name.split(".")[0],
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": pid,
                "tid": 1,
                "args": args,
            })
        events.sort(key=lambda event: event["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict(),
                                        sort_keys=True))
                handle.write("\n")

    def write(self, path: str) -> None:
        """Pick the format from the suffix: ``.jsonl`` -> JSONL,
        anything else -> Chrome trace JSON."""
        if path.endswith(".jsonl"):
            self.write_jsonl(path)
        else:
            self.write_chrome(path)
