"""Link-time function inlining.

The paper's Section 4.2 makes link-time interprocedural optimization the
flagship benefit of shipping rich virtual object code ("it is the first
time that most or all modules of an application are simultaneously
available").  The inliner is the canonical such transformation: it runs
bottom-up over the call graph and replaces direct calls to small,
non-recursive callees with their bodies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.callgraph import CallGraph
from repro.ir import instructions as insts
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Value
from repro.transforms.cloning import clone_blocks
from repro.transforms.pass_manager import ModulePass

DEFAULT_THRESHOLD = 40


class FunctionInliner(ModulePass):
    """Inline small direct calls, bottom-up over the call graph."""

    name = "inline"

    def __init__(self, threshold: int = DEFAULT_THRESHOLD):
        self.threshold = threshold

    def run_module(self, module: Module) -> bool:
        callgraph = CallGraph(module)
        changed = False
        for function in callgraph.post_order():
            if function.is_declaration:
                continue
            if self._inline_calls_in(function, callgraph):
                changed = True
        return changed

    # -- per caller ----------------------------------------------------------

    def _inline_calls_in(self, caller: Function,
                         callgraph: CallGraph) -> bool:
        changed = False
        # Snapshot: inlining adds blocks/instructions we must not rescan.
        sites = [
            inst for block in list(caller.blocks)
            for inst in list(block.instructions)
            if isinstance(inst, insts.CallInst)
        ]
        for call in sites:
            if call.parent is None:
                continue
            callee = call.callee
            if not isinstance(callee, Function):
                continue
            if not self._should_inline(caller, callee, callgraph):
                continue
            inline_call(call, callee)
            changed = True
        return changed

    def _should_inline(self, caller: Function, callee: Function,
                       callgraph: CallGraph) -> bool:
        if callee.is_declaration or callee.is_intrinsic:
            return False
        if callee is caller:
            return False
        if callee.function_type.vararg:
            return False
        if callee.num_instructions() > self.threshold:
            return False
        if callgraph.is_recursive(callee):
            return False
        # `unwind` needs the dynamic call stack; its frame must survive.
        for inst in callee.instructions():
            if isinstance(inst, insts.UnwindInst):
                return False
        return True


def inline_call(call: insts.CallInst, callee: Function) -> None:
    """Splice *callee*'s body in place of the direct call *call*."""
    caller_block = call.parent
    caller = caller_block.parent
    call_index = caller_block.instructions.index(call)

    # 1. Split the caller block after the call site.
    continuation = caller.add_block(caller_block.name + ".cont")
    tail = caller_block.instructions[call_index + 1:]
    del caller_block.instructions[call_index + 1:]
    for inst in tail:
        inst.parent = continuation
        continuation.instructions.append(inst)
    # Phis downstream referencing caller_block as predecessor now come
    # from the continuation.
    _retarget_phi_preds(continuation, caller_block)

    # 2. Clone the callee body, mapping formals to actuals.
    value_map: Dict[int, Value] = {
        id(formal): actual
        for formal, actual in zip(callee.args, call.args)}
    clones = clone_blocks(callee.blocks, value_map,
                          name_suffix=".i." + callee.name)
    insert_at = caller.blocks.index(caller_block) + 1
    for offset, clone in enumerate(clones):
        clone.parent = caller
        clone.name = caller._unique_block_name(clone.name or "bb")
        caller.blocks.insert(insert_at + offset, clone)

    # 3. Rewrite cloned returns into branches to the continuation.
    returned: List = []
    for clone in clones:
        terminator = clone.terminator
        if isinstance(terminator, insts.RetInst):
            value = terminator.return_value
            terminator.erase()
            clone.append(insts.BranchInst(target=continuation))
            returned.append((value, clone))

    # 4. Replace the call's value with the merged return value.
    if call.produces_value and call.has_uses():
        if not returned:
            # The callee never returns; uses of the call are unreachable.
            from repro.ir.values import const_undef
            call.replace_all_uses_with(const_undef(call.type))
        elif len(returned) == 1:
            call.replace_all_uses_with(returned[0][0])
        else:
            phi = insts.PhiInst(call.type, returned, name=call.name)
            continuation.instructions.insert(0, phi)
            phi.parent = continuation
            call.replace_all_uses_with(phi)

    # 5. Replace the call instruction with a branch into the clone.
    entry_clone = clones[0]
    call.erase()
    caller_block.append(insts.BranchInst(target=entry_clone))


def _retarget_phi_preds(continuation: BasicBlock,
                        old_block: BasicBlock) -> None:
    for successor in set(_terminator_successors(continuation)):
        for phi in successor.phis():
            for index in range(1, phi.num_operands, 2):
                if phi.operand(index) is old_block:
                    phi.set_operand(index, continuation)


def _terminator_successors(block: BasicBlock):
    if block.has_terminator():
        return block.terminator.successors()
    return ()
