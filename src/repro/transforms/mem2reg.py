"""Promote stack slots to SSA registers (``mem2reg``).

Front-ends emit an ``alloca`` per source variable and access it through
loads and stores (exactly like Figure 2's ``%V``); this pass rewrites
every non-escaping scalar slot into pure SSA form using the classic
Cytron et al. algorithm — phi placement at iterated dominance frontiers
followed by a renaming walk over the dominator tree.

This is the pass that makes the paper's claim concrete: the V-ISA's SSA
form is not an analysis bolted on afterwards, it *is* the program
representation, and everything produced here is ordinary LLVA code.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir import instructions as insts
from repro.ir.cfg import DominatorTree, dominance_frontiers
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Value, const_undef
from repro.transforms.pass_manager import FunctionPass


def is_promotable(alloca: insts.AllocaInst) -> bool:
    """A slot is promotable when it is a fixed single scalar whose
    address never escapes: every use is a load or a store *through* it."""
    if alloca.count is not None:
        return False
    if not alloca.allocated_type.is_scalar:
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, insts.LoadInst):
            continue
        if isinstance(user, insts.StoreInst) and user.pointer is alloca \
                and user.value is not alloca:
            continue
        return False
    return True


class PromoteMemoryToRegisters(FunctionPass):
    """The mem2reg pass."""

    name = "mem2reg"

    def run(self, function: Function) -> bool:
        allocas = [
            inst for block in function.blocks
            for inst in block.instructions
            if isinstance(inst, insts.AllocaInst) and is_promotable(inst)
        ]
        if not allocas:
            return False
        domtree = DominatorTree(function)
        frontiers = dominance_frontiers(function, domtree)
        reachable_ids = {id(block) for block in domtree.rpo}

        # Drop loads/stores of promotable slots in unreachable code first;
        # the renaming walk never visits them.
        for alloca in allocas:
            for use in list(alloca.uses):
                user = use.user
                if user.parent is not None \
                        and id(user.parent) not in reachable_ids:
                    user.erase()

        block_phis = self._place_phis(allocas, frontiers, reachable_ids)
        self._rename(function, domtree, allocas, block_phis)
        for alloca in allocas:
            alloca.erase()
        return True

    # -- phi placement ---------------------------------------------------------

    def _place_phis(self, allocas, frontiers, reachable_ids
                    ) -> Dict[int, List[Tuple[int, insts.PhiInst]]]:
        """Iterated dominance frontier of each slot's store blocks.

        Returns block-id -> [(alloca-id, phi)] for the renaming walk.
        """
        block_phis: Dict[int, List[Tuple[int, insts.PhiInst]]] = {}
        for alloca in allocas:
            def_blocks: List[BasicBlock] = []
            for use in alloca.uses:
                user = use.user
                if isinstance(user, insts.StoreInst) \
                        and user.parent is not None:
                    def_blocks.append(user.parent)
            worklist = list(def_blocks)
            placed = set()
            while worklist:
                block = worklist.pop()
                if id(block) not in reachable_ids:
                    continue
                for frontier_block in frontiers[id(block)]:
                    if id(frontier_block) in placed:
                        continue
                    placed.add(id(frontier_block))
                    phi = insts.PhiInst(alloca.allocated_type,
                                        name=alloca.name)
                    frontier_block.instructions.insert(0, phi)
                    phi.parent = frontier_block
                    block_phis.setdefault(id(frontier_block), []).append(
                        (id(alloca), phi))
                    worklist.append(frontier_block)
        return block_phis

    # -- renaming ------------------------------------------------------------------

    def _rename(self, function: Function, domtree: DominatorTree,
                allocas, block_phis) -> None:
        alloca_ids = {id(a): a for a in allocas}
        undef = {id(a): const_undef(a.allocated_type) for a in allocas}
        entry = function.entry_block
        # (block, current value of each slot) over the dominator tree.
        stack: List[Tuple[BasicBlock, Dict[int, Value]]] = [
            (entry, dict(undef))]
        while stack:
            block, current = stack.pop()
            for alloca_id, phi in block_phis.get(id(block), ()):
                current[alloca_id] = phi
            for inst in list(block.instructions):
                if isinstance(inst, insts.LoadInst) \
                        and id(inst.pointer) in alloca_ids:
                    inst.replace_all_uses_with(current[id(inst.pointer)])
                    inst.erase()
                elif isinstance(inst, insts.StoreInst) \
                        and id(inst.pointer) in alloca_ids:
                    current[id(inst.pointer)] = inst.value
                    inst.erase()
            seen_successors = set()
            for successor in block.successors():
                if id(successor) in seen_successors:
                    continue  # one phi entry per CFG predecessor
                seen_successors.add(id(successor))
                for alloca_id, phi in block_phis.get(id(successor), ()):
                    phi.add_incoming(current[alloca_id], block)
            for child in domtree.children(block):
                stack.append((child, dict(current)))
