"""Dead-code elimination and local instruction simplification.

Both are sparse worklist algorithms over the def-use chains — the "simple
or aggressive" optimizations the SSA representation makes cheap
(Section 3.1).
"""

from __future__ import annotations

from typing import List

from repro.ir import instructions as insts
from repro.ir.module import Function
from repro.transforms.constfold import simplify_instruction
from repro.transforms.pass_manager import FunctionPass


def is_trivially_dead(inst: insts.Instruction) -> bool:
    """Value-producing, unused, and free of observable effects.

    An instruction whose exception is architecturally deliverable
    (``may_raise``) is an observable effect under the paper's precise-
    exception rules and must be kept — this is exactly the optimization
    the ``ExceptionsEnabled`` bit trades away when set (Section 3.3).
    """
    if inst.is_terminator:
        return False
    if isinstance(inst, (insts.StoreInst, insts.CallInst)):
        return False
    if inst.has_uses():
        return False
    if inst.may_raise():
        return False
    return True


class DeadCodeElimination(FunctionPass):
    """Deletes trivially dead instructions, cascading through operands."""

    name = "dce"

    def run(self, function: Function) -> bool:
        worklist: List[insts.Instruction] = [
            inst for block in function.blocks
            for inst in block.instructions
        ]
        changed = False
        while worklist:
            inst = worklist.pop()
            if inst.parent is None or not is_trivially_dead(inst):
                continue
            operands = [op for op in inst.operands
                        if isinstance(op, insts.Instruction)]
            inst.erase()
            changed = True
            worklist.extend(operands)
        return changed


class InstSimplify(FunctionPass):
    """Folds constants, applies algebraic identities, and canonicalizes
    gep-of-gep chains into single typed geps (producing exactly the
    Figure 2 form, ``getelementptr %T, long 0, ubyte 1, long 3``),
    iterating with a worklist so simplifications cascade."""

    name = "instsimplify"

    def run(self, function: Function) -> bool:
        worklist: List[insts.Instruction] = [
            inst for block in function.blocks
            for inst in block.instructions
        ]
        changed = False
        while worklist:
            inst = worklist.pop()
            if inst.parent is None:
                continue
            replacement = simplify_instruction(inst)
            if replacement is None and isinstance(
                    inst, insts.GetElementPtrInst):
                replacement = _combine_gep(inst)
            if replacement is None or replacement is inst:
                continue
            users = [use.user for use in inst.uses
                     if isinstance(use.user, insts.Instruction)]
            inst.replace_all_uses_with(replacement)
            if is_trivially_dead(inst):
                inst.erase()
            changed = True
            worklist.extend(users)
            if isinstance(replacement, insts.Instruction):
                worklist.append(replacement)
        return changed


def _combine_gep(outer: insts.GetElementPtrInst):
    """Fold ``gep (gep p, ...), ...`` into one gep.

    Two sound cases:

    * the outer leading index is a constant 0 — it steps over zero whole
      objects, so the chains concatenate directly;
    * the inner trailing index is a constant 0 into an array — the outer
      leading index replaces it (0 + i = i), which is how the canonical
      ``long 0, ubyte 1, long 3`` chain of Figure 2 emerges from the
      front-end's field + decay + index steps.
    """
    from repro.ir.values import ConstantInt, const_int
    from repro.ir import types as _types

    inner = outer.pointer
    if not isinstance(inner, insts.GetElementPtrInst):
        return None
    if inner.parent is None:
        return None
    outer_first = outer.indices[0]
    inner_last = inner.indices[-1]
    if isinstance(outer_first, ConstantInt) and outer_first.value == 0:
        merged = list(inner.indices) + list(outer.indices[1:])
    elif isinstance(inner_last, ConstantInt) and inner_last.value == 0 \
            and inner_last.type is not _types.UBYTE \
            and outer_first.type.is_integer:
        merged = list(inner.indices[:-1]) + [outer_first] \
            + list(outer.indices[1:])
    else:
        return None
    from repro.ir.types import LlvaTypeError
    try:
        combined = insts.GetElementPtrInst(inner.pointer, merged,
                                           outer.name)
    except LlvaTypeError:
        return None
    if combined.type is not outer.type:
        combined.drop_all_references()
        return None
    outer.parent.insert_before(outer, combined)
    return combined
