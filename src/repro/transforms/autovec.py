"""Loop autovectorization onto the V-ISA vector extension.

Recognizes the canonical counted innermost loop the front-end emits —
a header of phis plus ``setlt``/``br`` and a single body/latch block of
contiguous loads, element-wise arithmetic, contiguous stores, and
single-``add`` reductions — and rewrites it to process ``LANES``
iterations per trip through ``vload``/``vadd``/``vmul``/``vstore``/
``vreduce``, keeping the original loop as the scalar epilogue for the
remainder.

Bit-exactness is the contract: every transformation here must preserve
the scalar loop's results to the last bit on every tier.  Three rules
make that work:

* Reductions use ``vreduce`` with the running accumulator as the
  explicit init operand, so the fold order — ``((acc + v0) + v1) + ...``
  — is exactly the order the scalar loop used.  Two chained reduction
  updates in one iteration interleave lanes in scalar order, which no
  pair of vector folds can reproduce, so chains are rejected.
* The vector body emits its memory operations in the scalar body's
  program order, and every pair of accesses is either provably disjoint
  (alias analysis), or the *same* pointer value (same lane, same
  address, order preserved).  Anything else is rejected as a potential
  cross-lane dependence.
* Integer lanes wrap silently, exactly like the scalar ops they
  replace; the ``i + LANES <= n`` guard is computed in the induction
  variable's own (signed) type, so an overflowing bound falls back to
  the scalar epilogue instead of misbehaving.

Rejection reasons (surfaced as ``vec.loops_rejected{reason=...}`` and in
``autovec.loop`` flight events; see docs/PERFORMANCE.md):

=================  ======================================================
``not-counted``    no recognizable induction variable / trip count
``multi-block``    body is not a single block (calls, ifs, inner loops)
``no-preheader``   header lacks a unique out-of-loop predecessor
``non-unit-stride`` induction steps by something other than +1 / ``lt``
``unsigned-iv``    unsigned induction (guard arithmetic could wrap up)
``header-code``    header computes more than phis + exit test
``reduction``      accumulator phi not a single in-order ``add`` update
``iv-use``         induction value consumed as data, not as an address
``non-contiguous`` load/store not stride-1 in the induction variable
``unsupported-op`` body op with no vector form (div, call, compare, ...)
``may-alias``      a store might overlap another access's stream
=================  ======================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro import observe
from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.analysis.loops import Loop, LoopInfo, TripCount
from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Value, const_int
from repro.transforms.pass_manager import FunctionPass

#: Lanes per vector trip.  Four doubles is the paper-era SIMD width
#: (SSE2 128-bit × 2); every supported element type uses the same count
#: so one guard covers all streams in the loop.
VECTOR_LANES = 4

_VBINARY_FOR = {
    "add": insts.VAddInst,
    "sub": insts.VSubInst,
    "mul": insts.VMulInst,
}


class _Reduction:
    """One accumulator: ``%acc = phi [init, pre], [%next, body]`` with
    ``%next = add %acc, <lane value>`` as its only in-loop use."""

    def __init__(self, phi: insts.PhiInst, update: insts.AddInst,
                 init: Value):
        self.phi = phi
        self.update = update
        self.init = init


class _Plan:
    """Everything the rewrite needs, gathered before mutating."""

    def __init__(self, loop: Loop, trip: TripCount,
                 preheader: BasicBlock, body: BasicBlock):
        self.loop = loop
        self.trip = trip
        self.preheader = preheader
        self.body = body
        #: id(body inst) -> classification tag
        self.roles: Dict[int, str] = {}
        #: id(reduction update add) -> _Reduction
        self.reductions: Dict[int, _Reduction] = {}
        #: body instructions producing one value per lane
        self.lanewise: Dict[int, insts.Instruction] = {}
        #: contiguous geps: id -> (invariant prefix indices, iv cast)
        self.streams: Dict[int, insts.GetElementPtrInst] = {}


class LoopAutovectorizer(FunctionPass):
    """``--vectorize``: rewrite counted loops to the vector subset."""

    name = "autovec"

    def __init__(self, lanes: int = VECTOR_LANES,
                 alias_analysis: Optional[AliasAnalysis] = None):
        if not 2 <= lanes <= types.MAX_VECTOR_LANES:
            raise ValueError("lanes must be in [2, {0}], got {1}".format(
                types.MAX_VECTOR_LANES, lanes))
        self.lanes = lanes
        self.alias = alias_analysis or AliasAnalysis()

    def run(self, function: Function) -> bool:
        loop_info = LoopInfo(function)
        changed = False
        recorder = observe.flight()
        for loop in loop_info.all_loops():
            if loop.children:
                continue  # only innermost loops
            outcome = self._plan(loop)
            if isinstance(outcome, str):
                observe.counter("vec.loops_rejected", 1, reason=outcome)
                if recorder is not None:
                    recorder.record("autovec.loop",
                                    function=function.name,
                                    header=loop.header.name,
                                    vectorized=False, reason=outcome)
                continue
            self._rewrite(function, outcome)
            observe.counter("vec.loops_vectorized", 1,
                            function=function.name)
            if recorder is not None:
                recorder.record("autovec.loop", function=function.name,
                                header=loop.header.name, vectorized=True,
                                lanes=self.lanes)
            changed = True
        return changed

    # -- matching ----------------------------------------------------------

    def _plan(self, loop: Loop) -> Union[_Plan, str]:
        trip = loop.trip_count()
        if trip is None:
            return "not-counted"
        if trip.relation != "lt" or trip.induction.stride != 1:
            return "non-unit-stride"
        if not trip.induction.phi.type.is_signed:
            return "unsigned-iv"
        if len(loop.blocks) != 2:
            return "multi-block"
        preheader = loop.preheader()
        if preheader is None:
            return "no-preheader"
        body = next(b for b in loop.blocks if b is not loop.header)
        terminator = body.terminator if body.has_terminator() else None
        if not (isinstance(terminator, insts.BranchInst)
                and not terminator.is_conditional):
            return "multi-block"

        plan = _Plan(loop, trip, preheader, body)
        reason = self._classify_header(plan)
        if reason is None:
            reason = self._classify_body(plan)
        if reason is None:
            reason = self._check_dependences(plan)
        return plan if reason is None else reason

    def _classify_header(self, plan: _Plan) -> Optional[str]:
        header = plan.loop.header
        iv_phi = plan.trip.induction.phi
        for inst in header.instructions:
            if isinstance(inst, insts.PhiInst):
                if inst is iv_phi:
                    continue
                reason = self._classify_reduction(plan, inst)
                if reason is not None:
                    return reason
            elif inst is plan.trip.compare or inst.is_terminator:
                continue
            else:
                return "header-code"
        return None

    def _classify_reduction(self, plan: _Plan,
                            phi: insts.PhiInst) -> Optional[str]:
        loop = plan.loop
        if not phi.type.is_arithmetic or phi.num_incoming != 2:
            return "reduction"
        init = phi.incoming_for_block(plan.preheader)
        update = None
        for value, pred in phi.incoming():
            if loop.contains(pred):
                update = value
        if init is None or update is None:
            return "reduction"
        # The only in-order fold vreduce can replay is a single
        # ``add %acc, %lane`` per iteration, used by nothing but the phi.
        if not (isinstance(update, insts.AddInst)
                and update.parent is plan.body
                and update.lhs is phi):
            return "reduction"
        for user in update.users():
            if user is not phi:
                return "reduction"
        for user in phi.users():
            if user is update:
                continue
            if isinstance(user, insts.Instruction) \
                    and user.parent is not None \
                    and loop.contains(user.parent):
                return "reduction"
        plan.reductions[id(update)] = _Reduction(phi, update, init)
        plan.roles[id(update)] = "reduction"
        return None

    def _classify_body(self, plan: _Plan) -> Optional[str]:
        loop = plan.loop
        induction = plan.trip.induction
        iv_casts: List[insts.CastInst] = []
        for inst in plan.body.instructions:
            if id(inst) in plan.roles:
                if plan.roles[id(inst)] == "reduction":
                    reduction = plan.reductions[id(inst)]
                    reason = self._lane_operand_ok(plan, reduction.update.rhs)
                    if reason is not None:
                        return reason
                continue
            if inst is induction.step:
                # ``i + 1`` is replaced by ``i + LANES``; any other use
                # of the incremented value would observe a lane index.
                for user in inst.users():
                    if user is not induction.phi:
                        return "iv-use"
                plan.roles[id(inst)] = "iv-step"
            elif isinstance(inst, insts.CastInst):
                if not (inst.value is induction.phi
                        and inst.type is types.LONG):
                    return "unsupported-op"
                iv_casts.append(inst)
                plan.roles[id(inst)] = "iv-cast"
            elif isinstance(inst, insts.GetElementPtrInst):
                reason = self._classify_gep(plan, inst, iv_casts)
                if reason is not None:
                    return reason
            elif isinstance(inst, insts.LoadInst):
                if plan.roles.get(id(inst.pointer)) != "stream":
                    return "non-contiguous"
                plan.roles[id(inst)] = "lane"
                plan.lanewise[id(inst)] = inst
            elif isinstance(inst, insts.StoreInst):
                if plan.roles.get(id(inst.pointer)) != "stream":
                    return "non-contiguous"
                reason = self._lane_operand_ok(plan, inst.value)
                if reason is not None:
                    return reason
                plan.roles[id(inst)] = "store"
            elif isinstance(inst, (insts.AddInst, insts.SubInst,
                                   insts.MulInst)) \
                    and not isinstance(inst, insts.VectorBinaryInst):
                for operand in (inst.lhs, inst.rhs):
                    reason = self._lane_operand_ok(plan, operand)
                    if reason is not None:
                        return reason
                plan.roles[id(inst)] = "lane"
                plan.lanewise[id(inst)] = inst
            elif inst.is_terminator:
                continue
            else:
                return "unsupported-op"
        # Address casts may only feed contiguous geps.
        for cast in iv_casts:
            for user in cast.users():
                if plan.roles.get(id(user)) != "stream":
                    return "iv-use"
        # Lane values must stay inside the loop (SSA dominance already
        # keeps them out of other blocks; reductions/stores consume them).
        return None

    def _classify_gep(self, plan: _Plan, gep: insts.GetElementPtrInst,
                      iv_casts: List[insts.CastInst]) -> Optional[str]:
        loop = plan.loop
        if not loop.is_invariant(gep.pointer):
            return "non-contiguous"
        indices = gep.indices
        last = indices[-1]
        if not (isinstance(last, insts.CastInst) and last in iv_casts):
            return "non-contiguous"
        for index in indices[:-1]:
            if not loop.is_invariant(index):
                return "non-contiguous"
        element = gep.type.pointee
        if not element.is_arithmetic:
            return "unsupported-op"
        plan.roles[id(gep)] = "stream"
        plan.streams[id(gep)] = gep
        return None

    def _lane_operand_ok(self, plan: _Plan, value: Value) -> Optional[str]:
        """A vector-arithmetic operand: a lane value computed in the
        body, or a loop-invariant scalar (splattable)."""
        if id(value) in plan.lanewise:
            return None
        if plan.loop.is_invariant(value):
            return None
        if isinstance(value, insts.PhiInst):
            phi = value
            if phi is plan.trip.induction.phi:
                return "iv-use"
            return "reduction"  # chained / re-read accumulator
        return "unsupported-op"

    def _check_dependences(self, plan: _Plan) -> Optional[str]:
        accesses: List[Tuple[insts.Instruction, Value, bool]] = []
        for inst in plan.body.instructions:
            if isinstance(inst, insts.LoadInst):
                accesses.append((inst, inst.pointer, False))
            elif isinstance(inst, insts.StoreInst):
                accesses.append((inst, inst.pointer, True))
        for index, (_, pointer_a, is_store_a) in enumerate(accesses):
            for _, pointer_b, is_store_b in accesses[index + 1:]:
                if not (is_store_a or is_store_b):
                    continue
                if pointer_a is pointer_b:
                    # Same SSA pointer: same address in the same lane,
                    # and the vector body preserves program order.
                    continue
                if self.alias.alias(pointer_a, pointer_b) \
                        != AliasResult.NO_ALIAS:
                    return "may-alias"
        return None

    # -- rewriting ---------------------------------------------------------

    def _rewrite(self, function: Function, plan: _Plan) -> None:
        loop, trip = plan.loop, plan.trip
        header = loop.header
        induction = trip.induction
        iv_type = induction.phi.type
        lanes = self.lanes

        vec_cond = function.add_block(header.name + ".vec.cond",
                                      before=header)
        vec_body = function.add_block(header.name + ".vec.body",
                                      before=header)

        # vec.cond: widened induction/accumulator phis plus the
        # ``i + LANES <= bound`` guard (signed wrap exits to the scalar
        # epilogue, never into out-of-range lanes).
        # Names may be absent (bitcode strips them) — fall back like
        # the body rewriter below does.
        iv_name = induction.phi.name or "iv"
        iv_vec = insts.PhiInst(iv_type, name=iv_name + ".vec")
        vec_cond.append(iv_vec)
        iv_vec.add_incoming(induction.init, plan.preheader)
        acc_vecs: Dict[int, insts.PhiInst] = {}
        for reduction in plan.reductions.values():
            acc = insts.PhiInst(reduction.phi.type,
                                name=(reduction.phi.name or "acc") + ".vec")
            vec_cond.append(acc)
            acc.add_incoming(reduction.init, plan.preheader)
            acc_vecs[id(reduction.update)] = acc
        iv_next = insts.AddInst(iv_vec, const_int(iv_type, lanes),
                                name=iv_name + ".vec.next")
        vec_cond.append(iv_next)
        guard = insts.SetLeInst(iv_next, trip.bound,
                                name=header.name + ".vec.guard")
        vec_cond.append(guard)
        vec_cond.append(insts.BranchInst(condition=guard,
                                         if_true=vec_body,
                                         if_false=header))
        iv_vec.add_incoming(iv_next, vec_body)

        # vec.body: the scalar body replayed lane-parallel, one vector
        # instruction per scalar one, in the original program order.
        mapped: Dict[int, Value] = {}
        splats: Dict[Tuple[int, int], Value] = {}

        def lane_value(value: Value,
                       vector_type: types.VectorType) -> Value:
            if id(value) in mapped:
                return mapped[id(value)]
            key = (id(value), id(vector_type))
            if key not in splats:
                splat = insts.VSplatInst(vector_type, value)
                vec_body.append(splat)
                splats[key] = splat
            return splats[key]

        for inst in plan.body.instructions:
            role = plan.roles.get(id(inst))
            if role == "iv-step" or inst.is_terminator:
                continue
            if role == "iv-cast":
                clone = insts.CastInst(iv_vec, types.LONG,
                                       name=(inst.name or "iv") + ".vec")
                vec_body.append(clone)
                mapped[id(inst)] = clone
            elif role == "stream":
                gep = plan.streams[id(inst)]
                indices = list(gep.indices)
                indices[-1] = mapped[id(indices[-1])]
                clone = insts.GetElementPtrInst(
                    gep.pointer, indices, name=(gep.name or "p") + ".vec")
                vec_body.append(clone)
                mapped[id(inst)] = clone
            elif isinstance(inst, insts.LoadInst):
                vector_type = types.vector_of(inst.type, lanes)
                vload = insts.VLoadInst(vector_type,
                                        mapped[id(inst.pointer)],
                                        name=(inst.name or "v") + ".vec")
                vec_body.append(vload)
                mapped[id(inst)] = vload
            elif role == "reduction":
                reduction = plan.reductions[id(inst)]
                vector_type = types.vector_of(inst.type, lanes)
                folded = insts.VReduceAddInst(
                    acc_vecs[id(inst)],
                    lane_value(inst.rhs, vector_type),
                    name=(inst.name or "acc") + ".vec")
                vec_body.append(folded)
                acc_vecs[id(inst)].add_incoming(folded, vec_body)
            elif isinstance(inst, insts.StoreInst):
                vector_type = types.vector_of(inst.value.type, lanes)
                vec_body.append(insts.VStoreInst(
                    lane_value(inst.value, vector_type),
                    mapped[id(inst.pointer)]))
            else:  # lane-wise add/sub/mul
                vector_type = types.vector_of(inst.type, lanes)
                clone = _VBINARY_FOR[inst.opcode](
                    lane_value(inst.lhs, vector_type),
                    lane_value(inst.rhs, vector_type),
                    name=(inst.name or "t") + ".vec")
                vec_body.append(clone)
                mapped[id(inst)] = clone
        vec_body.append(insts.BranchInst(target=vec_cond))

        # Rewire: preheader enters the vector loop; the scalar loop
        # becomes the epilogue, resuming from the vector loop's state.
        induction.phi.remove_incoming(plan.preheader)
        induction.phi.add_incoming(iv_vec, vec_cond)
        for reduction in plan.reductions.values():
            reduction.phi.remove_incoming(plan.preheader)
            reduction.phi.add_incoming(acc_vecs[id(reduction.update)],
                                       vec_cond)
        terminator = plan.preheader.terminator
        for index, operand in enumerate(terminator.operands):
            if operand is header:
                terminator.set_operand(index, vec_cond)
