"""Sparse Conditional Constant Propagation (Wegman-Zadeck).

The canonical "sparse algorithm for global dataflow problems" the paper
credits SSA with enabling (Section 3.1).  Lattice: TOP (undefined) →
constant → BOTTOM (overdefined); propagation runs over SSA edges and CFG
edges simultaneously, so code guarded by constant conditions is never
even evaluated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import instructions as insts
from repro.ir.module import BasicBlock, Function
from repro.ir.values import (
    Constant,
    ConstantBool,
    ConstantInt,
    UndefValue,
    Value,
)
from repro.transforms.constfold import fold_instruction
from repro.transforms.dce import is_trivially_dead
from repro.transforms.pass_manager import FunctionPass

_TOP = "top"
_BOTTOM = "bottom"


class _Lattice:
    """Per-value lattice state."""

    def __init__(self):
        self.state: Dict[int, object] = {}  # id(value) -> TOP/Constant/BOT

    def value_of(self, value: Value):
        if isinstance(value, UndefValue):
            return _TOP
        if isinstance(value, Constant):
            return value
        if not isinstance(value, insts.Instruction):
            # Arguments (and anything else defined outside the lattice)
            # can hold any runtime value.
            return _BOTTOM
        return self.state.get(id(value), _TOP)

    def mark(self, value: Value, new_state) -> bool:
        """Lower *value*; returns True if the state changed."""
        old = self.state.get(id(value), _TOP)
        if old == _BOTTOM:
            return False
        if new_state is _TOP:
            return False
        if old is _TOP:
            self.state[id(value)] = new_state
            return True
        if new_state is _BOTTOM or not _same_constant(old, new_state):
            self.state[id(value)] = _BOTTOM
            return True
        return False


def _same_constant(a, b) -> bool:
    if a is b:
        return True
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.type is b.type and a.value == b.value
    if isinstance(a, ConstantBool) and isinstance(b, ConstantBool):
        return a.value == b.value
    return False


class SparseConditionalConstantProp(FunctionPass):
    name = "sccp"

    def run(self, function: Function) -> bool:
        lattice = _Lattice()
        executable_edges: Set[Tuple[int, int]] = set()
        executable_blocks: Set[int] = set()
        block_worklist: List[BasicBlock] = [function.entry_block]
        ssa_worklist: List[insts.Instruction] = []

        def mark_edge(source: BasicBlock, dest: BasicBlock) -> None:
            key = (id(source), id(dest))
            if key in executable_edges:
                return
            executable_edges.add(key)
            if id(dest) not in executable_blocks:
                block_worklist.append(dest)
            else:
                # Re-evaluate the phis: a new edge brings a new operand.
                for phi in dest.phis():
                    visit(phi)

        def visit(inst: insts.Instruction) -> None:
            if isinstance(inst, insts.PhiInst):
                merged = _TOP
                for value, pred in inst.incoming():
                    if (id(pred), id(inst.parent)) not in executable_edges:
                        continue
                    incoming = lattice.value_of(value)
                    if incoming is _TOP:
                        continue
                    if merged is _TOP:
                        merged = incoming
                    elif incoming is _BOTTOM \
                            or not _same_constant(merged, incoming):
                        merged = _BOTTOM
                        break
                if lattice.mark(inst, merged):
                    enqueue_users(inst)
                return
            if isinstance(inst, insts.BranchInst) and inst.is_conditional:
                condition = lattice.value_of(inst.condition)
                if isinstance(condition, ConstantBool):
                    mark_edge(inst.parent,
                              inst.operand(1) if condition.value
                              else inst.operand(2))
                elif condition is _BOTTOM:
                    mark_edge(inst.parent, inst.operand(1))
                    mark_edge(inst.parent, inst.operand(2))
                return
            if isinstance(inst, insts.MultiwayBranchInst):
                selector = lattice.value_of(inst.selector)
                if isinstance(selector, ConstantInt):
                    target = inst.default
                    for case_value, case_label in inst.cases():
                        if case_value.value == selector.value:
                            target = case_label
                            break
                    mark_edge(inst.parent, target)
                elif selector is _BOTTOM:
                    for successor in inst.successors():
                        mark_edge(inst.parent, successor)
                return
            if inst.is_terminator:
                for successor in inst.successors():
                    mark_edge(inst.parent, successor)
                return
            if not inst.produces_value:
                return
            # Ordinary instruction: fold if every operand is constant.
            if any(lattice.value_of(op) is _BOTTOM
                   for op in inst.operands):
                if lattice.mark(inst, _BOTTOM):
                    enqueue_users(inst)
                return
            if isinstance(inst, (insts.LoadInst, insts.CallInst,
                                 insts.InvokeInst, insts.AllocaInst,
                                 insts.GetElementPtrInst)):
                # Memory and calls are outside the lattice.
                if lattice.mark(inst, _BOTTOM):
                    enqueue_users(inst)
                return
            if any(lattice.value_of(op) is _TOP for op in inst.operands):
                return  # wait for operands
            folded = _fold_with(lattice, inst)
            state = folded if folded is not None else _BOTTOM
            if lattice.mark(inst, state):
                enqueue_users(inst)

        def enqueue_users(value: Value) -> None:
            for user in value.users():
                if isinstance(user, insts.Instruction) \
                        and user.parent is not None \
                        and id(user.parent) in executable_blocks:
                    ssa_worklist.append(user)

        while block_worklist or ssa_worklist:
            while ssa_worklist:
                visit(ssa_worklist.pop())
            if block_worklist:
                block = block_worklist.pop()
                if id(block) in executable_blocks:
                    continue
                executable_blocks.add(id(block))
                for inst in block.instructions:
                    visit(inst)

        return self._apply(function, lattice, executable_blocks)

    # -- rewriting -----------------------------------------------------------

    def _apply(self, function: Function, lattice: _Lattice,
               executable_blocks: Set[int]) -> bool:
        changed = False
        for block in function.blocks:
            if id(block) not in executable_blocks:
                continue  # left for simplifycfg's unreachable removal
            for inst in list(block.instructions):
                if not inst.produces_value:
                    continue
                state = lattice.state.get(id(inst), _TOP)
                if isinstance(state, Constant):
                    inst.replace_all_uses_with(state)
                    if is_trivially_dead(inst):
                        inst.erase()
                    changed = True
        # Rewrite branches whose conditions became constants so that
        # simplifycfg can delete the dead arms.
        return changed


def _fold_with(lattice: _Lattice, inst: insts.Instruction
               ) -> Optional[Constant]:
    """Fold *inst* substituting lattice constants for its operands."""
    original: List[Value] = list(inst.operands)
    substituted = False
    try:
        for index, operand in enumerate(original):
            known = lattice.value_of(operand)
            if isinstance(known, Constant) and known is not operand:
                inst.set_operand(index, known)
                substituted = True
        return fold_instruction(inst)
    finally:
        if substituted:
            for index, operand in enumerate(original):
                inst.set_operand(index, operand)
