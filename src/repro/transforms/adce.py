"""Aggressive dead-code elimination.

Where :class:`~repro.transforms.dce.DeadCodeElimination` deletes only
locally-unused instructions, ADCE starts from the observable effects
(stores, calls, returns, architecturally-enabled exceptions, control
flow) and marks backwards through def-use chains; everything unmarked is
deleted at once — so whole dead cycles of phi-connected computations
disappear, which plain DCE can never achieve.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir import instructions as insts
from repro.ir.module import Function
from repro.transforms.pass_manager import FunctionPass


def _is_root(inst: insts.Instruction) -> bool:
    """Instructions whose effects are observable regardless of uses."""
    if inst.is_terminator:
        return True
    if isinstance(inst, (insts.StoreInst, insts.CallInst)):
        return True
    if inst.may_raise():
        return True
    return False


class AggressiveDCE(FunctionPass):
    name = "adce"

    def run(self, function: Function) -> bool:
        live: Set[int] = set()
        worklist: List[insts.Instruction] = []
        for block in function.blocks:
            for inst in block.instructions:
                if _is_root(inst):
                    live.add(id(inst))
                    worklist.append(inst)
        while worklist:
            inst = worklist.pop()
            for operand in inst.operands:
                if isinstance(operand, insts.Instruction) \
                        and id(operand) not in live:
                    live.add(id(operand))
                    worklist.append(operand)
        dead: List[insts.Instruction] = [
            inst for block in function.blocks
            for inst in block.instructions
            if id(inst) not in live
        ]
        if not dead:
            return False
        # Liveness propagates through operands, so no live instruction
        # uses a dead one; dropping every dead instruction's operand
        # references first leaves the dead set mutually unreferenced.
        for inst in dead:
            inst.drop_all_references()
        for inst in dead:
            inst.parent.remove(inst)
        return True
