"""Constant folding and algebraic simplification of single instructions.

Folding uses the *same* semantics as the interpreter (two's-complement
wraparound, C-style division, IEEE floats), so a folded program is
bit-identical to an unfolded one — the differential tests enforce this.

Instructions that could trap (``div``/``rem`` by a zero constant) are
never folded away: the paper's exception model makes the trap an
architecturally-visible effect when ``ExceptionsEnabled`` is set.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.ir import instructions as insts
from repro.ir import types, values
from repro.ir.values import (
    Constant,
    ConstantBool,
    ConstantFP,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)


def fold_instruction(inst: insts.Instruction) -> Optional[Constant]:
    """Fold *inst* to a constant if all operands are constants.

    Returns None when the instruction cannot be folded (non-constant
    operands, potential trap, or target-dependent result).
    """
    if isinstance(inst, insts.ArithmeticInst):
        return _fold_arith(inst)
    if isinstance(inst, insts.LogicalInst):
        return _fold_logical(inst)
    if isinstance(inst, insts.ShiftInst):
        return _fold_shift(inst)
    if isinstance(inst, insts.CompareInst):
        return _fold_compare(inst)
    if isinstance(inst, insts.CastInst):
        return _fold_cast(inst)
    return None


def simplify_instruction(inst: insts.Instruction) -> Optional[Value]:
    """Algebraic identities that need only one constant operand.

    Returns a replacement value (possibly an existing register) or None.
    """
    folded = fold_instruction(inst)
    if folded is not None:
        return folded
    opcode = inst.opcode
    if opcode in ("add", "or", "xor"):
        value, constant = _split_commutative(inst)
        if constant is not None and _is_zero(constant):
            return value
        if opcode == "xor" and inst.operand(0) is inst.operand(1) \
                and inst.type.is_integer:
            return values.const_int(inst.type, 0)
    elif opcode == "sub":
        if _is_zero_constant(inst.operand(1)):
            return inst.operand(0)
        if inst.operand(0) is inst.operand(1) and inst.type.is_integer:
            return values.const_int(inst.type, 0)
    elif opcode == "mul":
        value, constant = _split_commutative(inst)
        if constant is not None and inst.type.is_integer:
            if _is_zero(constant):
                return values.const_int(inst.type, 0)
            if isinstance(constant, ConstantInt) and constant.value == 1:
                return value
    elif opcode == "div":
        divisor = inst.operand(1)
        if isinstance(divisor, ConstantInt) and divisor.value == 1:
            return inst.operand(0)
    elif opcode == "and":
        value, constant = _split_commutative(inst)
        if constant is not None:
            if _is_zero(constant):
                return constant
            if _is_all_ones(constant):
                return value
        if inst.operand(0) is inst.operand(1):
            return inst.operand(0)
    elif opcode == "or":
        if inst.operand(0) is inst.operand(1):
            return inst.operand(0)
    elif opcode in ("shl", "shr"):
        amount = inst.operand(1)
        if isinstance(amount, ConstantInt) and amount.value == 0:
            return inst.operand(0)
    elif opcode == "phi":
        return _simplify_phi(inst)
    elif opcode == "cast":
        if inst.value.type is inst.type:
            return inst.value
    elif opcode in ("seteq", "setne"):
        if inst.operand(0) is inst.operand(1) \
                and not inst.operand(0).type.is_floating_point:
            return values.const_bool(opcode == "seteq")
    return None


# ---------------------------------------------------------------------------
# Folding kernels
# ---------------------------------------------------------------------------

def _int_operands(inst) -> Optional[tuple]:
    lhs, rhs = inst.operand(0), inst.operand(1)
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        return lhs.value, rhs.value
    return None


def _fp_operands(inst) -> Optional[tuple]:
    lhs, rhs = inst.operand(0), inst.operand(1)
    if isinstance(lhs, ConstantFP) and isinstance(rhs, ConstantFP):
        return lhs.value, rhs.value
    return None


def _fold_arith(inst: insts.ArithmeticInst) -> Optional[Constant]:
    opcode = inst.opcode
    if inst.type.is_integer:
        pair = _int_operands(inst)
        if pair is None:
            return None
        lhs, rhs = pair
        if opcode == "add":
            raw = lhs + rhs
        elif opcode == "sub":
            raw = lhs - rhs
        elif opcode == "mul":
            raw = lhs * rhs
        else:
            if rhs == 0:
                return None  # a potential trap is not foldable
            quotient = abs(lhs) // abs(rhs)
            if (lhs < 0) != (rhs < 0):
                quotient = -quotient
            raw = quotient if opcode == "div" else lhs - quotient * rhs
        return values.const_int(inst.type, inst.type.wrap(raw))
    pair = _fp_operands(inst)
    if pair is None:
        return None
    lhs, rhs = pair
    if opcode == "add":
        result = lhs + rhs
    elif opcode == "sub":
        result = lhs - rhs
    elif opcode == "mul":
        result = lhs * rhs
    elif opcode == "div":
        if rhs == 0.0:
            if lhs == 0.0:
                result = float("nan")
            else:
                result = float("inf") if lhs > 0 else float("-inf")
        else:
            result = lhs / rhs
    else:
        result = math.fmod(lhs, rhs) if rhs != 0.0 else float("nan")
    return values.const_fp(inst.type, result)


def _fold_logical(inst: insts.LogicalInst) -> Optional[Constant]:
    lhs, rhs = inst.operand(0), inst.operand(1)
    if inst.type.is_bool:
        if not (isinstance(lhs, ConstantBool)
                and isinstance(rhs, ConstantBool)):
            return None
        a, b = lhs.value, rhs.value
        if inst.opcode == "and":
            return values.const_bool(a and b)
        if inst.opcode == "or":
            return values.const_bool(a or b)
        return values.const_bool(a != b)
    pair = _int_operands(inst)
    if pair is None:
        return None
    a, b = pair
    if inst.opcode == "and":
        raw = a & b
    elif inst.opcode == "or":
        raw = a | b
    else:
        raw = a ^ b
    return values.const_int(inst.type, inst.type.wrap(raw))


def _fold_shift(inst: insts.ShiftInst) -> Optional[Constant]:
    pair = _int_operands(inst)
    if pair is None:
        return None
    value, raw_amount = pair
    amount = raw_amount & (inst.type.bits - 1)
    if inst.opcode == "shl":
        raw = value << amount
    elif inst.type.is_signed:
        raw = value >> amount
    else:
        raw = (value & ((1 << inst.type.bits) - 1)) >> amount
    return values.const_int(inst.type, inst.type.wrap(raw))


def _fold_compare(inst: insts.CompareInst) -> Optional[Constant]:
    lhs, rhs = inst.operand(0), inst.operand(1)
    pair: Optional[tuple] = None
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        pair = (lhs.value, rhs.value)
    elif isinstance(lhs, ConstantFP) and isinstance(rhs, ConstantFP):
        pair = (lhs.value, rhs.value)
    elif isinstance(lhs, ConstantBool) and isinstance(rhs, ConstantBool):
        pair = (lhs.value, rhs.value)
    elif isinstance(lhs, ConstantNull) and isinstance(rhs, ConstantNull):
        pair = (0, 0)
    if pair is None:
        return None
    a, b = pair
    relation = inst.relation
    if relation == "eq":
        result = a == b
    elif relation == "ne":
        result = a != b
    elif relation == "lt":
        result = a < b
    elif relation == "gt":
        result = a > b
    elif relation == "le":
        result = a <= b
    else:
        result = a >= b
    return values.const_bool(bool(result))


def _fold_cast(inst: insts.CastInst) -> Optional[Constant]:
    source = inst.value
    dest = inst.type
    if isinstance(source, UndefValue):
        return values.const_undef(dest)
    if isinstance(source, ConstantInt):
        if dest.is_integer:
            return values.const_int(dest, dest.wrap(source.value))
        if dest.is_bool:
            return values.const_bool(source.value != 0)
        if dest.is_floating_point:
            return values.const_fp(dest, float(source.value))
        if dest.is_pointer and source.value == 0:
            return values.const_null(dest)
        return None  # non-zero int-to-pointer: target-dependent
    if isinstance(source, ConstantBool):
        if dest.is_integer:
            return values.const_int(dest, 1 if source.value else 0)
        if dest.is_bool:
            return source
        if dest.is_floating_point:
            return values.const_fp(dest, 1.0 if source.value else 0.0)
        return None
    if isinstance(source, ConstantFP):
        if dest.is_floating_point:
            return values.const_fp(dest, source.value)
        if dest.is_integer:
            value = source.value
            if value != value or value in (float("inf"), float("-inf")):
                return values.const_int(dest, 0)
            return values.const_int(dest, dest.wrap(int(value)))
        if dest.is_bool:
            return values.const_bool(source.value != 0.0)
        return None
    if isinstance(source, ConstantNull):
        if dest.is_pointer:
            return values.const_null(dest)
        if dest.is_integer:
            return values.const_int(dest, 0)
        if dest.is_bool:
            return values.const_bool(False)
        return None
    return None


# ---------------------------------------------------------------------------
# Simplification helpers
# ---------------------------------------------------------------------------

def _split_commutative(inst):
    """(value, constant) with the constant operand second, or (_, None)."""
    lhs, rhs = inst.operand(0), inst.operand(1)
    if isinstance(rhs, (ConstantInt, ConstantFP, ConstantBool)):
        return lhs, rhs
    if isinstance(lhs, (ConstantInt, ConstantFP, ConstantBool)):
        return rhs, lhs
    return lhs, None


def _is_zero(constant: Constant) -> bool:
    if isinstance(constant, ConstantInt):
        return constant.value == 0
    if isinstance(constant, ConstantBool):
        return not constant.value
    # Floating 0.0 is NOT an additive identity for -0.0 / NaN; skip.
    return False


def _is_zero_constant(value: Value) -> bool:
    return isinstance(value, ConstantInt) and value.value == 0


def _is_all_ones(constant: Constant) -> bool:
    if isinstance(constant, ConstantInt):
        return constant.value == constant.type.wrap(-1)
    if isinstance(constant, ConstantBool):
        return constant.value
    return False


def _simplify_phi(phi: insts.PhiInst) -> Optional[Value]:
    """A phi whose incoming values are all identical (or itself) reduces
    to that value."""
    unique: Optional[Value] = None
    for value, _block in phi.incoming():
        if value is phi:
            continue
        if unique is None:
            unique = value
        elif unique is not value:
            return None
    return unique
