"""CFG simplification: fold constant branches, merge straight-line block
chains, and delete unreachable code.

Cleans up after SCCP/instsimplify and keeps the CFG the code generators
see small, which directly affects the Table 2 native-instruction counts.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir import instructions as insts
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.module import BasicBlock, Function
from repro.ir.values import ConstantBool, ConstantInt
from repro.transforms.pass_manager import FunctionPass


class SimplifyCFG(FunctionPass):
    name = "simplifycfg"

    def run(self, function: Function) -> bool:
        changed = False
        keep_going = True
        while keep_going:
            keep_going = False
            if self._fold_constant_branches(function):
                keep_going = changed = True
            if remove_unreachable_blocks(function):
                keep_going = changed = True
            if self._merge_chains(function):
                keep_going = changed = True
            if self._remove_empty_forwarders(function):
                keep_going = changed = True
        return changed

    # -- constant branches ---------------------------------------------------

    def _fold_constant_branches(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            if not block.has_terminator():
                continue
            terminator = block.terminator
            replacement: Optional[insts.Instruction] = None
            if isinstance(terminator, insts.BranchInst) \
                    and terminator.is_conditional \
                    and isinstance(terminator.condition, ConstantBool):
                taken = terminator.operand(1) if terminator.condition.value \
                    else terminator.operand(2)
                dropped = terminator.operand(2) if terminator.condition.value \
                    else terminator.operand(1)
                replacement = insts.BranchInst(target=taken)
                if dropped is not taken:
                    _remove_phi_edges(dropped, block)
            elif isinstance(terminator, insts.MultiwayBranchInst) \
                    and isinstance(terminator.selector, ConstantInt):
                selector = terminator.selector.value
                target = terminator.default
                for case_value, case_label in terminator.cases():
                    if case_value.value == selector:
                        target = case_label
                        break
                for successor in set(terminator.successors()):
                    if successor is not target:
                        _remove_phi_edges(successor, block)
                replacement = insts.BranchInst(target=target)
            if replacement is not None:
                terminator.erase()
                block.append(replacement)
                changed = True
        return changed

    # -- merging ---------------------------------------------------------------

    def _merge_chains(self, function: Function) -> bool:
        """Merge B into A when A's only successor is B and B's only
        predecessor is A."""
        changed = False
        for block in list(function.blocks):
            if block.parent is None or not block.has_terminator():
                continue
            terminator = block.terminator
            if not (isinstance(terminator, insts.BranchInst)
                    and not terminator.is_conditional):
                continue
            successor = terminator.operand(0)
            if successor is block:
                continue
            preds = successor.predecessors()
            if len(preds) != 1 or preds[0] is not block:
                continue
            if successor is function.entry_block:
                continue
            # Phis in the successor have exactly one incoming value now.
            for phi in successor.phis():
                incoming = phi.incoming_for_block(block)
                phi.replace_all_uses_with(incoming)
                phi.erase()
            terminator.erase()
            for inst in list(successor.instructions):
                successor.remove(inst)
                block.instructions.append(inst)
                inst.parent = block
            # Successor is now empty; redirect nothing (no preds besides
            # block) and delete it.
            successor.replace_all_uses_with(block)
            successor.erase_from_parent()
            changed = True
        return changed

    # -- empty forwarding blocks ---------------------------------------------------

    def _remove_empty_forwarders(self, function: Function) -> bool:
        """Delete blocks containing only ``br label %next`` by pointing
        their predecessors directly at the target."""
        changed = False
        for block in list(function.blocks):
            if block.parent is None or block is function.entry_block:
                continue
            if len(block.instructions) != 1:
                continue
            terminator = block.instructions[0]
            if not (isinstance(terminator, insts.BranchInst)
                    and not terminator.is_conditional):
                continue
            target = terminator.operand(0)
            if target is block:
                continue
            if not self._forwarding_is_safe(block, target):
                continue
            # Retarget predecessors and migrate phi edges.
            preds = block.predecessors()
            for phi in target.phis():
                forwarded = phi.incoming_for_block(block)
                if forwarded is None:
                    continue
                phi.remove_incoming(block)
                for pred in preds:
                    phi.add_incoming(forwarded, pred)
            terminator.erase()
            block.replace_all_uses_with(target)
            block.erase_from_parent()
            changed = True
        return changed

    @staticmethod
    def _forwarding_is_safe(block: BasicBlock,
                            target: BasicBlock) -> bool:
        """Retargeting must not give the target two edges from one
        predecessor with *different* phi values, nor duplicate edges."""
        target_pred_ids = {id(p) for p in target.predecessors()}
        for pred in block.predecessors():
            if id(pred) in target_pred_ids:
                # pred would now reach target twice; only safe if target
                # has no phis whose values would conflict.
                if target.phis():
                    return False
        # A phi in the target must be able to receive block's forwarded
        # value from every new predecessor; that is always true since the
        # value is per-edge constant here.
        return True


def _remove_phi_edges(block_value, predecessor: BasicBlock) -> None:
    """Drop *predecessor*'s incoming entries from phis in *block_value*
    when the CFG edge predecessor->block disappears — unless another edge
    between the same pair of blocks survives."""
    if not isinstance(block_value, BasicBlock):
        return
    for phi in block_value.phis():
        if phi.incoming_for_block(predecessor) is not None:
            phi.remove_incoming(predecessor)
