"""The optimization pass pipeline.

Section 4.2 enumerates where LLVA code gets optimized: compile/link time
(machine-independent), install time, run time (traces), and idle time
(profile-guided).  All of those stages drive the same pass manager; what
differs is the pipeline they request (:func:`standard_pipeline`,
:func:`link_time_pipeline`) and when they run it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import observe
from repro.ir.module import Function, Module
from repro.ir.verifier import verify_module
from repro.observe.metrics import MetricsRegistry


class FunctionPass:
    """Base class: transforms one function, returns True if changed."""

    name = "function-pass"

    def run(self, function: Function) -> bool:
        raise NotImplementedError


class ModulePass:
    """Base class: transforms a whole module, returns True if changed."""

    name = "module-pass"

    def run_module(self, module: Module) -> bool:
        raise NotImplementedError


@dataclass
class PassStats:
    """Per-pass accounting from one pipeline run."""

    runs: int = 0
    changes: int = 0
    seconds: float = 0.0


class PipelineReport:
    """What a pipeline run did — surfaced by the optimization benches.

    The report is a thin view over a per-run
    :class:`~repro.observe.metrics.MetricsRegistry` (``pass.runs`` /
    ``pass.changes`` / ``pass.seconds``, labelled by pass name); when
    global observability is on the same records are mirrored into the
    process registry so ``repro stats`` sees them.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()

    def record(self, name: str, changed: bool, seconds: float) -> None:
        self.registry.inc("pass.runs", 1, **{"pass": name})
        if changed:
            self.registry.inc("pass.changes", 1, **{"pass": name})
        self.registry.inc("pass.seconds", seconds, **{"pass": name})
        observe.counter("pass.runs", 1, **{"pass": name})
        if changed:
            observe.counter("pass.changes", 1, **{"pass": name})
        observe.counter("pass.seconds", seconds, **{"pass": name})
        observe.histogram("pass.run_seconds", seconds,
                          **{"pass": name})

    @property
    def stats(self) -> Dict[str, PassStats]:
        out: Dict[str, PassStats] = {}
        for name, value in self.registry.label_values("pass.runs",
                                                      "pass"):
            out[name] = PassStats(
                runs=int(value),
                changes=int(self.registry.value("pass.changes",
                                                **{"pass": name})),
                seconds=self.registry.value("pass.seconds",
                                            **{"pass": name}))
        return out

    @property
    def total_changes(self) -> int:
        return sum(s.changes for s in self.stats.values())


class PassManager:
    """Runs a sequence of passes over a module.

    ``verify_each`` re-verifies the module after every pass — on by
    default in tests, off in the timed benchmarks.
    """

    def __init__(self, passes: Sequence[object] = (),
                 verify_each: bool = False):
        self.passes: List[object] = list(passes)
        self.verify_each = verify_each

    def add(self, pass_: object) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> PipelineReport:
        report = PipelineReport()
        with observe.span("passes.pipeline", module=module.name,
                          passes=len(self.passes)):
            for pass_ in self.passes:
                pass_name = getattr(pass_, "name",
                                    type(pass_).__name__)
                with observe.span("pass.run", name=pass_name) \
                        as pass_span:
                    started = time.perf_counter()
                    if isinstance(pass_, ModulePass):
                        changed = pass_.run_module(module)
                    elif isinstance(pass_, FunctionPass):
                        changed = False
                        for function in list(
                                module.functions.values()):
                            if function.is_declaration:
                                continue
                            if pass_.run(function):
                                changed = True
                    else:
                        raise TypeError(
                            "not a pass: {0!r}".format(pass_))
                    pass_span.set(changed=changed)
                report.record(pass_.name, changed,
                              time.perf_counter() - started)
                if self.verify_each:
                    with observe.span("pass.verify", name=pass_.name):
                        verify_module(module)
        return report


def standard_pipeline(level: int = 2,
                      vectorize: bool = False) -> List[object]:
    """The per-module pipeline at a given -O level.

    * ``-O0`` — nothing.
    * ``-O1`` — mem2reg, local folding, CFG cleanup, DCE.
    * ``-O2`` — adds SCCP, GVN, LICM, and aggressive DCE.
    * ``vectorize`` — appends the loop autovectorizer (and a cleanup
      DCE) after the scalar pipeline, so it sees canonical loops.
    """
    from repro.transforms.adce import AggressiveDCE
    from repro.transforms.dce import DeadCodeElimination, InstSimplify
    from repro.transforms.gvn import GlobalValueNumbering
    from repro.transforms.licm import LoopInvariantCodeMotion
    from repro.transforms.mem2reg import PromoteMemoryToRegisters
    from repro.transforms.sccp import SparseConditionalConstantProp
    from repro.transforms.simplifycfg import SimplifyCFG

    passes: List[object] = []
    if level > 0:
        passes += [
            PromoteMemoryToRegisters(),
            InstSimplify(),
            SimplifyCFG(),
            DeadCodeElimination(),
        ]
    if level >= 2:
        passes += [
            SparseConditionalConstantProp(),
            SimplifyCFG(),
            GlobalValueNumbering(),
            LoopInvariantCodeMotion(),
            AggressiveDCE(),
            SimplifyCFG(),
        ]
    if vectorize:
        from repro.transforms.autovec import LoopAutovectorizer

        passes += [LoopAutovectorizer(), DeadCodeElimination()]
    return passes


def link_time_pipeline(vectorize: bool = False) -> List[object]:
    """The whole-program, link-time pipeline of Section 4.2 (item 1):
    interprocedural inlining and global cleanup, then -O2 per function."""
    from repro.transforms.globalopt import GlobalOptimizer
    from repro.transforms.inline import FunctionInliner

    return [FunctionInliner(), GlobalOptimizer()] \
        + standard_pipeline(2, vectorize=vectorize) \
        + [GlobalOptimizer()]


def optimize(module: Module, level: int = 2,
             link_time: bool = False,
             verify_each: bool = False,
             vectorize: bool = False) -> PipelineReport:
    """One-call optimization entry point."""
    passes = link_time_pipeline(vectorize) if link_time \
        else standard_pipeline(level, vectorize=vectorize)
    return PassManager(passes, verify_each=verify_each).run(module)
