"""The LLVA optimizer: the machine-independent transformations of
Section 4.2 (compile/link-time) and Section 5.1 (interprocedural)."""

from repro.transforms.adce import AggressiveDCE
from repro.transforms.constfold import fold_instruction, simplify_instruction
from repro.transforms.dce import DeadCodeElimination, InstSimplify
from repro.transforms.globalopt import GlobalOptimizer, internalize
from repro.transforms.gvn import GlobalValueNumbering
from repro.transforms.inline import FunctionInliner, inline_call
from repro.transforms.licm import LoopInvariantCodeMotion
from repro.transforms.linker import LinkError, link_modules
from repro.transforms.mem2reg import PromoteMemoryToRegisters
from repro.transforms.pass_manager import (
    FunctionPass,
    ModulePass,
    PassManager,
    PipelineReport,
    link_time_pipeline,
    optimize,
    standard_pipeline,
)
from repro.transforms.poolalloc import AutomaticPoolAllocation
from repro.transforms.sccp import SparseConditionalConstantProp
from repro.transforms.simplifycfg import SimplifyCFG

__all__ = [
    "AggressiveDCE",
    "fold_instruction",
    "simplify_instruction",
    "DeadCodeElimination",
    "InstSimplify",
    "GlobalOptimizer",
    "internalize",
    "GlobalValueNumbering",
    "FunctionInliner",
    "inline_call",
    "LoopInvariantCodeMotion",
    "LinkError",
    "link_modules",
    "PromoteMemoryToRegisters",
    "FunctionPass",
    "ModulePass",
    "PassManager",
    "PipelineReport",
    "link_time_pipeline",
    "optimize",
    "standard_pipeline",
    "AutomaticPoolAllocation",
    "SparseConditionalConstantProp",
    "SimplifyCFG",
]
