"""Loop-invariant code motion.

Hoists computations whose operands do not change within a loop into the
loop's preheader.  The pass is a working demonstration of the paper's
exception-model claim (Section 3.3): an instruction with
``ExceptionsEnabled = false`` may be hoisted past the loop guard freely,
while one with the bit set may only move when it is guaranteed to execute
on every iteration (its block dominates every loop exit) — so static
compilers that clear the bit directly unlock more reordering in the
translator.

Invariant loads additionally require that no store or call inside the
loop may alias the loaded address (alias analysis again).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.analysis.loops import Loop, LoopInfo
from repro.ir import instructions as insts
from repro.ir.cfg import DominatorTree
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Value
from repro.transforms.pass_manager import FunctionPass


class LoopInvariantCodeMotion(FunctionPass):
    name = "licm"

    def __init__(self, alias_analysis: Optional[AliasAnalysis] = None):
        self.alias = alias_analysis or AliasAnalysis()

    def run(self, function: Function) -> bool:
        domtree = DominatorTree(function)
        loop_info = LoopInfo(function, domtree)
        loops = sorted(loop_info.all_loops(),
                       key=lambda lp: -lp.depth)  # innermost first
        changed = False
        for loop in loops:
            if self._process_loop(function, loop, domtree):
                changed = True
                # Hoisting into a fresh preheader invalidates the trees.
                domtree = DominatorTree(function)
        return changed

    # -- per loop ----------------------------------------------------------------

    def _process_loop(self, function: Function, loop: Loop,
                      domtree: DominatorTree) -> bool:
        preheader = self._ensure_preheader(function, loop)
        if preheader is None:
            return False
        invariant: Set[int] = set()
        writes, has_calls = self._loop_memory_effects(loop)
        exit_dominators = self._blocks_dominating_exits(loop, domtree)
        changed = False
        # Iterate to a fixpoint: hoisting one instruction can make its
        # users invariant.
        progress = True
        while progress:
            progress = False
            for block in list(loop.blocks):
                for inst in list(block.instructions):
                    if id(inst) in invariant:
                        continue
                    if not self._hoistable(inst, loop, invariant, writes,
                                           has_calls, exit_dominators):
                        continue
                    block.remove(inst)
                    preheader.insert_before(preheader.terminator, inst)
                    invariant.add(id(inst))
                    progress = True
                    changed = True
        return changed

    # -- classification ------------------------------------------------------------

    def _hoistable(self, inst: insts.Instruction, loop: Loop,
                   invariant: Set[int], writes: List[insts.StoreInst],
                   has_calls: bool, exit_dominators: Set[int]) -> bool:
        if inst.is_terminator or isinstance(
                inst, (insts.PhiInst, insts.AllocaInst, insts.StoreInst,
                       insts.CallInst, insts.InvokeInst)):
            return False
        if not self._operands_invariant(inst, loop, invariant):
            return False
        if isinstance(inst, insts.LoadInst):
            if has_calls:
                return False
            for store in writes:
                if self.alias.alias(store.pointer, inst.pointer) \
                        != AliasResult.NO_ALIAS:
                    return False
        if inst.may_raise():
            # Precise exceptions: moving a potentially-trapping
            # instruction before the loop guard is only legal when it was
            # going to execute anyway.
            if id(inst.parent) not in exit_dominators:
                return False
        return True

    def _operands_invariant(self, inst: insts.Instruction, loop: Loop,
                            invariant: Set[int]) -> bool:
        for operand in inst.operands:
            if isinstance(operand, insts.Instruction):
                if id(operand) in invariant:
                    continue
                if operand.parent is not None \
                        and loop.contains(operand.parent):
                    return False
        return True

    # -- loop facts --------------------------------------------------------------------

    def _loop_memory_effects(self, loop: Loop):
        writes: List[insts.StoreInst] = []
        has_calls = False
        for block in loop.blocks:
            for inst in block.instructions:
                if isinstance(inst, insts.StoreInst):
                    writes.append(inst)
                elif isinstance(inst, (insts.CallInst, insts.InvokeInst)):
                    has_calls = True
        return writes, has_calls

    def _blocks_dominating_exits(self, loop: Loop,
                                 domtree: DominatorTree) -> Set[int]:
        exits = [inside for inside, _outside in loop.exit_edges()]
        out: Set[int] = set()
        for block in loop.blocks:
            if all(domtree.dominates(block, exit_block)
                   for exit_block in exits):
                out.add(id(block))
        return out

    # -- preheader creation ---------------------------------------------------------------

    def _ensure_preheader(self, function: Function,
                          loop: Loop) -> Optional[BasicBlock]:
        existing = loop.preheader()
        if existing is not None:
            return existing
        header = loop.header
        outside_preds = [p for p in header.predecessors()
                         if not loop.contains(p)]
        if not outside_preds:
            return None  # unreachable loop
        preheader = function.add_block(header.name + ".preheader",
                                       before=header)
        # Migrate phi edges: the header's phis merge the outside values in
        # the preheader only if there are several outside predecessors —
        # with one, simply retarget.
        for phi in header.phis():
            if len(outside_preds) == 1:
                value = phi.incoming_for_block(outside_preds[0])
                if value is not None:
                    phi.remove_incoming(outside_preds[0])
                    phi.add_incoming(value, preheader)
            else:
                merged = insts.PhiInst(phi.type, name=phi.name)
                preheader.instructions.insert(0, merged)
                merged.parent = preheader
                for pred in outside_preds:
                    value = phi.incoming_for_block(pred)
                    if value is not None:
                        merged.add_incoming(value, pred)
                        phi.remove_incoming(pred)
                phi.add_incoming(merged, preheader)
        preheader.append(insts.BranchInst(target=header))
        for pred in outside_preds:
            terminator = pred.terminator
            for index, operand in enumerate(terminator.operands):
                if operand is header:
                    terminator.set_operand(index, preheader)
        return preheader
