"""The LLVA module linker.

Links several virtual object code modules into one whole program —
the precondition for the link-time interprocedural optimization that
Section 4.2 identifies as "particularly important because it is the
first time that most or all modules of an application are simultaneously
available".

Linking resolves declarations against definitions by symbol name: a
declaration in one module binds to the definition in another, with
type-checked signatures.  Internal symbols never cross module
boundaries; colliding internal names are renamed.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir import types
from repro.ir.module import Function, GlobalVariable, Module
from repro.ir.types import LlvaTypeError


class LinkError(Exception):
    """Symbol conflicts or signature mismatches between modules."""


def link_modules(modules: Sequence[Module],
                 name: str = "linked") -> Module:
    """Link *modules* into a fresh module (the inputs are consumed)."""
    if not modules:
        raise LinkError("nothing to link")
    for module in modules[1:]:
        if module.pointer_size != modules[0].pointer_size \
                or module.endianness != modules[0].endianness:
            raise LinkError("V-ABI flag mismatch between modules")
    output = Module(name,
                    pointer_size=modules[0].pointer_size,
                    endianness=modules[0].endianness)
    for module in modules:
        _absorb(output, module)
    _check_unresolved(output)
    return output


def _absorb(output: Module, source: Module) -> None:
    for type_name, struct in source.named_types.items():
        output.named_types.setdefault(type_name, struct)
    for variable in list(source.globals.values()):
        source.remove_global(variable)
        _absorb_global(output, variable)
    for function in list(source.functions.values()):
        source.remove_function(function)
        _absorb_function(output, function)


def _absorb_global(output: Module, variable: GlobalVariable) -> None:
    if variable.internal:
        variable.name = _fresh_name(output, variable.name)
        output.add_global(variable)
        return
    existing = output.globals.get(variable.name)
    if existing is None:
        if variable.name in output.functions:
            raise LinkError(
                "symbol %{0} is a function in another module"
                .format(variable.name))
        output.add_global(variable)
        return
    if existing.value_type is not variable.value_type:
        raise LinkError("global %{0} type mismatch".format(variable.name))
    if existing.initializer is None:
        # Existing is a declaration: adopt the definition's body.
        existing.initializer = variable.initializer
        existing.is_constant = variable.is_constant
        variable.replace_all_uses_with(existing)
    elif variable.initializer is None:
        variable.replace_all_uses_with(existing)
    else:
        raise LinkError(
            "duplicate definition of global %{0}".format(variable.name))


def _absorb_function(output: Module, function: Function) -> None:
    if function.internal:
        function.name = _fresh_name(output, function.name)
        output.add_function(function)
        return
    existing = output.functions.get(function.name)
    if existing is None:
        if function.name in output.globals:
            raise LinkError(
                "symbol %{0} is a global in another module"
                .format(function.name))
        output.add_function(function)
        return
    if existing.function_type is not function.function_type:
        raise LinkError(
            "function %{0} signature mismatch".format(function.name))
    if existing.is_declaration and not function.is_declaration:
        # Adopt the definition into the existing declaration object so
        # all references in already-linked code bind to the body.
        existing.blocks = function.blocks
        for block in existing.blocks:
            block.parent = existing
        old_args = existing.args
        existing.args = function.args
        for arg in existing.args:
            arg.function = existing
        function.blocks = []
        function.args = old_args
        function.replace_all_uses_with(existing)
    elif not existing.is_declaration and function.is_declaration:
        function.replace_all_uses_with(existing)
    elif existing.is_declaration and function.is_declaration:
        function.replace_all_uses_with(existing)
    else:
        raise LinkError(
            "duplicate definition of function %{0}".format(function.name))


def _check_unresolved(output: Module) -> None:
    """Calls to undefined non-runtime, non-intrinsic symbols are link
    errors only when no definition could ever be supplied; external
    library functions remain legal (Section 4.1: 'LLVA executables can
    invoke native libraries')."""
    # Nothing fatal here by design; LLEE resolves runtime externals.


def _fresh_name(output: Module, base: str) -> str:
    if base not in output.functions and base not in output.globals:
        return base
    counter = 1
    while True:
        candidate = "{0}.{1}".format(base, counter)
        if candidate not in output.functions \
                and candidate not in output.globals:
            return candidate
        counter += 1
