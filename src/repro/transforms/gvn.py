"""Global value numbering with redundant-load elimination.

Pure expressions are numbered over the dominator tree: two instructions
with the same opcode and value-numbered operands compute the same value,
and a dominating occurrence replaces every dominated one.  This is sound
precisely because pure LLVA expressions have no clobbering effects and
SSA guarantees operand identity.

Memory is handled *locally*: within a basic block, loads are available
until a may-alias store or a call intervenes, enabling redundant-load
elimination and store-to-load forwarding.  (Cross-block load
availability would require a full dataflow over all paths — not just the
dominator relation — so the translator keeps it local; this is where
the type-based alias analysis of Section 3.3 earns its keep.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.ir import instructions as insts
from repro.ir.cfg import DominatorTree
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Value
from repro.transforms.dce import is_trivially_dead
from repro.transforms.pass_manager import FunctionPass


class GlobalValueNumbering(FunctionPass):
    name = "gvn"

    def __init__(self, alias_analysis: Optional[AliasAnalysis] = None):
        self.alias = alias_analysis or AliasAnalysis()

    def run(self, function: Function) -> bool:
        domtree = DominatorTree(function)
        changed = False
        # Iterative pre-order walk of the dominator tree, each child
        # receiving a copy of the parent's expression table.
        stack: List[Tuple[BasicBlock, Dict[Tuple, insts.Instruction]]] = [
            (function.entry_block, {})]
        while stack:
            block, inherited = stack.pop()
            expressions = dict(inherited)
            if self._process_block(block, expressions):
                changed = True
            for child in domtree.children(block):
                stack.append((child, expressions))
        return changed

    # -- one block ------------------------------------------------------------

    def _process_block(self, block: BasicBlock,
                       expressions: Dict[Tuple, insts.Instruction]) -> bool:
        changed = False
        # (access instruction, value a matching load would produce)
        available: List[Tuple[insts.Instruction, Value]] = []
        for inst in list(block.instructions):
            if isinstance(inst, insts.LoadInst):
                hit = self._find_available_load(inst, available)
                if hit is not None:
                    inst.replace_all_uses_with(hit)
                    inst.erase()
                    changed = True
                else:
                    available.append((inst, inst))
            elif isinstance(inst, insts.StoreInst):
                available = self._kill_clobbered(inst, available)
                available.append((inst, inst.value))
            elif isinstance(inst, (insts.CallInst, insts.InvokeInst)):
                available = []  # calls may write any memory
            else:
                key = self._expression_key(inst)
                if key is None:
                    continue
                existing = expressions.get(key)
                if existing is not None and existing.parent is not None:
                    inst.replace_all_uses_with(existing)
                    if is_trivially_dead(inst):
                        inst.erase()
                    changed = True
                else:
                    expressions[key] = inst
        return changed

    # -- expression hashing ---------------------------------------------------------

    def _expression_key(self, inst: insts.Instruction) -> Optional[Tuple]:
        if inst.opcode in ("alloca", "phi") or inst.is_terminator:
            return None
        if inst.may_raise():
            return None  # a deliverable exception is an effect
        operands = tuple(id(op) for op in inst.operands)
        if isinstance(inst, insts.BinaryInst) and inst.is_commutative:
            operands = tuple(sorted(operands))
        return (inst.opcode, id(inst.type), operands)

    # -- memory ------------------------------------------------------------------------

    def _find_available_load(self, load: insts.LoadInst,
                             available) -> Optional[Value]:
        for prior, value in available:
            if value.type is not load.type:
                continue
            if self.alias.alias(prior.pointer, load.pointer) \
                    == AliasResult.MUST_ALIAS:
                return value
        return None

    def _kill_clobbered(self, store: insts.StoreInst, available):
        return [
            (prior, value) for prior, value in available
            if self.alias.alias(prior.pointer, store.pointer)
            == AliasResult.NO_ALIAS
        ]
