"""IR cloning utilities shared by the inliner, the trace cache, and the
self-extending-code demonstrations."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir import instructions as insts
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Value


def clone_blocks(blocks: Sequence[BasicBlock],
                 value_map: Dict[int, Value],
                 name_suffix: str = ".i") -> List[BasicBlock]:
    """Deep-copy *blocks*, remapping operands through *value_map*.

    ``value_map`` maps id(original value) -> replacement and is extended
    in place with every cloned block and instruction.  Operands not in
    the map (constants, globals, values defined outside *blocks*) are
    shared, not copied.
    """
    clones: List[BasicBlock] = []
    for block in blocks:
        clone = BasicBlock((block.name or "bb") + name_suffix)
        value_map[id(block)] = clone
        clones.append(clone)

    def remap(value: Value) -> Value:
        return value_map.get(id(value), value)

    for block, clone in zip(blocks, clones):
        for inst in block.instructions:
            copied = _clone_instruction(inst, remap)
            value_map[id(inst)] = copied
            clone.instructions.append(copied)
            copied.parent = clone
    # Second pass fixes forward references (phis and branches to blocks
    # were already handled by pre-mapping blocks; instruction forward
    # refs need patching).
    for block, clone in zip(blocks, clones):
        for original, copied in zip(block.instructions,
                                    clone.instructions):
            for index, operand in enumerate(original.operands):
                wanted = value_map.get(id(operand), operand)
                if copied.operand(index) is not wanted:
                    copied.set_operand(index, wanted)
    return clones


def _clone_instruction(inst: insts.Instruction, remap) -> insts.Instruction:
    """Clone one instruction with operands passed through *remap*.

    Forward references (an operand defined later) still map to the
    original here; the caller patches them once every clone exists.
    """
    ops = [remap(op) for op in inst.operands]
    copied: insts.Instruction
    if isinstance(inst, insts.BinaryInst):
        copied = type(inst)(ops[0], ops[1], inst.name)
    elif isinstance(inst, insts.RetInst):
        copied = insts.RetInst(ops[0] if ops else None)
    elif isinstance(inst, insts.BranchInst):
        if inst.is_conditional:
            copied = insts.BranchInst(condition=ops[0], if_true=ops[1],
                                      if_false=ops[2])
        else:
            copied = insts.BranchInst(target=ops[0])
    elif isinstance(inst, insts.MultiwayBranchInst):
        cases = [(ops[i], ops[i + 1]) for i in range(2, len(ops), 2)]
        copied = insts.MultiwayBranchInst(ops[0], ops[1], cases)
    elif isinstance(inst, insts.InvokeInst):
        copied = insts.InvokeInst(ops[0], ops[3:], ops[1], ops[2],
                                  inst.name)
    elif isinstance(inst, insts.UnwindInst):
        copied = insts.UnwindInst()
    elif isinstance(inst, insts.CallInst):
        copied = insts.CallInst(ops[0], ops[1:], inst.name)
    elif isinstance(inst, insts.LoadInst):
        copied = insts.LoadInst(ops[0], inst.name)
    elif isinstance(inst, insts.StoreInst):
        copied = insts.StoreInst(ops[0], ops[1])
    elif isinstance(inst, insts.GetElementPtrInst):
        copied = insts.GetElementPtrInst(ops[0], ops[1:], inst.name)
    elif isinstance(inst, insts.AllocaInst):
        copied = insts.AllocaInst(inst.allocated_type,
                                  ops[0] if ops else None, inst.name)
    elif isinstance(inst, insts.CastInst):
        copied = insts.CastInst(ops[0], inst.type, inst.name)
    elif isinstance(inst, insts.PhiInst):
        pairs = [(ops[i], ops[i + 1]) for i in range(0, len(ops), 2)]
        copied = insts.PhiInst(inst.type, pairs, inst.name)
    else:
        raise TypeError("cannot clone {0!r}".format(inst))
    copied.exceptions_enabled = inst.exceptions_enabled
    return copied


def clone_function_body(source: Function) -> Function:
    """A free-standing deep copy of *source* (same name, same block
    names, not registered in any module).

    Used by the tier-3 builder, which must split critical edges before
    lowering without mutating the interpreted function.
    """
    clone = Function(source.function_type, source.name,
                     [arg.name for arg in source.args],
                     internal=source.internal)
    clone.smc_version = source.smc_version
    value_map: Dict[int, Value] = {
        id(arg): clone_arg
        for arg, clone_arg in zip(source.args, clone.args)}
    for block in clone_blocks(source.blocks, value_map, name_suffix=""):
        block.parent = clone
        clone.blocks.append(block)
    return clone


def clone_function_into(source: Function, target_name: str,
                        module) -> Function:
    """Create a fresh function in *module* with a deep copy of
    *source*'s body (used by SMC donors and trace materialization)."""
    clone = module.create_function(
        target_name, source.function_type,
        [arg.name for arg in source.args], internal=source.internal)
    value_map: Dict[int, Value] = {
        id(arg): clone_arg
        for arg, clone_arg in zip(source.args, clone.args)}
    for block in clone_blocks(source.blocks, value_map, name_suffix=""):
        block.parent = clone
        clone.blocks.append(block)
    return clone
