"""Whole-program global cleanup (link time).

After linking, internal functions and globals with no remaining
references are dead; constant globals whose value is known fold into
their loads.  This runs after inlining in the link-time pipeline of
Section 4.2.
"""

from __future__ import annotations

from typing import List

from repro.ir import instructions as insts
from repro.ir.module import Function, GlobalVariable, Module
from repro.transforms.pass_manager import ModulePass


class GlobalOptimizer(ModulePass):
    name = "globalopt"

    def run_module(self, module: Module) -> bool:
        changed = False
        if self._fold_constant_global_loads(module):
            changed = True
        if self._remove_dead_internals(module):
            changed = True
        return changed

    # -- constant folding through globals ------------------------------------

    def _fold_constant_global_loads(self, module: Module) -> bool:
        from repro.ir.values import Constant

        changed = False
        for variable in module.globals.values():
            if not variable.is_constant or variable.initializer is None:
                continue
            if not variable.value_type.is_scalar:
                continue
            initializer = variable.initializer
            if not isinstance(initializer, Constant):
                continue
            if isinstance(initializer, (Function, GlobalVariable)):
                pass  # symbol addresses are still constants; fold them too
            for use in list(variable.uses):
                user = use.user
                if isinstance(user, insts.LoadInst) \
                        and user.pointer is variable:
                    user.replace_all_uses_with(initializer)
                    user.erase()
                    changed = True
        return changed

    # -- dead symbol removal -----------------------------------------------------

    def _remove_dead_internals(self, module: Module) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for function in list(module.functions.values()):
                if function.internal and not function.has_uses() \
                        and function.name != "main":
                    self._delete_function(module, function)
                    progress = changed = True
            for variable in list(module.globals.values()):
                if variable.internal and not variable.has_uses():
                    module.remove_global(variable)
                    progress = changed = True
        return changed

    @staticmethod
    def _delete_function(module: Module, function: Function) -> None:
        for block in list(function.blocks):
            for inst in list(block.instructions):
                inst.drop_all_references()
            block.instructions.clear()
        function.blocks.clear()
        module.remove_function(function)


def internalize(module: Module, keep: List[str] = ("main",)) -> int:
    """Mark every symbol except *keep* as internal — the step a linker
    performs once it knows the whole program (enables dead-global
    elimination and more aggressive inlining decisions)."""
    count = 0
    kept = set(keep)
    for function in module.functions.values():
        if function.name not in kept and not function.is_declaration \
                and not function.internal:
            function.internal = True
            count += 1
    for variable in module.globals.values():
        if variable.name not in kept and not variable.internal \
                and variable.initializer is not None:
            variable.internal = True
            count += 1
    return count
