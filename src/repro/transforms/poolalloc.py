"""Automatic Pool Allocation (Section 5.1).

"Automatic Pool Allocation is a powerful interprocedural transformation
that uses Data Structure Analysis to partition the heap into separate
pools for each data structure instance."

The reproduction implements the core transformation for function-local
data structures: for every disjoint, non-escaping heap instance that DSA
identifies, the pass

1. creates a pool descriptor on the function's stack frame,
2. rewrites every ``malloc`` feeding that instance into ``poolalloc``
   and every ``free`` into ``poolfree``, and
3. destroys the pool (releasing everything at once) before each return.

The pool runtime (``poolinit``/``poolalloc``/``poolfree``/
``pooldestroy``) is provided by :mod:`repro.execution.runtime` as bump
allocation over page-sized slabs, so pooled programs run measurably
fewer allocator operations — the effect the pool-allocation bench
reports.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.dsa import DSGraph, DSNode
from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import Function, Module
from repro.ir.values import const_int
from repro.transforms.pass_manager import ModulePass

BYTE_PTR = types.pointer_to(types.SBYTE)

#: LLVA signatures of the pool runtime.
POOL_RUNTIME_SIGNATURES = {
    "poolinit": types.function_of(types.VOID, (BYTE_PTR, types.UINT)),
    "poolalloc": types.function_of(BYTE_PTR, (BYTE_PTR, types.UINT)),
    "poolfree": types.function_of(types.VOID, (BYTE_PTR, BYTE_PTR)),
    "pooldestroy": types.function_of(types.VOID, (BYTE_PTR,)),
}

#: Size in bytes of the opaque pool descriptor object.
POOL_DESCRIPTOR_BYTES = 64


class AutomaticPoolAllocation(ModulePass):
    name = "poolalloc"

    def run_module(self, module: Module) -> bool:
        changed = False
        for function in list(module.functions.values()):
            if function.is_declaration:
                continue
            if self._pool_allocate_function(module, function):
                changed = True
        return changed

    # -- per function -----------------------------------------------------------

    def _pool_allocate_function(self, module: Module,
                                function: Function) -> bool:
        graph = DSGraph(function)
        instances = graph.local_heap_instances()
        if not instances:
            return False
        changed = False
        for instance in instances:
            mallocs = [site for site in instance.allocation_sites
                       if isinstance(site, insts.CallInst)
                       and site.parent is not None]
            if not mallocs:
                continue
            self._rewrite_instance(module, function, graph,
                                   instance, mallocs)
            changed = True
        return changed

    def _rewrite_instance(self, module: Module, function: Function,
                          graph: DSGraph, instance: DSNode,
                          mallocs: List[insts.CallInst]) -> None:
        poolinit = module.get_or_declare_function(
            "poolinit", POOL_RUNTIME_SIGNATURES["poolinit"])
        poolalloc = module.get_or_declare_function(
            "poolalloc", POOL_RUNTIME_SIGNATURES["poolalloc"])
        poolfree = module.get_or_declare_function(
            "poolfree", POOL_RUNTIME_SIGNATURES["poolfree"])
        pooldestroy = module.get_or_declare_function(
            "pooldestroy", POOL_RUNTIME_SIGNATURES["pooldestroy"])

        # 1. Pool descriptor in the entry block; initialize it there.
        entry = function.entry_block
        descriptor_type = types.array_of(types.SBYTE,
                                         POOL_DESCRIPTOR_BYTES)
        descriptor = insts.AllocaInst(descriptor_type, name="pool")
        pool_ptr = insts.GetElementPtrInst(
            descriptor,
            [const_int(types.LONG, 0), const_int(types.LONG, 0)],
            name="pool.ptr")
        init = insts.CallInst(
            poolinit, [pool_ptr, const_int(types.UINT, 16)])
        for position, inst in enumerate((descriptor, pool_ptr, init)):
            entry.instructions.insert(position, inst)
            inst.parent = entry

        # 2. Rewrite allocation and deallocation sites of this instance.
        for malloc in mallocs:
            replacement = insts.CallInst(
                poolalloc, [pool_ptr, malloc.args[0]], malloc.name)
            malloc.parent.insert_before(malloc, replacement)
            malloc.replace_all_uses_with(replacement)
            malloc.erase()
        for block in function.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, insts.CallInst) \
                        and isinstance(inst.callee, Function) \
                        and inst.callee.name == "free" \
                        and graph.points_to_same(inst.args[0],
                                                 _any_site(instance)):
                    replacement = insts.CallInst(
                        poolfree, [pool_ptr, inst.args[0]])
                    block.insert_before(inst, replacement)
                    inst.erase()

        # 3. Destroy the pool before every return.
        for block in function.blocks:
            terminator = block.terminator if block.has_terminator() else None
            if isinstance(terminator, insts.RetInst):
                destroy = insts.CallInst(pooldestroy, [pool_ptr])
                block.insert_before(terminator, destroy)


def _any_site(instance: DSNode):
    return instance.allocation_sites[0]
