"""Direct interpreter for LLVA virtual object code.

This is the semantic oracle of the reproduction: it defines what every
LLVA program *means*, so translated native code can be differentially
tested against it.  It implements:

* all 28 instructions with the paper's type semantics;
* the precise-exception model of Section 3.3, including the per-
  instruction ``ExceptionsEnabled`` mask and dynamic masking via
  ``llva.exceptions.set``;
* ``invoke``/``unwind`` stack unwinding;
* trap handlers, the privileged bit, and the ``llva.*`` intrinsics of
  Section 3.5;
* the self-modifying-code rule of Section 3.4 (active invocations keep
  executing the old body; only future invocations see the new one).

The engine is an explicit frame stack — no host recursion — so deeply
recursive LLVA programs (the QuadTree benchmarks) run regardless of the
host recursion limit, and the stack-walking intrinsics are trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro import observe
from repro.execution.events import (
    ExecutionTrap,
    ExitRequest,
    TrapKind,
    UnwindSignal,
)
from repro.execution.image import ProgramImage
from repro.execution.memory import Memory, MemoryError_
from repro.execution.runtime import RuntimeLibrary, is_runtime_name
from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import (
    Argument,
    Constant,
    ConstantBool,
    ConstantFP,
    ConstantInt,
    ConstantNull,
    UndefValue,
)

_F32 = types.FLOAT


class StepLimitExceeded(Exception):
    """The configured ``max_steps`` budget was exhausted."""


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    return_value: object
    steps: int
    output: str
    exit_status: int = 0


class _Frame:
    """One LLVA activation record."""

    __slots__ = ("function", "block", "index", "registers", "saved_sp",
                 "call_inst", "is_trap_handler")

    def __init__(self, function: Function, saved_sp: int,
                 call_inst: Optional[insts.Instruction]):
        self.function = function
        self.block: BasicBlock = function.entry_block
        self.index = 0
        self.registers: Dict[int, object] = {}
        self.saved_sp = saved_sp
        self.call_inst = call_inst
        self.is_trap_handler = False


class Interpreter:
    """Executes LLVA modules directly.

    ``engine="fast"`` dispatches construction to
    :class:`repro.execution.fastpath.FastInterpreter`, the pre-decoded
    closure-threaded engine; the default ``"reference"`` engine is this
    class, the semantic oracle.
    """

    def __new__(cls, module: Optional[Module] = None,
                target: Optional[types.TargetData] = None,
                privileged: bool = False,
                max_steps: Optional[int] = None,
                engine: str = "reference",
                decode_cache=None,
                sanitize: bool = False,
                tier2=False,
                tier2_threshold: Optional[int] = None,
                profiler=None,
                tier3: bool = False,
                tier3_threshold: Optional[int] = None,
                tier3_target: Optional[str] = None):
        if cls is Interpreter and engine == "fast":
            from repro.execution.fastpath import FastInterpreter
            return object.__new__(FastInterpreter)
        return object.__new__(cls)

    def __init__(self, module: Module,
                 target: Optional[types.TargetData] = None,
                 privileged: bool = False,
                 max_steps: Optional[int] = None,
                 engine: str = "reference",
                 decode_cache=None,
                 sanitize: bool = False,
                 tier2=False,
                 tier2_threshold: Optional[int] = None,
                 profiler=None,
                 tier3: bool = False,
                 tier3_threshold: Optional[int] = None,
                 tier3_target: Optional[str] = None):
        if engine not in ("reference", "fast"):
            raise ValueError("unknown engine {0!r}".format(engine))
        if tier2 or tier3:
            raise ValueError(
                "tier2 requires the fast engine (engine=\"fast\")")
        self.engine = "reference"
        self.module = module
        self.target = target or module.target_data
        if sanitize:
            from repro.execution.sanitizer import SanitizedMemory
            self.memory = SanitizedMemory(self.target)
        else:
            self.memory = Memory(self.target)
        self.image = ProgramImage(module, self.memory)
        self.runtime = RuntimeLibrary(self.memory, lambda: self.steps)
        self.steps = 0
        self.max_steps = max_steps
        self.privileged = privileged
        self.exceptions_dynamic = True
        self.trap_handlers: Dict[int, int] = {}
        self.io_channels: Dict[int, List[int]] = {}
        #: Called with the Function whenever SMC rewrites it, so a JIT can
        #: invalidate cached translations (Section 3.4).
        self.smc_listeners: List[Callable[[Function], None]] = []
        self._frames: List[_Frame] = []
        self._last_trap_registers: Dict[int, int] = {}
        #: Optional StepProfiler (repro.observe.profiler) receiving
        #: frame-transition callbacks; None costs one test per call/ret.
        self.profiler = profiler
        #: Active FlightRecorder, refreshed from repro.observe at each
        #: run() so hot paths (and tier-2 generated code) can guard on
        #: a plain attribute instead of a module call.
        self.flight = None
        self._dispatch = {
            "add": self._exec_arith, "sub": self._exec_arith,
            "mul": self._exec_arith, "div": self._exec_arith,
            "rem": self._exec_arith,
            "and": self._exec_logical, "or": self._exec_logical,
            "xor": self._exec_logical,
            "shl": self._exec_shift, "shr": self._exec_shift,
            "seteq": self._exec_compare, "setne": self._exec_compare,
            "setlt": self._exec_compare, "setgt": self._exec_compare,
            "setle": self._exec_compare, "setge": self._exec_compare,
            "ret": self._exec_ret, "br": self._exec_br,
            "mbr": self._exec_mbr, "invoke": self._exec_call,
            "unwind": self._exec_unwind,
            "load": self._exec_load, "store": self._exec_store,
            "getelementptr": self._exec_gep, "alloca": self._exec_alloca,
            "cast": self._exec_cast, "call": self._exec_call,
            "phi": self._exec_phi_error,
            "vadd": self._exec_vbinary, "vsub": self._exec_vbinary,
            "vmul": self._exec_vbinary,
            "vsplat": self._exec_vsplat,
            "vreduce.add": self._exec_vreduce,
            "vreduce.min": self._exec_vreduce,
            "vreduce.max": self._exec_vreduce,
            "vload": self._exec_vload, "vstore": self._exec_vstore,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, function_name: str = "main",
            args: Sequence[object] = ()) -> ExecutionResult:
        """Execute *function_name* to completion and return the result."""
        function = self.module.get_function(function_name)
        result_value: object = None
        exit_status = 0
        flight = self.flight = observe.flight()
        if flight is not None:
            flight.record("run.begin", engine=self.engine,
                          entry=function_name)
        steps_before = self.steps
        self._push_call(function, list(args), call_inst=None)
        try:
            with observe.span("interp.run", entry=function_name):
                try:
                    result_value = self._run_loop()
                except ExitRequest as request:
                    exit_status = request.status
                    self._frames.clear()
        finally:
            if self.profiler is not None:
                self.profiler.flush(self.steps)
        observe.counter("run.steps", self.steps - steps_before,
                        engine="interp")
        if flight is not None:
            flight.record("run.end", engine=self.engine,
                          steps=self.steps - steps_before)
        return ExecutionResult(
            return_value=result_value,
            steps=self.steps,
            output=self.runtime.output_text(),
            exit_status=exit_status,
        )

    # ------------------------------------------------------------------
    # The main loop
    # ------------------------------------------------------------------

    def _run_loop(self) -> object:
        frames = self._frames
        # Hoisted so the disabled path pays one local-bool test per
        # step; opcode counts flush to the registry on loop exit.
        observing = observe.enabled()
        # Same discipline for the sanitizer: `san` is None unless the
        # interpreter was built with sanitize=True, so unsanitized runs
        # pay one local test per step.
        san = self.memory.san
        opcode_counts: Dict[str, int] = {}
        try:
            while frames:
                frame = frames[-1]
                inst = frame.block.instructions[frame.index]
                self.steps += 1
                if observing:
                    opcode = inst.opcode
                    opcode_counts[opcode] = \
                        opcode_counts.get(opcode, 0) + 1
                if san is not None:
                    san.set_site_frame(frame, inst)
                if self.max_steps is not None \
                        and self.steps > self.max_steps:
                    raise StepLimitExceeded(
                        "exceeded {0} steps".format(self.max_steps))
                try:
                    outcome = self._dispatch[inst.opcode](frame, inst)
                except MemoryError_ as fault:
                    outcome = self._handle_trap(frame, inst,
                                                fault.trap_number,
                                                fault.address or 0,
                                                fault.detail,
                                                fault.unmaskable)
                if outcome is not _NO_RESULT:
                    return outcome
            return None
        finally:
            if observing:
                for opcode, count in opcode_counts.items():
                    observe.counter("interp.opcode", count,
                                    opcode=opcode)

    # Sentinel meaning "keep looping".
    # (Returned by every executor except the final ret.)

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------

    def _value(self, frame: _Frame, operand) -> object:
        if isinstance(operand, Constant):
            if isinstance(operand, ConstantInt):
                return operand.value
            if isinstance(operand, ConstantFP):
                return operand.value
            if isinstance(operand, ConstantBool):
                return operand.value
            if isinstance(operand, ConstantNull):
                return 0
            if isinstance(operand, UndefValue):
                return _zero_of(operand.type)
            if isinstance(operand, (Function, GlobalVariable)):
                return self.image.address_of(operand.name)
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "unsupported constant operand")
        try:
            return frame.registers[id(operand)]
        except KeyError:
            raise ExecutionTrap(
                TrapKind.SOFTWARE_TRAP,
                "read of undefined register %{0}".format(operand.name))

    def _set(self, frame: _Frame, inst: insts.Instruction,
             value: object) -> None:
        frame.registers[id(inst)] = value

    # ------------------------------------------------------------------
    # Exception delivery (Section 3.3)
    # ------------------------------------------------------------------

    def _handle_trap(self, frame: _Frame, inst: insts.Instruction,
                     trap_number: int, info: int, detail: str = "",
                     unmaskable: bool = False):
        """Apply the ExceptionsEnabled rules to a raised condition."""
        if not unmaskable \
                and not (inst.exceptions_enabled
                         and self.exceptions_dynamic):
            # Masked: the exception is ignored.  The instruction completes
            # with a defined default result (zero) so execution stays
            # deterministic across engines.
            if inst.produces_value:
                self._set(frame, inst, _zero_of(inst.type))
            frame.index += 1
            return _NO_RESULT
        return self._deliver_trap(frame, inst, trap_number, info, detail)

    def _deliver_trap(self, frame: _Frame, inst: Optional[insts.Instruction],
                      trap_number: int, info: int, detail: str = ""):
        observe.counter("run.traps", 1, engine="interp",
                        trap=str(trap_number))
        flight = self.flight
        handler_address = self.trap_handlers.get(trap_number)
        if handler_address is None:
            if flight is not None:
                flight.record("trap.unhandled", engine=self.engine,
                              trap=trap_number, detail=detail)
                flight.autodump("unhandled trap %d" % trap_number)
            raise ExecutionTrap(trap_number,
                                detail or "no handler registered", info)
        handler = self.image.function_at(handler_address)
        if handler is None or handler.is_declaration:
            if flight is not None:
                flight.record("trap.unhandled", engine=self.engine,
                              trap=trap_number,
                              detail="handler not an LLVA function")
                flight.autodump("unhandled trap %d" % trap_number)
            raise ExecutionTrap(trap_number,
                                "trap handler is not an LLVA function")
        if flight is not None:
            flight.record("trap.deliver", engine=self.engine,
                          trap=trap_number, handler=handler.name)
        # Snapshot the interrupted frame's register file for
        # llva.register.read, using the "standard, program-independent
        # register numbering scheme" of Section 3.5: arguments first (in
        # order), then every value-producing instruction in block order.
        self._last_trap_registers = self._number_registers(frame)
        # The faulting instruction is skipped after the handler returns;
        # its result (if any) is zero.  This gives trap handlers resume
        # semantics without exposing I-ISA state.
        if inst is not None and inst.produces_value:
            self._set(frame, inst, _zero_of(inst.type))
        if inst is not None:
            frame.index += 1
        trap_frame = self._push_call(
            handler, [trap_number & 0xFFFFFFFF, info], call_inst=None)
        trap_frame.is_trap_handler = True
        return _NO_RESULT

    def _number_registers(self, frame: _Frame) -> Dict[int, int]:
        """The V-ABI register numbering: argument i is register i; the
        k-th value-producing instruction (block order) is register
        len(args)+k.  Only integer-representable values are exposed."""
        numbered: Dict[int, int] = {}
        index = 0
        for arg in frame.function.args:
            value = frame.registers.get(id(arg))
            if isinstance(value, (int, bool)):
                numbered[index] = int(value)
            index += 1
        for inst in frame.function.instructions():
            if not inst.produces_value:
                continue
            value = frame.registers.get(id(inst))
            if isinstance(value, (int, bool)):
                numbered[index] = int(value)
            index += 1
        return numbered

    # ------------------------------------------------------------------
    # Calls, returns, unwinding
    # ------------------------------------------------------------------

    def _push_call(self, function: Function, args: List[object],
                   call_inst: Optional[insts.Instruction]) -> _Frame:
        if function.is_declaration:
            raise ExecutionTrap(
                TrapKind.SOFTWARE_TRAP,
                "call to undefined function %{0}".format(function.name))
        frame = _Frame(function, self.memory.stack_pointer, call_inst)
        if len(args) != len(function.args):
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "argument count mismatch calling %{0}"
                                .format(function.name))
        for formal, actual in zip(function.args, args):
            frame.registers[id(formal)] = actual
        self._frames.append(frame)
        if self.profiler is not None:
            self.profiler.push(self.steps, function.name, "tier1")
        return frame

    def _exec_call(self, frame: _Frame, inst):
        callee = inst.callee
        function: Optional[Function]
        if isinstance(callee, Function):
            function = callee
        else:
            address = self._value(frame, callee)
            function = self.image.function_at(int(address))
            if function is None:
                raise ExecutionTrap(
                    TrapKind.MEMORY_FAULT,
                    "indirect call to non-function address 0x{0:x}"
                    .format(int(address)), int(address))
        args = [self._value(frame, a) for a in inst.args]
        if function.is_intrinsic:
            result = self._call_intrinsic(frame, function.name, args)
            if inst.produces_value:
                self._set(frame, inst, result)
            self._advance_after_call(frame, inst)
            return _NO_RESULT
        if function.is_declaration and is_runtime_name(function.name):
            result = self.runtime.call(function.name, args)
            if inst.produces_value:
                self._set(frame, inst, result)
            self._advance_after_call(frame, inst)
            return _NO_RESULT
        self._push_call(function, args, call_inst=inst)
        return _NO_RESULT

    def _advance_after_call(self, frame: _Frame, inst) -> None:
        """Move past a completed call/invoke in *frame*."""
        if isinstance(inst, insts.InvokeInst):
            self._enter_block(frame, inst.normal_dest)
        else:
            frame.index += 1

    def _exec_ret(self, frame: _Frame, inst: insts.RetInst):
        value = (self._value(frame, inst.return_value)
                 if inst.return_value is not None else None)
        self.memory.pop_frame(frame.saved_sp)
        self._frames.pop()
        if self.profiler is not None:
            self.profiler.pop(self.steps)
        if not self._frames:
            return value  # program result
        if frame.is_trap_handler:
            # Resumption state was already arranged by _deliver_trap.
            return _NO_RESULT
        caller = self._frames[-1]
        call_inst = frame.call_inst
        if call_inst is None:
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "broken return linkage")
        if call_inst.produces_value:
            self._set(caller, call_inst, value)
        self._advance_after_call(caller, call_inst)
        return _NO_RESULT

    def _exec_unwind(self, frame: _Frame, inst):
        """Pop frames to the dynamically nearest ``invoke``."""
        profiler = self.profiler
        while self._frames:
            top = self._frames.pop()
            if profiler is not None:
                profiler.pop(self.steps)
            self.memory.pop_frame(top.saved_sp)
            call_inst = top.call_inst
            if not self._frames:
                break
            if isinstance(call_inst, insts.InvokeInst):
                caller = self._frames[-1]
                self._enter_block(caller, call_inst.unwind_dest)
                return _NO_RESULT
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "unwind with no active invoke")

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def _enter_block(self, frame: _Frame, block: BasicBlock) -> None:
        """Branch *frame* to *block*, executing its phis atomically."""
        previous = frame.block
        frame.block = block
        phis = block.phis()
        if phis:
            # All phis read their inputs before any phi writes (standard
            # simultaneous-assignment semantics).
            incoming = []
            for phi in phis:
                value = phi.incoming_for_block(previous)
                if value is None:
                    raise ExecutionTrap(
                        TrapKind.SOFTWARE_TRAP,
                        "phi in %{0} missing edge from %{1}"
                        .format(block.name, previous.name))
                incoming.append(self._value(frame, value))
            for phi, value in zip(phis, incoming):
                frame.registers[id(phi)] = value
            self.steps += len(phis)
        frame.index = len(phis)

    def _exec_br(self, frame: _Frame, inst: insts.BranchInst):
        if inst.is_conditional:
            taken = self._value(frame, inst.operand(0))
            target = inst.operand(1) if taken else inst.operand(2)
        else:
            target = inst.operand(0)
        self._enter_block(frame, target)
        return _NO_RESULT

    def _exec_mbr(self, frame: _Frame, inst: insts.MultiwayBranchInst):
        selector = self._value(frame, inst.selector)
        target = inst.default
        for case_value, case_label in inst.cases():
            if case_value.value == selector:
                target = case_label
                break
        self._enter_block(frame, target)
        return _NO_RESULT

    def _exec_phi_error(self, frame: _Frame, inst):
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "phi executed outside block entry")

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _exec_arith(self, frame: _Frame, inst):
        lhs = self._value(frame, inst.operand(0))
        rhs = self._value(frame, inst.operand(1))
        opcode = inst.opcode
        type_ = inst.type
        if type_.is_floating_point:
            result = _float_arith(opcode, lhs, rhs)
            if type_ is _F32:
                result = _round_f32(result)
            self._set(frame, inst, result)
            frame.index += 1
            return _NO_RESULT
        # Integer arithmetic with two's-complement wraparound.
        if opcode == "add":
            raw = lhs + rhs
        elif opcode == "sub":
            raw = lhs - rhs
        elif opcode == "mul":
            raw = lhs * rhs
        else:  # div / rem
            if rhs == 0:
                return self._handle_trap(frame, inst,
                                         TrapKind.DIVIDE_BY_ZERO, 0)
            quotient = abs(lhs) // abs(rhs)
            if (lhs < 0) != (rhs < 0):
                quotient = -quotient
            if opcode == "div":
                raw = quotient
            else:
                raw = lhs - quotient * rhs
        wrapped = type_.wrap(raw)
        if wrapped != raw and inst.exceptions_enabled \
                and self.exceptions_dynamic:
            return self._handle_trap(frame, inst,
                                     TrapKind.INTEGER_OVERFLOW, 0)
        self._set(frame, inst, wrapped)
        frame.index += 1
        return _NO_RESULT

    def _exec_logical(self, frame: _Frame, inst):
        lhs = self._value(frame, inst.operand(0))
        rhs = self._value(frame, inst.operand(1))
        if inst.type.is_bool:
            lhs_bits, rhs_bits = int(lhs), int(rhs)
        else:
            lhs_bits, rhs_bits = lhs, rhs
        opcode = inst.opcode
        if opcode == "and":
            raw = lhs_bits & rhs_bits
        elif opcode == "or":
            raw = lhs_bits | rhs_bits
        else:
            raw = lhs_bits ^ rhs_bits
        if inst.type.is_bool:
            self._set(frame, inst, bool(raw & 1))
        else:
            self._set(frame, inst, inst.type.wrap(raw))
        frame.index += 1
        return _NO_RESULT

    def _exec_shift(self, frame: _Frame, inst):
        value = self._value(frame, inst.operand(0))
        amount = self._value(frame, inst.operand(1)) & (inst.type.bits - 1)
        if inst.opcode == "shl":
            raw = value << amount
        else:
            # shr: arithmetic for signed types, logical for unsigned.
            if inst.type.is_signed:
                raw = value >> amount
            else:
                raw = (value & ((1 << inst.type.bits) - 1)) >> amount
        self._set(frame, inst, inst.type.wrap(raw))
        frame.index += 1
        return _NO_RESULT

    def _exec_compare(self, frame: _Frame, inst):
        lhs = self._value(frame, inst.operand(0))
        rhs = self._value(frame, inst.operand(1))
        relation = inst.relation
        if relation == "eq":
            result = lhs == rhs
        elif relation == "ne":
            result = lhs != rhs
        elif relation == "lt":
            result = lhs < rhs
        elif relation == "gt":
            result = lhs > rhs
        elif relation == "le":
            result = lhs <= rhs
        else:
            result = lhs >= rhs
        self._set(frame, inst, bool(result))
        frame.index += 1
        return _NO_RESULT

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def _exec_load(self, frame: _Frame, inst: insts.LoadInst):
        address = self._value(frame, inst.pointer)
        value = self.memory.read_typed(int(address), inst.type)
        self._set(frame, inst, value)
        frame.index += 1
        return _NO_RESULT

    def _exec_store(self, frame: _Frame, inst: insts.StoreInst):
        address = self._value(frame, inst.pointer)
        value = self._value(frame, inst.value)
        self.memory.write_typed(int(address), inst.value.type, value)
        frame.index += 1
        return _NO_RESULT

    def _exec_gep(self, frame: _Frame, inst: insts.GetElementPtrInst):
        address = int(self._value(frame, inst.pointer))
        pointee = inst.pointer.type.pointee
        target = self.target
        current: types.Type = pointee
        for position, index_value in enumerate(inst.indices):
            index = int(self._value(frame, index_value))
            if position == 0:
                address += index * target.size_of(current)
            elif current.is_struct:
                address += target.struct_offsets(current)[index]
                current = current.fields[index]
            else:  # array
                address += index * target.size_of(current.element)
                current = current.element
        self._set(frame, inst, address & _pointer_mask(target))
        frame.index += 1
        return _NO_RESULT

    def _exec_alloca(self, frame: _Frame, inst: insts.AllocaInst):
        count = 1
        if inst.count is not None:
            count = int(self._value(frame, inst.count))
        size = self.target.size_of(inst.allocated_type) * max(count, 0)
        align = max(self.target.align_of(inst.allocated_type), 1)
        try:
            address = self.memory.push_frame(max(size, 1), align)
        except ExecutionTrap as trap:
            return self._handle_trap(frame, inst, trap.trap_number, 0,
                                     trap.detail, trap.unmaskable)
        self._set(frame, inst, address)
        frame.index += 1
        return _NO_RESULT

    # ------------------------------------------------------------------
    # Vector extension
    # ------------------------------------------------------------------
    #
    # Vector register values are plain tuples of lane values.  Every
    # executor walks lanes 0..L-1 in order and reuses the scalar
    # arithmetic helpers, so a vectorized loop is bit-identical to its
    # scalar original (including float association and per-lane fault
    # addresses) — the property the differential harness checks.

    def _exec_vbinary(self, frame: _Frame, inst):
        lhs = self._value(frame, inst.operand(0))
        rhs = self._value(frame, inst.operand(1))
        opcode = inst.opcode[1:]  # vadd -> add, ...
        element = inst.type.element
        if element.is_floating_point:
            result = tuple(_float_arith(opcode, a, b)
                           for a, b in zip(lhs, rhs))
            if element is _F32:
                result = tuple(_round_f32(v) for v in result)
        elif opcode == "add":
            result = tuple(element.wrap(a + b) for a, b in zip(lhs, rhs))
        elif opcode == "sub":
            result = tuple(element.wrap(a - b) for a, b in zip(lhs, rhs))
        else:
            result = tuple(element.wrap(a * b) for a, b in zip(lhs, rhs))
        observe.counter("vec.lanes", inst.type.lanes, engine="interp")
        self._set(frame, inst, result)
        frame.index += 1
        return _NO_RESULT

    def _exec_vsplat(self, frame: _Frame, inst):
        scalar = self._value(frame, inst.scalar)
        observe.counter("vec.lanes", inst.type.lanes, engine="interp")
        self._set(frame, inst, (scalar,) * inst.type.lanes)
        frame.index += 1
        return _NO_RESULT

    def _exec_vreduce(self, frame: _Frame, inst):
        acc = self._value(frame, inst.init)
        lanes = self._value(frame, inst.vector)
        kind = inst.kind
        element = inst.type
        if kind == "add":
            if element.is_floating_point:
                for lane in lanes:
                    acc = acc + lane
                    if element is _F32:
                        acc = _round_f32(acc)
            else:
                for lane in lanes:
                    acc = element.wrap(acc + lane)
        elif kind == "min":
            for lane in lanes:
                acc = lane if lane < acc else acc
        else:
            for lane in lanes:
                acc = lane if lane > acc else acc
        observe.counter("vec.lanes", len(lanes), engine="interp")
        self._set(frame, inst, acc)
        frame.index += 1
        return _NO_RESULT

    def _exec_vload(self, frame: _Frame, inst):
        address = int(self._value(frame, inst.pointer))
        element = inst.type.element
        stride = self.target.size_of(element)
        read = self.memory.read_typed
        result = tuple(read(address + i * stride, element)
                       for i in range(inst.type.lanes))
        observe.counter("vec.lanes", inst.type.lanes, engine="interp")
        self._set(frame, inst, result)
        frame.index += 1
        return _NO_RESULT

    def _exec_vstore(self, frame: _Frame, inst):
        address = int(self._value(frame, inst.pointer))
        value = self._value(frame, inst.value)
        element = inst.value.type.element
        stride = self.target.size_of(element)
        write = self.memory.write_typed
        for i, lane in enumerate(value):
            write(address + i * stride, element, lane)
        observe.counter("vec.lanes", len(value), engine="interp")
        frame.index += 1
        return _NO_RESULT

    # ------------------------------------------------------------------
    # Cast
    # ------------------------------------------------------------------

    def _exec_cast(self, frame: _Frame, inst: insts.CastInst):
        value = self._value(frame, inst.value)
        self._set(frame, inst,
                  cast_value(value, inst.value.type, inst.type, self.target))
        frame.index += 1
        return _NO_RESULT

    # ------------------------------------------------------------------
    # Intrinsics (Section 3.4, 3.5, 4.1)
    # ------------------------------------------------------------------

    def _call_intrinsic(self, frame: _Frame, name: str,
                        args: List[object]) -> object:
        from repro.ir.intrinsics import intrinsic_info

        info = intrinsic_info(name)
        if info.privileged and not self.privileged:
            raise ExecutionTrap(TrapKind.PRIVILEGE_VIOLATION,
                                "{0} requires the privileged bit".format(name))
        if name == "llva.trap.register":
            self.trap_handlers[int(args[0])] = int(args[1])
            return None
        if name == "llva.trap.raise":
            result = self._deliver_trap(frame, None,
                                        int(args[0]), int(args[1]))
            if result is not _NO_RESULT:  # pragma: no cover - defensive
                raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                    "trap handler returned a value")
            return None
        if name == "llva.exceptions.set":
            self.exceptions_dynamic = bool(args[0])
            return None
        if name == "llva.priv.enabled":
            return self.privileged
        if name == "llva.priv.set":
            self.privileged = bool(args[0])
            return None
        if name == "llva.register.read":
            return self._last_trap_registers.get(int(args[0]), 0) \
                & 0xFFFFFFFFFFFFFFFF
        if name == "llva.stack.depth":
            return len(self._frames) & 0xFFFFFFFF
        if name == "llva.stack.caller":
            level = int(args[0])
            index = len(self._frames) - 1 - level
            if index < 0:
                return 0
            function = self._frames[index].function
            return self.image.address_of(function.name)
        if name == "llva.pagetable.map":
            vaddr, _paddr, _prot = args
            if not self.memory.is_mapped(int(vaddr)):
                self.memory.add_region(int(vaddr), 4096)
            return None
        if name == "llva.pagetable.unmap":
            return None  # mappings are never physically reclaimed here
        if name == "llva.io.read":
            channel = self.io_channels.get(int(args[0]), [])
            return channel.pop(0) if channel else 0
        if name == "llva.io.write":
            self.io_channels.setdefault(int(args[0]), []).append(int(args[1]))
            return None
        if name == "llva.smc.replace":
            return self._intrinsic_smc_replace(args)
        if name == "llva.sec.register":
            return None
        if name == "llva.storage.register":
            # Recorded for LLEE; meaningless to a bare interpreter run.
            self.storage_api_address = int(args[0])
            return None
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "unimplemented intrinsic {0}".format(name))

    storage_api_address: int = 0

    def _intrinsic_smc_replace(self, args: List[object]) -> None:
        target_fn = self.image.function_at(int(args[0]))
        donor_fn = self.image.function_at(int(args[1]))
        if target_fn is None or donor_fn is None:
            raise ExecutionTrap(TrapKind.MEMORY_FAULT,
                                "llva.smc.replace of non-function address")
        target_fn.replace_body_from(donor_fn)
        for listener in self.smc_listeners:
            listener(target_fn)
        return None


# Module-level sentinel: _run_loop keeps going while executors return this.
_NO_RESULT = object()


def _zero_of(type_: types.Type):
    """The defined default result for a masked-exception instruction."""
    if type_.is_vector:
        return (_zero_of(type_.element),) * type_.lanes
    if type_.is_floating_point:
        return 0.0
    if type_.is_bool:
        return False
    return 0


def cast_value(value, source: types.Type, dest: types.Type,
               target: types.TargetData):
    """The ``cast`` conversion matrix, shared with the constant folder."""
    if source is dest:
        return value
    if dest.is_bool:
        return bool(value)
    if dest.is_integer:
        if source.is_floating_point:
            if value != value or value in (float("inf"), float("-inf")):
                raw = 0  # NaN/inf to int is undefined in C; pin to zero
            else:
                raw = int(value)  # C-style truncation toward zero
        elif source.is_bool:
            raw = 1 if value else 0
        else:  # integer or pointer
            raw = int(value)
        return dest.wrap(raw)
    if dest.is_floating_point:
        if source.is_bool:
            result = 1.0 if value else 0.0
        else:
            result = float(value)
        if dest is _F32:
            result = _round_f32(result)
        return result
    if dest.is_pointer:
        if source.is_bool:
            return 1 if value else 0
        return int(value) & _pointer_mask(target)
    raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                        "invalid cast {0} -> {1}".format(source, dest))


def _pointer_mask(target: types.TargetData) -> int:
    return (1 << (target.pointer_size * 8)) - 1


def _float_arith(opcode: str, lhs: float, rhs: float) -> float:
    if opcode == "add":
        return lhs + rhs
    if opcode == "sub":
        return lhs - rhs
    if opcode == "mul":
        return lhs * rhs
    if opcode == "min":
        # The machine-level reduce fold: lhs is the accumulator, rhs the
        # lane.  `lane if lane REL acc else acc`, exactly as the
        # reference interpreter's vreduce walks lanes (keeps the
        # accumulator on a NaN lane).
        return rhs if rhs < lhs else lhs
    if opcode == "max":
        return rhs if rhs > lhs else lhs
    if opcode == "div":
        if rhs == 0.0:
            # IEEE: infinity / NaN, never a trap.
            if lhs == 0.0:
                return float("nan")
            return float("inf") if lhs > 0 else float("-inf")
        return lhs / rhs
    # rem: C fmod semantics (sign of the dividend).
    if rhs == 0.0:
        return float("nan")
    import math
    return math.fmod(lhs, rhs)


def _round_f32(value: float) -> float:
    import struct as _struct
    return _struct.unpack("<f", _struct.pack("<f", value))[0]
