"""The minimal runtime library external to the V-ISA.

LLVA deliberately has no runtime system (design goal #1) — but programs
still call externally-provided routines: allocation, output, process exit.
In the paper these are the C library, reached through ordinary ``call``
instructions ("LLVA executables can invoke native libraries", Section
4.1).  Here the host implements them.

Every routine has a fixed LLVA signature so modules can declare them
type-safely via :func:`declare_runtime`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.execution.events import ExecutionTrap, ExitRequest, TrapKind
from repro.ir import types
from repro.ir.module import Function, Module

BYTE_PTR = types.pointer_to(types.SBYTE)

#: name -> LLVA function type of every runtime routine.
RUNTIME_SIGNATURES: Dict[str, types.FunctionType] = {
    "malloc": types.function_of(BYTE_PTR, (types.UINT,)),
    "free": types.function_of(types.VOID, (BYTE_PTR,)),
    "print_int": types.function_of(types.VOID, (types.INT,)),
    "print_long": types.function_of(types.VOID, (types.LONG,)),
    "print_uint": types.function_of(types.VOID, (types.UINT,)),
    "print_double": types.function_of(types.VOID, (types.DOUBLE,)),
    "print_char": types.function_of(types.VOID, (types.SBYTE,)),
    "print_str": types.function_of(types.VOID, (BYTE_PTR,)),
    "print_newline": types.function_of(types.VOID, ()),
    "exit": types.function_of(types.VOID, (types.INT,)),
    "abort": types.function_of(types.VOID, ()),
    "clock_ticks": types.function_of(types.ULONG, ()),
    # Pool runtime for Automatic Pool Allocation (Section 5.1).
    "poolinit": types.function_of(types.VOID, (BYTE_PTR, types.UINT)),
    "poolalloc": types.function_of(BYTE_PTR, (BYTE_PTR, types.UINT)),
    "poolfree": types.function_of(types.VOID, (BYTE_PTR, BYTE_PTR)),
    "pooldestroy": types.function_of(types.VOID, (BYTE_PTR,)),
}


def is_runtime_name(name: str) -> bool:
    return name in RUNTIME_SIGNATURES


def declare_runtime(module: Module, name: str) -> Function:
    """Get-or-create the declaration of runtime routine *name*."""
    return module.get_or_declare_function(name, RUNTIME_SIGNATURES[name])


class RuntimeLibrary:
    """Host implementation of the runtime routines for one execution.

    Output is captured in :attr:`output` (list of text chunks) so program
    results are comparable across the interpreter and both native
    simulators.  ``clock_ticks`` returns the engine's deterministic
    instruction/cycle counter rather than wall-clock time.
    """

    POOL_SLAB_BYTES = 4096

    def __init__(self, memory, tick_source: Callable[[], int] = lambda: 0):
        self.memory = memory
        self.output: List[str] = []
        self._tick_source = tick_source
        # Pool-allocation bookkeeping (descriptor address -> pool state).
        self._pools: Dict[int, Dict[str, object]] = {}
        #: Allocator traffic counters for the pool-allocation bench:
        #: general-purpose malloc/free calls vs pool fast-path bumps.
        self.malloc_calls = 0
        self.free_calls = 0
        self.pool_allocs = 0
        self.pool_slab_mallocs = 0

    def output_text(self) -> str:
        return "".join(self.output)

    def call(self, name: str, args: List) -> object:
        handler = getattr(self, "_do_" + name, None)
        if handler is None:
            raise ExecutionTrap(
                TrapKind.SOFTWARE_TRAP,
                "call to unresolved external %{0}".format(name))
        return handler(*args)

    # -- allocation ------------------------------------------------------------

    def _do_malloc(self, size: int) -> int:
        self.malloc_calls += 1
        return self.memory.malloc(int(size))

    def _do_free(self, address: int) -> None:
        self.free_calls += 1
        self.memory.free(int(address))

    # -- pool runtime (Automatic Pool Allocation, Section 5.1) -------------------

    def _do_poolinit(self, descriptor: int, element_size: int) -> None:
        self._pools[int(descriptor)] = {
            "slabs": [], "cursor": 0, "remaining": 0,
            "element_size": int(element_size),
            # Live per-object allocations (llva-san mode only).
            "objects": set(),
        }

    def _do_poolalloc(self, descriptor: int, size: int) -> int:
        pool = self._pools.get(int(descriptor))
        if pool is None:
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "poolalloc on uninitialized pool")
        if self.memory.san is not None:
            # Sanitized: allocate per object so every pool object gets
            # its own redzones and quarantine entry — a bump allocation
            # inside a shared slab would hide overflows between
            # neighbouring pool objects.
            address = self.memory.malloc(max(int(size), 1))
            pool["objects"].add(address)
            self.pool_allocs += 1
            return address
        size = max(int(size), 1)
        size = (size + 15) // 16 * 16
        if pool["remaining"] < size:
            slab_size = max(self.POOL_SLAB_BYTES, size)
            slab = self.memory.malloc(slab_size)
            self.pool_slab_mallocs += 1
            pool["slabs"].append(slab)
            pool["cursor"] = slab
            pool["remaining"] = slab_size
        address = pool["cursor"]
        pool["cursor"] += size
        pool["remaining"] -= size
        self.pool_allocs += 1
        return address

    def _do_poolfree(self, descriptor: int, address: int) -> None:
        # Individual frees are deferred to pooldestroy — the whole point
        # of segregating a data structure instance into its own pool.
        pool = self._pools.get(int(descriptor))
        if pool is None:
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "poolfree on uninitialized pool")
        if self.memory.san is not None:
            # Sanitized pools free eagerly, so a dangling pool pointer
            # faults as use-after-free (and a bad address as
            # invalid/double free) instead of being silently deferred.
            address = int(address)
            self.memory.free(address)
            pool["objects"].discard(address)

    def _do_pooldestroy(self, descriptor: int) -> None:
        pool = self._pools.pop(int(descriptor), None)
        if pool is None:
            return  # double destroy is tolerated
        for slab in pool["slabs"]:
            self.memory.free(slab)
        for address in sorted(pool["objects"]):
            self.memory.free(address)

    # -- output ----------------------------------------------------------------

    def _do_print_int(self, value: int) -> None:
        self.output.append(str(int(value)))

    _do_print_long = _do_print_int
    _do_print_uint = _do_print_int

    def _do_print_double(self, value: float) -> None:
        self.output.append("{0:.6f}".format(float(value)))

    def _do_print_char(self, value: int) -> None:
        self.output.append(chr(int(value) & 0xFF))

    def _do_print_str(self, address: int) -> None:
        raw = self.memory.read_cstring(int(address))
        self.output.append(raw.decode("latin-1"))

    def _do_print_newline(self) -> None:
        self.output.append("\n")

    # -- process control -----------------------------------------------------------

    def _do_exit(self, status: int) -> None:
        raise ExitRequest(int(status))

    def _do_abort(self) -> None:
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP, "abort() called")

    def _do_clock_ticks(self) -> int:
        return int(self._tick_source())
