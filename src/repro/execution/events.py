"""Runtime events shared by the interpreter and the machine simulator.

Section 3.3's exception model in executable form:

* Each instruction defines a set of possible exception conditions.
* Delivered exceptions are *precise* with respect to visible LLVA state.
* The per-instruction ``ExceptionsEnabled`` attribute masks delivery
  statically; ``llva.exceptions.set`` masks it dynamically.

Exceptions that reach the top of the LLVA stack without a registered trap
handler escape to the host as :class:`ExecutionTrap`.
"""

from __future__ import annotations

from typing import Dict, Optional


class TrapKind:
    """Architectural trap numbers for the V-ABI."""

    MEMORY_FAULT = 1
    DIVIDE_BY_ZERO = 2
    INTEGER_OVERFLOW = 3
    STACK_OVERFLOW = 4
    PRIVILEGE_VIOLATION = 5
    SOFTWARE_TRAP = 6
    UNALIGNED_ACCESS = 7

    NAMES: Dict[int, str] = {
        1: "memory-fault",
        2: "divide-by-zero",
        3: "integer-overflow",
        4: "stack-overflow",
        5: "privilege-violation",
        6: "software-trap",
        7: "unaligned-access",
    }

    #: Exception-condition strings (Instruction.possible_exceptions) to
    #: trap numbers.
    BY_CONDITION: Dict[str, int] = {
        "memory-fault": 1,
        "divide-by-zero": 2,
        "integer-overflow": 3,
        "stack-overflow": 4,
    }


class ExecutionTrap(Exception):
    """A precise LLVA exception that was not handled by any trap handler."""

    #: Diagnostic traps (sanitizer reports) override this so the engines
    #: deliver them even when the faulting instruction's
    #: ExceptionsEnabled bit is cleared.
    unmaskable = False

    def __init__(self, trap_number: int, detail: str = "",
                 address: Optional[int] = None):
        name = TrapKind.NAMES.get(trap_number, "trap")
        message = "{0} (trap {1})".format(name, trap_number)
        if detail:
            message += ": " + detail
        super().__init__(message)
        self.trap_number = trap_number
        self.detail = detail
        self.address = address


class UnwindSignal(Exception):
    """Control transfer raised by the ``unwind`` instruction.

    Propagates through ``call`` frames and is caught by the dynamically
    nearest ``invoke``, which resumes at its unwind destination
    (Section 3.1's portable stack-unwinding mechanism).
    """


class ExitRequest(Exception):
    """Raised by the runtime ``exit`` routine to stop the program."""

    def __init__(self, status: int):
        super().__init__("exit({0})".format(status))
        self.status = status
