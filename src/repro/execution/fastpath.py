"""Fast execution engine: pre-decoded, closure-threaded interpretation.

The reference interpreter (:mod:`repro.execution.interpreter`) is the
semantic oracle: it re-resolves every operand and re-dispatches on the
opcode string at every step.  This module lowers each LLVA function,
once, into an array of specialized Python closures:

* **direct-threaded dispatch** — the run loop is
  ``f.ops[f.index](self, f)``; there is no opcode table;
* **decode-time operand resolution** — registers become dense list
  slots, constants are baked into the closure, globals keep a name and
  resolve through the image at run time;
* **dense register files** — each frame carries a flat list indexed by
  slot number instead of a per-frame dict.  Slot numbering is the same
  as the V-ABI register numbering (:meth:`Interpreter._number_registers`)
  so trap handlers observe identical register snapshots;
* **superinstruction fusion** — maximal straight-line runs of simple
  ops (arith/logical/shift/compare/load/store/gep/cast/alloca) are
  folded into a single fused closure, cutting dispatch overhead;
* **inline offset cache** — constant-index ``getelementptr`` folds to a
  single precomputed byte offset at decode time.

Decoded functions are cached per :class:`DecodeCache` keyed on the
function identity and its ``smc_version``, mirroring ``jit.py``'s
invalidation path: ``llva.smc.replace`` bumps the version, so active
invocations keep executing the old closures (they capture the old
instruction objects — exactly the Section 3.4 rule) while future
invocations decode the new body.

Semantics are differentially tested against the reference engine (see
``tests/execution/test_fastpath_differential.py``).  Known, documented
divergences are listed in ``docs/PERFORMANCE.md``; the headline ones:

* reading a never-written register yields 0 instead of the reference's
  software trap (unverified modules only — the verifier rejects such
  code);
* ``max_steps`` is enforced at control-flow edges and calls, so a
  straight-line run may overshoot the budget before
  :class:`StepLimitExceeded` is raised;
* call targets are classified (intrinsic / runtime / LLVA) at decode
  time rather than per call.
"""

from __future__ import annotations

import operator
import struct
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import observe
from repro.execution.events import ExecutionTrap, ExitRequest, TrapKind
from repro.execution.interpreter import (
    ExecutionResult,
    Interpreter,
    StepLimitExceeded,
    _NO_RESULT,
    _float_arith,
    _pointer_mask,
    _round_f32,
    _zero_of,
    cast_value,
)
from repro.execution.memory import MemoryError_, _FP_FORMAT
from repro.execution.runtime import is_runtime_name
from repro.execution.sanitizer import format_site
from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import (
    ConstantBool,
    ConstantFP,
    ConstantInt,
    ConstantNull,
    UndefValue,
)

#: Minimum straight-line run length worth fusing into a superinstruction.
FUSE_MIN = 3

# Run-loop protocol: a closure returns None to stay in the current
# frame's op array, _RESCHED to make the loop re-read the top frame
# (call/ret/trap), or a _Return carrying the program result.
_RESCHED = object()


class _Return:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _FastFrame:
    """One activation record of the fast engine."""

    __slots__ = ("function", "ops", "index", "regs", "saved_sp",
                 "ret_slot", "resume", "unwind_edge", "is_trap_handler",
                 "steps_at_entry", "osr_mark")

    def __init__(self, function, ops, regs, saved_sp, ret_slot,
                 resume, unwind_edge):
        self.function = function
        self.ops = ops
        self.index = 0
        self.regs = regs
        self.saved_sp = saved_sp
        self.ret_slot = ret_slot          # caller slot for the result; -1 = void
        self.resume = resume              # advances the caller past the call
        self.unwind_edge = unwind_edge    # invoke's unwind-dest edge, else None
        self.is_trap_handler = False
        self.steps_at_entry = 0           # for tier-2 step-credit promotion
        self.osr_mark = 0                 # back-edge OSR trigger baseline


class _Tier2Frame:
    """An activation running tier-2 compiled code.

    Duck-types :class:`_FastFrame` everywhere the engine touches frames:
    ``ops`` is a one-element tuple holding the tier-2 driver and
    ``index`` stays 0, so the ordinary run loop re-enters the driver
    whenever this frame is on top; ``saved_sp`` / ``unwind_edge`` /
    ``ret_slot`` / ``resume`` keep `_fast_return` and ``unwind`` working
    unchanged; ``regs`` is a one-slot landing pad a returning callee
    writes through ``ret_slot=0`` so the driver can ``send()`` the value
    into the suspended generator.
    """

    __slots__ = ("function", "ops", "index", "regs", "saved_sp",
                 "ret_slot", "resume", "unwind_edge", "is_trap_handler",
                 "steps_at_entry", "osr_mark", "gen", "started", "unit")

    def __init__(self, function, unit, gen, saved_sp, ret_slot,
                 resume, unwind_edge):
        self.function = function
        self.ops = _TIER2_OPS
        self.index = 0
        self.regs = [None]
        self.saved_sp = saved_sp
        self.ret_slot = ret_slot
        self.resume = resume
        self.unwind_edge = unwind_edge
        self.is_trap_handler = False
        self.steps_at_entry = -1          # tier-2 frames earn no credit
        self.osr_mark = 0
        self.gen = gen
        self.started = False
        self.unit = unit


def _t2_noop_resume(st, caller):
    """Resume closure for frames called *by* tier-2 code: the generator
    is resumed by the driver, nothing to advance."""


def _tier2_driver(st, f):
    """The single op of a tier-2 frame: pump the compiled generator.

    The generator yields requests for everything that needs the frame
    stack or the runtime; the driver services them inline (runtime and
    intrinsic calls), or pushes a frame and returns ``_RESCHED`` (LLVA
    calls, delivered traps), leaving the generator suspended at its
    ``yield``.  When that frame returns, the run loop lands back here
    and the value parked in ``f.regs[0]`` is sent into the generator.
    Runtime faults are *thrown* into the generator so the masking rules
    execute in compiled code with the frame's registers live.
    """
    gen = f.gen
    t0 = st.steps
    try:
        try:
            if f.started:
                value = f.regs[0]
                f.regs[0] = None
                request = gen.send(value)
            else:
                f.started = True
                request = gen.send(None)
            while True:
                kind = request[0]
                if kind == "call":
                    st._fast_push(request[1], list(request[2]), 0,
                                  _t2_noop_resume, None)
                    return _RESCHED
                if kind == "rt":
                    try:
                        result = st.runtime.call(request[1],
                                                 list(request[2]))
                    except MemoryError_ as fault:
                        request = gen.throw(fault)
                        continue
                    request = gen.send(result)
                    continue
                if kind == "intr":
                    request = _t2_intrinsic(st, f, gen, request[1],
                                            list(request[2]))
                    if request is _RESCHED:
                        return _RESCHED
                    continue
                if kind == "trap":
                    # A deliverable fault detected by compiled code.
                    # Deliver through the ordinary machinery (handler
                    # frame or escaping ExecutionTrap), and demote the
                    # function: trap-heavy code belongs on tier 1.
                    tier2 = st.tier2
                    if tier2 is not None:
                        tier2.note_deopt(f.function)
                    st._fast_deliver(f, 0, None, -1, request[1],
                                     request[2], request[3])
                    f.regs[0] = None
                    return _RESCHED
                if kind == "osr":
                    # A profiling unit's block counter crossed the
                    # upgrade threshold: fold its counters into the
                    # cache profile, recompile (ideally as a trace-
                    # guided superblock), and restart the replacement
                    # generator at the current block with the live
                    # registers.  When the upgrade is declined (pinned,
                    # raced) the old generator simply keeps running.
                    tier2 = st.tier2
                    new_unit = tier2.osr_upgrade(f.function, f.unit) \
                        if tier2 is not None else None
                    if new_unit is None or new_unit is f.unit:
                        request = gen.send(None)
                        continue
                    gi_frame = gen.gi_frame
                    local_values = gi_frame.f_locals \
                        if gi_frame is not None else {}
                    regs = tuple(local_values.get(name, 0)
                                 for name, _num in f.unit.snap_map)
                    gen.close()
                    f.unit = new_unit
                    f.gen = gen = new_unit.factory(
                        st, *([0] * new_unit.num_args),
                        __osr=(request[1], regs))
                    if st.profiler is not None:
                        st.profiler.replace(
                            st.steps, f.function.name,
                            "superblock" if new_unit.kind == "superblock"
                            else "tier2")
                    request = gen.send(None)
                    continue
                # "icall": classify at run time like _fast_call_any.
                address = request[1]
                fn = st.image.function_at(address)
                if fn is None:
                    raise ExecutionTrap(
                        TrapKind.MEMORY_FAULT,
                        "indirect call to non-function address 0x{0:x}"
                        .format(address), address)
                args = list(request[2])
                if fn.is_intrinsic:
                    request = _t2_intrinsic(st, f, gen, fn.name, args)
                    if request is _RESCHED:
                        return _RESCHED
                    continue
                if fn.is_declaration and is_runtime_name(fn.name):
                    try:
                        result = st.runtime.call(fn.name, args)
                    except MemoryError_ as fault:
                        request = gen.throw(fault)
                        continue
                    request = gen.send(result)
                    continue
                ms = st.max_steps
                if ms is not None and st.steps > ms:
                    raise StepLimitExceeded(
                        "exceeded {0} steps".format(ms))
                st._fast_push(fn, args, 0, _t2_noop_resume, None)
                return _RESCHED
        except StopIteration as stop:
            return st._fast_return(f, stop.value)
    finally:
        delta = st.steps - t0
        st.tier2_steps += delta
        # Tier-2 frames bypass the call-return credit that drives the
        # tier-1 -> tier-2 promotion, so the tier-3 rung keeps its own
        # ledger: steps spent inside a function's tier-2 unit.
        tier2 = st.tier2
        if tier2 is not None and delta and tier2.tier3:
            tier2.credit_tier3(f.function, delta)


def _t2_intrinsic(st, f, gen, name, args):
    """Service an intrinsic request.  Returns the generator's next
    request, or ``_RESCHED`` when the intrinsic pushed a trap-handler
    frame (``llva.trap.raise``): the handler must run before the
    generator resumes, so the result is parked in the landing pad."""
    depth = len(st._frames)
    try:
        result = st._call_intrinsic(f, name, args)
    except MemoryError_ as fault:
        return gen.throw(fault)
    if len(st._frames) > depth:
        f.regs[0] = result
        return _RESCHED
    return gen.send(result)


_TIER2_OPS = (_tier2_driver,)


class _Tier3Frame:
    """An activation running tier-3 hosted native code.

    Duck-types :class:`_FastFrame` exactly like :class:`_Tier2Frame`
    (the generator here is the hosted machine-code executor from
    :mod:`repro.execution.machine_sim` instead of a compiled tier-2
    unit), so calls into and returns out of native frames reuse the
    tier-2 linkage unchanged.
    """

    __slots__ = ("function", "ops", "index", "regs", "saved_sp",
                 "ret_slot", "resume", "unwind_edge", "is_trap_handler",
                 "steps_at_entry", "osr_mark", "gen", "started", "unit")

    def __init__(self, function, unit, gen, saved_sp, ret_slot,
                 resume, unwind_edge):
        self.function = function
        self.ops = _TIER3_OPS
        self.index = 0
        self.regs = [None]
        self.saved_sp = saved_sp
        self.ret_slot = ret_slot
        self.resume = resume
        self.unwind_edge = unwind_edge
        self.is_trap_handler = False
        self.steps_at_entry = -1          # tier-3 frames earn no credit
        self.osr_mark = 0
        self.gen = gen
        self.started = False
        self.unit = unit


def _tier3_driver(st, f):
    """The single op of a tier-3 frame: pump the hosted executor.

    Same protocol as :func:`_tier2_driver` minus the requests native
    code never issues (``trap``/``osr``), plus ``deopt``: a deliverable
    fault abandons the native activation and
    :meth:`FastInterpreter._tier3_deopt` rebuilds a tier-1 frame from
    the executor's V-ABI register shadow before delivering the trap.
    """
    gen = f.gen
    t0 = st.steps
    try:
        try:
            if f.started:
                value = f.regs[0]
                f.regs[0] = None
                request = gen.send(value)
            else:
                f.started = True
                request = gen.send(None)
            while True:
                kind = request[0]
                if kind == "call":
                    st._fast_push(request[1], list(request[2]), 0,
                                  _t2_noop_resume, None)
                    return _RESCHED
                if kind == "rt":
                    try:
                        result = st.runtime.call(request[1],
                                                 list(request[2]))
                    except MemoryError_ as fault:
                        request = gen.throw(fault)
                        continue
                    request = gen.send(result)
                    continue
                if kind == "intr":
                    request = _t2_intrinsic(st, f, gen, request[1],
                                            list(request[2]))
                    if request is _RESCHED:
                        return _RESCHED
                    continue
                if kind == "deopt":
                    return st._tier3_deopt(f, request)
                # "icall": classify at run time like _fast_call_any.
                address = request[1]
                fn = st.image.function_at(address)
                if fn is None:
                    raise ExecutionTrap(
                        TrapKind.MEMORY_FAULT,
                        "indirect call to non-function address 0x{0:x}"
                        .format(address), address)
                args = list(request[2])
                if fn.is_intrinsic:
                    request = _t2_intrinsic(st, f, gen, fn.name, args)
                    if request is _RESCHED:
                        return _RESCHED
                    continue
                if fn.is_declaration and is_runtime_name(fn.name):
                    try:
                        result = st.runtime.call(fn.name, args)
                    except MemoryError_ as fault:
                        request = gen.throw(fault)
                        continue
                    request = gen.send(result)
                    continue
                ms = st.max_steps
                if ms is not None and st.steps > ms:
                    raise StepLimitExceeded(
                        "exceeded {0} steps".format(ms))
                st._fast_push(fn, args, 0, _t2_noop_resume, None)
                return _RESCHED
        except StopIteration as stop:
            return st._fast_return(f, stop.value)
    finally:
        st.tier3_steps += st.steps - t0


_TIER3_OPS = (_tier3_driver,)


def _phi_error_op(st, f):
    raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                        "phi executed outside block entry")


def _make_super(run: Tuple[Callable, ...], count: int):
    """Fuse a straight-line run of closures into one superinstruction.

    Each fused closure still bumps ``steps`` and sets ``f.index``
    itself, so a masked fault mid-run resumes at exactly the next fused
    position, and an unmasked fault returns _RESCHED through us with
    the faulting frame already pointing past the faulting instruction.
    """
    def superop(st, f):
        st.fused_runs += 1
        st.fused_instructions += count
        for op in run:
            r = op(st, f)
            if r is not None:
                return r
        return None
    return superop


def _fuse_block(ops: List[Callable], flags: List[bool]) -> int:
    """Replace maximal fusable runs in *ops* with superinstructions.

    Only position ``i`` of a run is replaced; the individual closures
    at ``i+1 .. j-1`` stay in place so trap handlers can resume into
    the middle of a fused run.  Returns the number of fused ops.
    """
    fused = 0
    n = len(ops)
    i = 0
    while i < n:
        if not flags[i]:
            i += 1
            continue
        j = i
        while j < n and flags[j]:
            j += 1
        if j - i >= FUSE_MIN:
            ops[i] = _make_super(tuple(ops[i:j]), j - i)
            fused += j - i
        i = j
    return fused


_INT_BIN_FN = {"add": operator.add, "sub": operator.sub,
               "mul": operator.mul}


def _lane_bump(lanes: int, engine: str):
    """Decode-time gate for the ``vec.lanes`` counter: returns a bound
    bump when observability is on at decode time, else ``None`` so the
    hot closures pay a single is-None test."""
    if not observe.enabled():
        return None

    def bump(_c=observe.counter, _n=lanes, _e=engine):
        _c("vec.lanes", _n, engine=_e)
    return bump


_INT_STRUCT_CODE = {(1, True): "b", (1, False): "B",
                    (2, True): "h", (2, False): "H",
                    (4, True): "i", (4, False): "I",
                    (8, True): "q", (8, False): "Q"}


def _vector_struct_format(element, esize: int, endian: str, lanes: int):
    """One struct format transferring a whole contiguous vector in a
    single bulk read/write, or ``None`` when the element has no
    fixed-width struct code (the caller keeps its per-lane path).
    Lane order within the format matches the 0..L-1 walk, and signed /
    unsigned integer codes reproduce the per-lane sign extension."""
    if element.is_floating_point:
        code = {4: "f", 8: "d"}.get(esize)
    elif getattr(element, "is_integer", False) \
            and getattr(element, "bits", 0) == esize * 8 \
            and not element.is_bool:
        code = _INT_STRUCT_CODE.get((esize, element.is_signed))
    else:
        code = None
    if code is None:
        return None
    return ("<" if endian == "little" else ">") + str(lanes) + code
_LOGICAL_FN = {"and": operator.and_, "or": operator.or_,
               "xor": operator.xor}
_CMP_FN = {"seteq": operator.eq, "setne": operator.ne,
           "setlt": operator.lt, "setgt": operator.gt,
           "setle": operator.le, "setge": operator.ge}


class DecodedFunction:
    """The decode product for one function body."""

    __slots__ = ("function", "smc_version", "num_slots", "num_args",
                 "entry_ops", "num_instructions", "fused_instructions")

    def __init__(self, function, smc_version, num_slots, num_args,
                 entry_ops, num_instructions, fused_instructions):
        self.function = function
        self.smc_version = smc_version
        self.num_slots = num_slots
        self.num_args = num_args
        self.entry_ops = entry_ops
        self.num_instructions = num_instructions
        self.fused_instructions = fused_instructions


class DecodeCacheStats:
    __slots__ = ("functions_decoded", "invalidations", "decode_seconds")

    def __init__(self):
        self.functions_decoded = 0
        self.invalidations = 0
        self.decode_seconds = 0.0


class DecodeCache:
    """Per-target cache of decoded functions, shared across runs.

    Invalidation mirrors ``jit.py``: register :meth:`listener` on the
    interpreter's ``smc_listeners`` (and, when block layouts can change
    underneath us, on ``SoftwareTraceCache.relayout_listeners``).  The
    version check on :meth:`decode` makes SMC invalidation belt-and-
    braces; the listener also frees the stale entry and counts it.
    """

    def __init__(self, target: types.TargetData, sanitize: bool = False,
                 osr: bool = False):
        self.target = target
        #: When set, every compiled closure is wrapped to publish its
        #: decode-time site string to the sanitizer before running, so a
        #: fault report can name the instruction.  Sanitized and
        #: unsanitized closures are different code — a cache is bound to
        #: one mode.
        self.sanitize = sanitize
        #: When set, loop back edges carry the on-stack-replacement
        #: check (see ``_Decoder._make_edge``).  Like ``sanitize``, the
        #: flag changes the compiled closures, so a cache is bound to
        #: one mode.
        self.osr = osr
        self.stats = DecodeCacheStats()
        # id(function) -> (smc_version, DecodedFunction, function).  The
        # function reference pins the object so the id stays unique.
        self._cache: Dict[int, Tuple[int, DecodedFunction, Function]] = {}

    def decode(self, function: Function) -> DecodedFunction:
        entry = self._cache.get(id(function))
        if entry is not None and entry[0] == function.smc_version:
            return entry[1]
        started = time.perf_counter()
        decoded = _decode_function(function, self.target, self.sanitize,
                                   self.osr)
        elapsed = time.perf_counter() - started
        self._cache[id(function)] = (function.smc_version, decoded, function)
        self.stats.functions_decoded += 1
        self.stats.decode_seconds += elapsed
        if observe.enabled():
            observe.counter("fastpath.functions_decoded", 1)
            observe.histogram("fastpath.decode_seconds", elapsed,
                              function=function.name)
        return decoded

    def invalidate(self, function: Function) -> None:
        if self._cache.pop(id(function), None) is not None:
            self.stats.invalidations += 1
            observe.counter("fastpath.invalidations", 1)

    def invalidate_all(self) -> None:
        for _, _, function in list(self._cache.values()):
            self.invalidate(function)

    def listener(self) -> Callable[[Function], None]:
        """A callback suitable for ``smc_listeners``/``relayout_listeners``."""
        return self.invalidate


def _getter(ctx, operand):
    """A ``(st, regs) -> value`` closure for one operand (slow path)."""
    kind, payload = ctx.resolve(operand)
    if kind == "s":
        def get(st, r, _s=payload):
            return r[_s]
    elif kind == "c":
        def get(st, r, _v=payload):
            return _v
    elif kind == "g":
        def get(st, r, _n=payload):
            return st.image.address_of(_n)
    else:
        name = getattr(payload, "name", None) or "?"

        def get(st, r, _n=name):
            raise ExecutionTrap(
                TrapKind.SOFTWARE_TRAP,
                "read of undefined register %{0}".format(_n))
    return get


class _Decoder:
    """Compiles one function's instructions into closures."""

    def __init__(self, function: Function, target: types.TargetData,
                 slot_of: Dict[int, int],
                 ops_map: Dict[int, List[Callable]],
                 osr: bool = False):
        self.function = function
        self.target = target
        self.slot_of = slot_of
        self.ops_map = ops_map
        self.osr = osr
        #: id(block) -> position in ``function.blocks``; an edge to an
        #: equal-or-earlier position is a back edge (loop header), the
        #: OSR trigger point.
        self.block_index = {id(b): i for i, b in
                            enumerate(function.blocks)}

    # -- operands ------------------------------------------------------

    def resolve(self, operand):
        """('s', slot) | ('c', value) | ('g', name) | ('x', operand)."""
        slot = self.slot_of.get(id(operand))
        if slot is not None:
            return ("s", slot)
        if isinstance(operand, (ConstantInt, ConstantFP, ConstantBool)):
            return ("c", operand.value)
        if isinstance(operand, ConstantNull):
            return ("c", 0)
        if isinstance(operand, UndefValue):
            return ("c", _zero_of(operand.type))
        if isinstance(operand, (Function, GlobalVariable)):
            return ("g", operand.name)
        return ("x", operand)

    def getter(self, operand):
        return _getter(self, operand)

    # -- instruction dispatch ------------------------------------------

    def compile(self, block: BasicBlock, inst, index: int):
        """Return ``(closure, fusable)`` for one instruction."""
        opcode = inst.opcode
        if opcode in ("add", "sub", "mul"):
            return self._compile_addsubmul(inst, index), True
        if opcode in ("div", "rem"):
            return self._compile_divrem(inst, index), True
        if opcode in ("and", "or", "xor"):
            return self._plain_binary(inst, index,
                                      _LOGICAL_FN[opcode]), True
        if opcode in ("shl", "shr"):
            return self._compile_shift(inst, index), True
        if opcode in _CMP_FN:
            return self._plain_binary(inst, index, _CMP_FN[opcode]), True
        if opcode == "load":
            return self._compile_load(inst, index), True
        if opcode == "store":
            return self._compile_store(inst, index), True
        if opcode == "getelementptr":
            return self._compile_gep(inst, index), True
        if opcode == "cast":
            return self._compile_cast(inst, index), True
        if opcode == "alloca":
            return self._compile_alloca(inst, index), True
        if opcode == "br":
            return self._compile_br(block, inst), False
        if opcode == "mbr":
            return self._compile_mbr(block, inst), False
        if opcode == "ret":
            return self._compile_ret(inst), False
        if opcode == "unwind":
            return _compile_unwind(), False
        if opcode in ("call", "invoke"):
            return self._compile_call(block, inst, index), False
        if opcode == "phi":
            return _phi_error_op, False
        if opcode in ("vadd", "vsub", "vmul"):
            return self._compile_vbinary(inst, index), True
        if opcode == "vsplat":
            return self._compile_vsplat(inst, index), True
        if opcode in ("vreduce.add", "vreduce.min", "vreduce.max"):
            return self._compile_vreduce(inst, index), True
        if opcode == "vload":
            return self._compile_vload(inst, index), True
        if opcode == "vstore":
            return self._compile_vstore(inst, index), True
        raise AssertionError("unknown opcode {0!r}".format(opcode))

    # -- integer / float arithmetic ------------------------------------

    def _compile_addsubmul(self, inst, index: int):
        if inst.type.is_floating_point:
            return self._float_binary(inst, index)
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        mask = (1 << inst.type.bits) - 1
        sign = (1 << (inst.type.bits - 1)) if inst.type.is_signed else 0
        fn = _INT_BIN_FN[inst.opcode]
        if inst.exceptions_enabled:
            return self._checked_arith(inst, index, fn, mask, sign)
        ka, va = self.resolve(inst.operand(0))
        kb, vb = self.resolve(inst.operand(1))
        if ka == "s" and kb == "s":
            def op(st, f, _a=va, _b=vb):
                st.steps += 1
                r = f.regs
                v = fn(r[_a], r[_b])
                r[dst] = ((v & mask) ^ sign) - sign
                f.index = nxt
        elif ka == "s" and kb == "c":
            def op(st, f, _a=va, _b=vb):
                st.steps += 1
                r = f.regs
                v = fn(r[_a], _b)
                r[dst] = ((v & mask) ^ sign) - sign
                f.index = nxt
        elif ka == "c" and kb == "s":
            def op(st, f, _a=va, _b=vb):
                st.steps += 1
                r = f.regs
                v = fn(_a, r[_b])
                r[dst] = ((v & mask) ^ sign) - sign
                f.index = nxt
        else:
            geta = self.getter(inst.operand(0))
            getb = self.getter(inst.operand(1))

            def op(st, f):
                st.steps += 1
                r = f.regs
                v = fn(geta(st, r), getb(st, r))
                r[dst] = ((v & mask) ^ sign) - sign
                f.index = nxt
        return op

    def _checked_arith(self, inst, index: int, fn, mask: int, sign: int):
        # !ee arithmetic: deliver INTEGER_OVERFLOW when the wrapped value
        # differs from the raw result (and dynamic masking permits),
        # otherwise store the wrapped value — never zero.
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        geta = self.getter(inst.operand(0))
        getb = self.getter(inst.operand(1))

        def op(st, f):
            st.steps += 1
            r = f.regs
            v = fn(geta(st, r), getb(st, r))
            w = ((v & mask) ^ sign) - sign
            if w != v and st.exceptions_dynamic:
                return st._fast_deliver(f, index, inst, dst,
                                        TrapKind.INTEGER_OVERFLOW, 0)
            r[dst] = w
            f.index = nxt
        return op

    def _float_binary(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        opcode = inst.opcode
        geta = self.getter(inst.operand(0))
        getb = self.getter(inst.operand(1))
        f32 = inst.type is types.FLOAT
        if opcode in _INT_BIN_FN and not f32:
            fn = _INT_BIN_FN[opcode]

            def op(st, f):
                st.steps += 1
                r = f.regs
                r[dst] = fn(geta(st, r), getb(st, r))
                f.index = nxt
        else:
            def op(st, f):
                st.steps += 1
                r = f.regs
                v = _float_arith(opcode, geta(st, r), getb(st, r))
                if f32:
                    v = _round_f32(v)
                r[dst] = v
                f.index = nxt
        return op

    def _compile_divrem(self, inst, index: int):
        if inst.type.is_floating_point:
            return self._float_binary(inst, index)
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        mask = (1 << inst.type.bits) - 1
        sign = (1 << (inst.type.bits - 1)) if inst.type.is_signed else 0
        is_div = inst.opcode == "div"
        signed = inst.type.is_signed
        kb, vb = self.resolve(inst.operand(1))
        if kb == "c" and isinstance(vb, int) and vb != 0 \
                and (signed or vb > 0) and not (signed and vb == -1):
            # Constant nonzero divisor: no zero check, and the result
            # cannot overflow (INT_MIN // -1 is excluded above), so the
            # wrap/!ee suffix drops too.  Unsigned operands are
            # non-negative, so host floor division *is* C truncating
            # division; signed keeps the abs/sign-fix trunc sequence.
            c = vb
            ka, va = self.resolve(inst.operand(0))
            geta = None if ka == "s" else self.getter(inst.operand(0))
            if not signed:
                if is_div:
                    if ka == "s":
                        def op(st, f, _a=va):
                            st.steps += 1
                            r = f.regs
                            r[dst] = r[_a] // c
                            f.index = nxt
                    else:
                        def op(st, f):
                            st.steps += 1
                            r = f.regs
                            r[dst] = geta(st, r) // c
                            f.index = nxt
                else:
                    if ka == "s":
                        def op(st, f, _a=va):
                            st.steps += 1
                            r = f.regs
                            r[dst] = r[_a] % c
                            f.index = nxt
                    else:
                        def op(st, f):
                            st.steps += 1
                            r = f.regs
                            r[dst] = geta(st, r) % c
                            f.index = nxt
                return op
            cab = abs(c)
            cneg = c < 0

            def op(st, f):
                st.steps += 1
                r = f.regs
                a = r[va] if geta is None else geta(st, r)
                q = abs(a) // cab
                if (a < 0) != cneg:
                    q = -q
                r[dst] = q if is_div else a - q * c
                f.index = nxt
            return op
        geta = self.getter(inst.operand(0))
        getb = self.getter(inst.operand(1))

        def op(st, f):
            st.steps += 1
            r = f.regs
            a = geta(st, r)
            b = getb(st, r)
            if b == 0:
                return st._fast_fault(f, index, inst, dst,
                                      TrapKind.DIVIDE_BY_ZERO, 0)
            # C-style truncating division, as in the reference engine.
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            v = q if is_div else a - q * b
            w = ((v & mask) ^ sign) - sign
            if w != v and inst.exceptions_enabled and st.exceptions_dynamic:
                return st._fast_deliver(f, index, inst, dst,
                                        TrapKind.INTEGER_OVERFLOW, 0)
            r[dst] = w
            f.index = nxt
        return op

    def _plain_binary(self, inst, index: int, fn):
        # and/or/xor on bool/int and the six compares: the host result is
        # already in range (& | ^ of in-range ints stay in range; compares
        # yield bool), so no wrap step.
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        ka, va = self.resolve(inst.operand(0))
        kb, vb = self.resolve(inst.operand(1))
        if ka == "s" and kb == "s":
            def op(st, f, _a=va, _b=vb):
                st.steps += 1
                r = f.regs
                r[dst] = fn(r[_a], r[_b])
                f.index = nxt
        elif ka == "s" and kb == "c":
            def op(st, f, _a=va, _b=vb):
                st.steps += 1
                r = f.regs
                r[dst] = fn(r[_a], _b)
                f.index = nxt
        elif ka == "c" and kb == "s":
            def op(st, f, _a=va, _b=vb):
                st.steps += 1
                r = f.regs
                r[dst] = fn(_a, r[_b])
                f.index = nxt
        else:
            geta = self.getter(inst.operand(0))
            getb = self.getter(inst.operand(1))

            def op(st, f):
                st.steps += 1
                r = f.regs
                r[dst] = fn(geta(st, r), getb(st, r))
                f.index = nxt
        return op

    def _compile_shift(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        bits = inst.type.bits
        bmask = bits - 1
        mask = (1 << bits) - 1
        sign = (1 << (bits - 1)) if inst.type.is_signed else 0
        is_shl = inst.opcode == "shl"
        ka, va = self.resolve(inst.operand(0))
        kb, vb = self.resolve(inst.operand(1))
        if kb == "c":
            amt = int(vb) & bmask
            if ka == "s":
                if is_shl:
                    def op(st, f, _a=va):
                        st.steps += 1
                        r = f.regs
                        v = r[_a] << amt
                        r[dst] = ((v & mask) ^ sign) - sign
                        f.index = nxt
                else:
                    # shr: arithmetic for signed, logical for unsigned —
                    # both are plain ``>>`` on the in-range host value.
                    def op(st, f, _a=va):
                        st.steps += 1
                        r = f.regs
                        r[dst] = r[_a] >> amt
                        f.index = nxt
                return op
        geta = self.getter(inst.operand(0))
        getb = self.getter(inst.operand(1))
        if is_shl:
            def op(st, f):
                st.steps += 1
                r = f.regs
                v = geta(st, r) << (getb(st, r) & bmask)
                r[dst] = ((v & mask) ^ sign) - sign
                f.index = nxt
        else:
            def op(st, f):
                st.steps += 1
                r = f.regs
                r[dst] = geta(st, r) >> (getb(st, r) & bmask)
                f.index = nxt
        return op

    # -- vector --------------------------------------------------------
    #
    # Vector values are host tuples, one entry per lane, and every lane
    # walk runs 0..L-1 in order so results (and fault addresses) match
    # the reference interpreter bit for bit.  ``vec.lanes`` counting is
    # gated at decode time: closures decoded with observability off
    # carry no bump at all (decode caches persist, so toggling
    # observability mid-process does not retrofit counting).
    #
    # Contiguous vector memory traffic goes through ONE region lookup:
    # the whole vector is read/written as a single bulk transfer and
    # decoded with one struct format (``_vector_struct_format``).  A
    # bulk transfer succeeds exactly when every per-lane transfer
    # would (a lane range is a subrange of the bulk range within the
    # same region), so results are unchanged; on a bulk fault the op
    # replays lane by lane to recover the reference tier's exact
    # faulting-lane address before delivering the trap.

    def _compile_vbinary(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        element = inst.type.element
        opcode = inst.opcode[1:]
        bump = _lane_bump(inst.type.lanes, "fast")
        fn = _INT_BIN_FN[opcode]
        if element is types.FLOAT:
            def lane(x, y, _f=fn):
                return _round_f32(_f(x, y))
        elif element.is_floating_point:
            lane = fn
        else:
            mask = (1 << element.bits) - 1
            sign = (1 << (element.bits - 1)) if element.is_signed else 0

            def lane(x, y, _f=fn):
                return ((_f(x, y) & mask) ^ sign) - sign
        ka, va = self.resolve(inst.operand(0))
        kb, vb = self.resolve(inst.operand(1))
        if ka == "s" and kb == "s":
            def op(st, f, _a=va, _b=vb):
                st.steps += 1
                r = f.regs
                r[dst] = tuple(map(lane, r[_a], r[_b]))
                if bump is not None:
                    bump()
                f.index = nxt
        else:
            geta = self.getter(inst.operand(0))
            getb = self.getter(inst.operand(1))

            def op(st, f):
                st.steps += 1
                r = f.regs
                r[dst] = tuple(map(lane, geta(st, r), getb(st, r)))
                if bump is not None:
                    bump()
                f.index = nxt
        return op

    def _compile_vsplat(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        lanes = inst.type.lanes
        bump = _lane_bump(lanes, "fast")
        kv, vv = self.resolve(inst.scalar)
        if kv == "c":
            value = (vv,) * lanes

            def op(st, f):
                st.steps += 1
                f.regs[dst] = value
                if bump is not None:
                    bump()
                f.index = nxt
        elif kv == "s":
            def op(st, f, _v=vv):
                st.steps += 1
                r = f.regs
                r[dst] = (r[_v],) * lanes
                if bump is not None:
                    bump()
                f.index = nxt
        else:
            getv = self.getter(inst.scalar)

            def op(st, f):
                st.steps += 1
                r = f.regs
                r[dst] = (getv(st, r),) * lanes
                if bump is not None:
                    bump()
                f.index = nxt
        return op

    def _compile_vreduce(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        element = inst.type
        kind = inst.kind
        bump = _lane_bump(inst.vector.type.lanes, "fast")
        if kind == "add":
            if element is types.FLOAT:
                def fold(acc, lanes):
                    for lane in lanes:
                        acc = _round_f32(acc + lane)
                    return acc
            elif element.is_floating_point:
                def fold(acc, lanes):
                    for lane in lanes:
                        acc += lane
                    return acc
            else:
                mask = (1 << element.bits) - 1
                sign = (1 << (element.bits - 1)) \
                    if element.is_signed else 0

                def fold(acc, lanes):
                    for lane in lanes:
                        acc = (((acc + lane) & mask) ^ sign) - sign
                    return acc
        elif kind == "min":
            # Explicit compare-and-keep (not host min/max): replays the
            # scalar ``x < acc`` select exactly, NaN ordering included.
            def fold(acc, lanes):
                for lane in lanes:
                    acc = lane if lane < acc else acc
                return acc
        else:  # max
            def fold(acc, lanes):
                for lane in lanes:
                    acc = lane if lane > acc else acc
                return acc
        ki, vi = self.resolve(inst.init)
        kv, vv = self.resolve(inst.vector)
        if ki == "s" and kv == "s":
            def op(st, f, _i=vi, _v=vv):
                st.steps += 1
                r = f.regs
                r[dst] = fold(r[_i], r[_v])
                if bump is not None:
                    bump()
                f.index = nxt
        elif ki == "c" and kv == "s":
            def op(st, f, _i=vi, _v=vv):
                st.steps += 1
                r = f.regs
                r[dst] = fold(_i, r[_v])
                if bump is not None:
                    bump()
                f.index = nxt
        else:
            geti = self.getter(inst.init)
            getv = self.getter(inst.vector)

            def op(st, f):
                st.steps += 1
                r = f.regs
                r[dst] = fold(geti(st, r), getv(st, r))
                if bump is not None:
                    bump()
                f.index = nxt
        return op

    def _compile_vload(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        element = inst.type.element
        lanes = inst.type.lanes
        target = self.target
        esize = target.size_of(element)
        endian = target.endianness
        total = lanes * esize
        offsets = tuple(range(0, total, esize))
        bump = _lane_bump(lanes, "fast")
        fmt = _vector_struct_format(element, esize, endian, lanes)
        kp, vp = self.resolve(inst.pointer)
        if kp != "s" or fmt is None:
            getp = None if kp == "s" else self.getter(inst.pointer)

            def op(st, f):
                st.steps += 1
                r = f.regs
                base = r[vp] if getp is None else int(getp(st, r))
                try:
                    value = tuple(st.memory.read_typed(base + off, element)
                                  for off in offsets)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, dst,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                r[dst] = value
                if bump is not None:
                    bump()
                f.index = nxt
            return op
        unpack = struct.unpack

        def op(st, f, _p=vp):
            st.steps += 1
            r = f.regs
            base = r[_p]
            try:
                value = unpack(fmt, st.memory.read_bytes(base, total))
            except MemoryError_:
                # Bulk fault: replay lane by lane for the exact
                # faulting-lane address (or succeed, when the lanes
                # straddle a region seam the bulk read cannot cross).
                try:
                    value = tuple(
                        st.memory.read_typed(base + off, element)
                        for off in offsets)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, dst,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
            r[dst] = value
            if bump is not None:
                bump()
            f.index = nxt
        return op

    def _compile_vstore(self, inst, index: int):
        nxt = index + 1
        element = inst.value.type.element
        lanes = inst.value.type.lanes
        target = self.target
        esize = target.size_of(element)
        endian = target.endianness
        offsets = tuple(range(0, lanes * esize, esize))
        bump = _lane_bump(lanes, "fast")
        fmt = _vector_struct_format(element, esize, endian, lanes)
        pack = struct.pack
        kp, vp = self.resolve(inst.pointer)
        kv, vv = self.resolve(inst.value)
        getv = None if kv == "s" else self.getter(inst.value)
        getp = None if kp == "s" else self.getter(inst.pointer)
        if element.is_floating_point:
            one = _FP_FORMAT[(esize, endian)]

            def lane_by_lane(st, base, value):
                # Stop-at-fault order: lanes before the faulting lane
                # stay written, exactly as the reference tier leaves
                # them.
                for slot, off in enumerate(offsets):
                    st.memory.write_bytes(
                        base + off, pack(one, float(value[slot])))

            def bulk_bytes(value):
                return pack(fmt, *value)
        else:
            mask = (1 << element.bits) - 1

            def lane_by_lane(st, base, value):
                for slot, off in enumerate(offsets):
                    st.memory.write_bytes(
                        base + off,
                        (value[slot] & mask).to_bytes(esize, endian))

            if fmt is not None and element.is_signed:
                # Signed struct codes reject the unsigned masked image;
                # encode through the unsigned code of the same width.
                fmt = fmt[:-1] + fmt[-1].upper()

            def bulk_bytes(value):
                return pack(fmt, *[x & mask for x in value])

        if fmt is None:
            def op(st, f):
                st.steps += 1
                r = f.regs
                base = r[vp] if getp is None else int(getp(st, r))
                value = r[vv] if getv is None else getv(st, r)
                try:
                    lane_by_lane(st, base, value)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, -1,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                if bump is not None:
                    bump()
                f.index = nxt
            return op

        def op(st, f):
            st.steps += 1
            r = f.regs
            base = r[vp] if getp is None else int(getp(st, r))
            value = r[vv] if getv is None else getv(st, r)
            try:
                st.memory.write_bytes(base, bulk_bytes(value))
            except MemoryError_:
                # Bulk fault: replay lane by lane so leading lanes land
                # and the trap carries the exact faulting-lane address
                # (or succeed across a region seam).
                try:
                    lane_by_lane(st, base, value)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, -1,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
            if bump is not None:
                bump()
            f.index = nxt
        return op

    # -- memory --------------------------------------------------------

    def _compile_load(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        type_ = inst.type
        target = self.target
        size = target.size_of(type_)
        endian = target.endianness
        fb = int.from_bytes
        kp, vp = self.resolve(inst.pointer)
        if kp != "s":
            # Cold path (globals / constant pointers): reuse the typed
            # reader from the memory layer.
            getp = self.getter(inst.pointer)

            def op(st, f):
                st.steps += 1
                try:
                    v = st.memory.read_typed(int(getp(st, f.regs)), type_)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, dst,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                f.regs[dst] = v
                f.index = nxt
            return op
        if isinstance(type_, types.IntegerType) and type_.is_signed:
            sbit = 1 << (type_.bits - 1)

            def op(st, f, _p=vp):
                st.steps += 1
                r = f.regs
                try:
                    raw = st.memory.read_bytes(r[_p], size)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, dst,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                r[dst] = (fb(raw, endian) ^ sbit) - sbit
                f.index = nxt
        elif type_.is_integer or type_.is_pointer:
            def op(st, f, _p=vp):
                st.steps += 1
                r = f.regs
                try:
                    raw = st.memory.read_bytes(r[_p], size)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, dst,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                r[dst] = fb(raw, endian)
                f.index = nxt
        elif type_.is_bool:
            def op(st, f, _p=vp):
                st.steps += 1
                r = f.regs
                try:
                    raw = st.memory.read_bytes(r[_p], size)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, dst,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                r[dst] = raw[0] != 0
                f.index = nxt
        else:  # floating point
            fmt = _FP_FORMAT[(size, endian)]
            unpack = struct.unpack

            def op(st, f, _p=vp):
                st.steps += 1
                r = f.regs
                try:
                    raw = st.memory.read_bytes(r[_p], size)
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, dst,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                r[dst] = unpack(fmt, raw)[0]
                f.index = nxt
        return op

    def _compile_store(self, inst, index: int):
        nxt = index + 1
        vtype = inst.value.type
        target = self.target
        size = target.size_of(vtype)
        endian = target.endianness
        kp, vp = self.resolve(inst.pointer)
        kv, vv = self.resolve(inst.value)
        if kp != "s":
            getp = self.getter(inst.pointer)
            getv = self.getter(inst.value)

            def op(st, f):
                st.steps += 1
                r = f.regs
                try:
                    st.memory.write_typed(int(getp(st, r)), vtype,
                                          getv(st, r))
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, -1,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                f.index = nxt
            return op
        if vtype.is_integer or vtype.is_pointer:
            mask = ((1 << vtype.bits) - 1 if vtype.is_integer
                    else _pointer_mask(target))
            if kv == "c":
                raw = (int(vv) & mask).to_bytes(size, endian)

                def op(st, f, _p=vp):
                    st.steps += 1
                    try:
                        st.memory.write_bytes(f.regs[_p], raw)
                    except MemoryError_ as fault:
                        return st._fast_fault(f, index, inst, -1,
                                              fault.trap_number,
                                              fault.address or 0,
                                              fault.detail,
                                              fault.unmaskable)
                    f.index = nxt
            elif kv == "s":
                def op(st, f, _p=vp, _v=vv):
                    st.steps += 1
                    r = f.regs
                    try:
                        st.memory.write_bytes(
                            r[_p], (r[_v] & mask).to_bytes(size, endian))
                    except MemoryError_ as fault:
                        return st._fast_fault(f, index, inst, -1,
                                              fault.trap_number,
                                              fault.address or 0,
                                              fault.detail,
                                              fault.unmaskable)
                    f.index = nxt
            else:
                getv = self.getter(inst.value)

                def op(st, f, _p=vp):
                    st.steps += 1
                    r = f.regs
                    try:
                        st.memory.write_bytes(
                            r[_p],
                            (int(getv(st, r)) & mask).to_bytes(size, endian))
                    except MemoryError_ as fault:
                        return st._fast_fault(f, index, inst, -1,
                                              fault.trap_number,
                                              fault.address or 0,
                                              fault.detail,
                                              fault.unmaskable)
                    f.index = nxt
        elif vtype.is_bool:
            getv = self.getter(inst.value)

            def op(st, f, _p=vp):
                st.steps += 1
                r = f.regs
                try:
                    st.memory.write_bytes(
                        r[_p], b"\x01" if getv(st, r) else b"\x00")
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, -1,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                f.index = nxt
        else:  # floating point
            fmt = _FP_FORMAT[(size, endian)]
            pack = struct.pack
            getv = self.getter(inst.value)

            def op(st, f, _p=vp):
                st.steps += 1
                r = f.regs
                try:
                    st.memory.write_bytes(r[_p],
                                          pack(fmt, float(getv(st, r))))
                except MemoryError_ as fault:
                    return st._fast_fault(f, index, inst, -1,
                                          fault.trap_number,
                                          fault.address or 0,
                                          fault.detail,
                                          fault.unmaskable)
                f.index = nxt
        return op

    def _compile_gep(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        target = self.target
        pointee = inst.pointer.type.pointee
        pmask = _pointer_mask(target)
        kp, vp = self.resolve(inst.pointer)
        const_indices = inst.constant_indices()
        if const_indices is not None:
            # The inline offset cache: fold the whole index chain to one
            # byte offset at decode time.
            off = target.gep_offset(pointee, list(const_indices))
            if kp == "s":
                def op(st, f, _p=vp):
                    st.steps += 1
                    r = f.regs
                    r[dst] = (r[_p] + off) & pmask
                    f.index = nxt
                return op
            getp = self.getter(inst.pointer)

            def op(st, f):
                st.steps += 1
                f.regs[dst] = (int(getp(st, f.regs)) + off) & pmask
                f.index = nxt
            return op
        # Mixed indices: split into a constant byte offset plus
        # (slot, scale) products computed at run time.
        const_off = 0
        parts: List[Tuple[int, int]] = []
        current: types.Type = pointee
        simple = True
        for position, index_value in enumerate(inst.indices):
            if position == 0:
                scale = target.size_of(current)
            elif current.is_struct:
                field = index_value.value  # constant ubyte by construction
                const_off += target.struct_offsets(current)[field]
                current = current.fields[field]
                continue
            else:  # array
                scale = target.size_of(current.element)
                current = current.element
            k, v = self.resolve(index_value)
            if k == "c":
                const_off += int(v) * scale
            elif k == "s":
                parts.append((v, scale))
            else:
                simple = False
                break
        if simple and kp == "s" and len(parts) == 1:
            s0, scale0 = parts[0]

            def op(st, f, _p=vp):
                st.steps += 1
                r = f.regs
                r[dst] = (r[_p] + const_off + r[s0] * scale0) & pmask
                f.index = nxt
            return op
        if simple:
            getp = self.getter(inst.pointer)
            part_list = tuple(parts)

            def op(st, f):
                st.steps += 1
                r = f.regs
                address = int(getp(st, r)) + const_off
                for s, scale in part_list:
                    address += r[s] * scale
                r[dst] = address & pmask
                f.index = nxt
            return op
        # Fully generic fallback mirroring the reference walk.
        getp = self.getter(inst.pointer)
        index_getters = tuple(self.getter(iv) for iv in inst.indices)

        def op(st, f):
            st.steps += 1
            r = f.regs
            address = int(getp(st, r))
            current = pointee
            for position, g in enumerate(index_getters):
                idx = int(g(st, r))
                if position == 0:
                    address += idx * target.size_of(current)
                elif current.is_struct:
                    address += target.struct_offsets(current)[idx]
                    current = current.fields[idx]
                else:
                    address += idx * target.size_of(current.element)
                    current = current.element
            r[dst] = address & pmask
            f.index = nxt
        return op

    def _compile_alloca(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        target = self.target
        esize = target.size_of(inst.allocated_type)
        align = max(target.align_of(inst.allocated_type), 1)
        count_operand = inst.count
        if count_operand is None or isinstance(count_operand, ConstantInt):
            count = 1 if count_operand is None else count_operand.value
            total = max(esize * max(count, 0), 1)

            def op(st, f):
                st.steps += 1
                try:
                    address = st.memory.push_frame(total, align)
                except ExecutionTrap as trap:
                    return st._fast_fault(f, index, inst, dst,
                                          trap.trap_number, 0,
                                          trap.detail, trap.unmaskable)
                f.regs[dst] = address
                f.index = nxt
            return op
        getc = self.getter(count_operand)

        def op(st, f):
            st.steps += 1
            size = esize * max(int(getc(st, f.regs)), 0)
            try:
                address = st.memory.push_frame(max(size, 1), align)
            except ExecutionTrap as trap:
                return st._fast_fault(f, index, inst, dst,
                                      trap.trap_number, 0,
                                      trap.detail, trap.unmaskable)
            f.regs[dst] = address
            f.index = nxt
        return op

    def _compile_cast(self, inst, index: int):
        dst = self.slot_of[id(inst)]
        nxt = index + 1
        source = inst.value.type
        dest = inst.type
        kv, vv = self.resolve(inst.value)
        if kv == "s" and source is dest:
            def op(st, f, _v=vv):
                st.steps += 1
                r = f.regs
                r[dst] = r[_v]
                f.index = nxt
            return op
        if kv == "s" and isinstance(dest, types.IntegerType) \
                and not source.is_floating_point:
            mask = (1 << dest.bits) - 1
            sign = (1 << (dest.bits - 1)) if dest.is_signed else 0

            def op(st, f, _v=vv):
                st.steps += 1
                r = f.regs
                r[dst] = ((r[_v] & mask) ^ sign) - sign
                f.index = nxt
            return op
        if kv == "s" and dest.is_pointer and not source.is_floating_point:
            pmask = _pointer_mask(self.target)

            def op(st, f, _v=vv):
                st.steps += 1
                r = f.regs
                r[dst] = r[_v] & pmask
                f.index = nxt
            return op
        if kv == "s" and dest.is_bool:
            def op(st, f, _v=vv):
                st.steps += 1
                r = f.regs
                r[dst] = bool(r[_v])
                f.index = nxt
            return op
        if kv == "s" and dest is types.DOUBLE \
                and not source.is_floating_point:
            def op(st, f, _v=vv):
                st.steps += 1
                r = f.regs
                r[dst] = float(r[_v])
                f.index = nxt
            return op
        # Everything else (float sources, F32 rounding, constants,
        # globals) goes through the oracle's cast_value.
        getv = self.getter(inst.value)
        target = self.target

        def op(st, f):
            st.steps += 1
            f.regs[dst] = cast_value(getv(st, f.regs), source, dest, target)
            f.index = nxt
        return op

    # -- control flow --------------------------------------------------

    def _make_edge(self, pred: BasicBlock, succ: BasicBlock, extra: int):
        """A closure transferring *f* to the start of *succ*.

        Bumps ``steps`` by *extra* (1 for a taken terminator, 0 for a
        call resume) plus one per phi, performs the simultaneous phi
        assignment, and enforces ``max_steps``.

        In OSR mode, back edges (*succ* at or before *pred* in block
        order — a loop header) additionally check the frame's step
        credit after the transfer: a tier-1 activation that has been
        spinning long enough is handed to ``st._osr_enter``, which maps
        the live register file onto a tier-2 generator and resumes at
        exactly this point — the start of *succ* with phis already
        assigned, which is where a tier-2 dispatch arm begins too.
        """
        inner = self._make_plain_edge(pred, succ, extra)
        if not self.osr:
            return inner
        if self.block_index.get(id(succ), 1 << 30) \
                > self.block_index.get(id(pred), -1):
            return inner
        bid = self.block_index[id(succ)]

        def osr_edge(st, f):
            r = inner(st, f)
            tier2 = st.tier2
            if tier2 is not None \
                    and st.steps - f.osr_mark \
                    >= tier2.osr_step_threshold:
                return st._osr_enter(f, bid)
            return r
        return osr_edge

    def _make_plain_edge(self, pred: BasicBlock, succ: BasicBlock,
                         extra: int):
        dst_ops = self.ops_map[id(succ)]
        phis = succ.phis()
        nphis = len(phis)
        start = nphis
        bump = extra + nphis
        if nphis == 0:
            if bump == 0:
                def edge0(st, f):
                    f.ops = dst_ops
                    f.index = 0
                return edge0

            def edge(st, f):
                steps = st.steps + bump
                st.steps = steps
                f.ops = dst_ops
                f.index = 0
                ms = st.max_steps
                if ms is not None and steps > ms:
                    raise StepLimitExceeded(
                        "exceeded {0} steps".format(ms))
            return edge
        moves = []
        for phi in phis:
            value = phi.incoming_for_block(pred)
            if value is None:
                sname = succ.name
                pname = pred.name

                def bad_edge(st, f):
                    raise ExecutionTrap(
                        TrapKind.SOFTWARE_TRAP,
                        "phi in %{0} missing edge from %{1}"
                        .format(sname, pname))
                return bad_edge
            moves.append((self.slot_of[id(phi)], self.resolve(value)))
        if nphis == 1:
            d0, (k0, v0) = moves[0]
            if k0 == "s":
                def edge(st, f):
                    steps = st.steps + bump
                    st.steps = steps
                    r = f.regs
                    r[d0] = r[v0]
                    f.ops = dst_ops
                    f.index = start
                    ms = st.max_steps
                    if ms is not None and steps > ms:
                        raise StepLimitExceeded(
                            "exceeded {0} steps".format(ms))
                return edge
            if k0 == "c":
                def edge(st, f):
                    steps = st.steps + bump
                    st.steps = steps
                    f.regs[d0] = v0
                    f.ops = dst_ops
                    f.index = start
                    ms = st.max_steps
                    if ms is not None and steps > ms:
                        raise StepLimitExceeded(
                            "exceeded {0} steps".format(ms))
                return edge
        dsts = tuple(m[0] for m in moves)
        gets = tuple(_getter_from(self, m[1]) for m in moves)

        def edge(st, f):
            steps = st.steps + bump
            st.steps = steps
            r = f.regs
            # Simultaneous assignment: read all incoming values before
            # writing any phi slot.
            vals = [g(st, r) for g in gets]
            for d, v in zip(dsts, vals):
                r[d] = v
            f.ops = dst_ops
            f.index = start
            ms = st.max_steps
            if ms is not None and steps > ms:
                raise StepLimitExceeded("exceeded {0} steps".format(ms))
        return edge

    def _compile_br(self, block: BasicBlock, inst):
        if not inst.is_conditional:
            return self._make_edge(block, inst.operand(0), 1)
        t_edge = self._make_edge(block, inst.operand(1), 1)
        f_edge = self._make_edge(block, inst.operand(2), 1)
        kc, vc = self.resolve(inst.operand(0))
        if kc == "s":
            def op(st, f, _c=vc):
                if f.regs[_c]:
                    return t_edge(st, f)
                return f_edge(st, f)
            return op
        if kc == "c":
            return t_edge if vc else f_edge
        getc = self.getter(inst.operand(0))

        def op(st, f):
            if getc(st, f.regs):
                return t_edge(st, f)
            return f_edge(st, f)
        return op

    def _compile_mbr(self, block: BasicBlock, inst):
        default_edge = self._make_edge(block, inst.default, 1)
        table = {}
        for case_value, case_label in inst.cases():
            if case_value.value not in table:  # first match wins
                table[case_value.value] = self._make_edge(block, case_label,
                                                          1)
        ks, vs = self.resolve(inst.selector)
        if ks == "s":
            def op(st, f, _s=vs):
                return table.get(f.regs[_s], default_edge)(st, f)
            return op
        if ks == "c":
            return table.get(vs, default_edge)
        gets = self.getter(inst.selector)

        def op(st, f):
            return table.get(gets(st, f.regs), default_edge)(st, f)
        return op

    def _compile_ret(self, inst):
        value_operand = inst.return_value
        if value_operand is None:
            def op(st, f):
                st.steps += 1
                return st._fast_return(f, None)
            return op
        kv, vv = self.resolve(value_operand)
        if kv == "s":
            def op(st, f, _v=vv):
                st.steps += 1
                return st._fast_return(f, f.regs[_v])
            return op
        if kv == "c":
            def op(st, f, _v=vv):
                st.steps += 1
                return st._fast_return(f, _v)
            return op
        getv = self.getter(value_operand)

        def op(st, f):
            st.steps += 1
            return st._fast_return(f, getv(st, f.regs))
        return op

    def _compile_call(self, block: BasicBlock, inst, index: int):
        dst = self.slot_of.get(id(inst), -1)
        nxt = index + 1
        is_invoke = isinstance(inst, insts.InvokeInst)
        if is_invoke:
            resume = self._make_edge(block, inst.normal_dest, 0)
            unwind_edge = self._make_edge(block, inst.unwind_dest, 0)
        else:
            def resume(st, cf, _n=nxt):
                cf.index = _n
            unwind_edge = None
        arg_gets = tuple(self.getter(a) for a in inst.args)
        callee = inst.callee
        if isinstance(callee, Function):
            # Classified once at decode time; the classification of a
            # direct callee (intrinsic / runtime / LLVA) cannot change.
            if callee.is_intrinsic:
                name = callee.name

                def op(st, f):
                    st.steps += 1
                    r = f.regs
                    args = [g(st, r) for g in arg_gets]
                    try:
                        result = st._call_intrinsic(f, name, args)
                    except MemoryError_ as fault:
                        return st._fast_fault(f, index, inst, dst,
                                              fault.trap_number,
                                              fault.address or 0,
                                              fault.detail,
                                              fault.unmaskable)
                    if dst >= 0:
                        r[dst] = result
                    resume(st, f)
                    return _RESCHED
                return op
            if callee.is_declaration and is_runtime_name(callee.name):
                name = callee.name

                def op(st, f):
                    st.steps += 1
                    r = f.regs
                    args = [g(st, r) for g in arg_gets]
                    try:
                        result = st.runtime.call(name, args)
                    except MemoryError_ as fault:
                        return st._fast_fault(f, index, inst, dst,
                                              fault.trap_number,
                                              fault.address or 0,
                                              fault.detail,
                                              fault.unmaskable)
                    if dst >= 0:
                        r[dst] = result
                    resume(st, f)
                    return None
                return op
            fn = callee

            def op(st, f):
                steps = st.steps + 1
                st.steps = steps
                ms = st.max_steps
                if ms is not None and steps > ms:
                    raise StepLimitExceeded(
                        "exceeded {0} steps".format(ms))
                r = f.regs
                args = [g(st, r) for g in arg_gets]
                st._fast_push(fn, args, dst, resume, unwind_edge)
                return _RESCHED
            return op
        getc = self.getter(callee)

        def op(st, f):
            st.steps += 1
            r = f.regs
            address = int(getc(st, r))
            fn = st.image.function_at(address)
            if fn is None:
                raise ExecutionTrap(
                    TrapKind.MEMORY_FAULT,
                    "indirect call to non-function address 0x{0:x}"
                    .format(address), address)
            args = [g(st, r) for g in arg_gets]
            return st._fast_call_any(f, fn, args, inst, dst, index,
                                     resume, unwind_edge)
        return op


def _getter_from(ctx: _Decoder, resolved):
    kind, payload = resolved
    if kind == "s":
        def get(st, r, _s=payload):
            return r[_s]
    elif kind == "c":
        def get(st, r, _v=payload):
            return _v
    else:  # 'g'
        def get(st, r, _n=payload):
            return st.image.address_of(_n)
    return get


def _compile_unwind():
    def op(st, f):
        st.steps += 1
        frames = st._frames
        memory = st.memory
        profiler = st.profiler
        while frames:
            top = frames.pop()
            if profiler is not None:
                profiler.pop(st.steps)
            memory.pop_frame(top.saved_sp)
            if not frames:
                break
            unwind_edge = top.unwind_edge
            if unwind_edge is not None:
                unwind_edge(st, frames[-1])
                return _RESCHED
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "unwind with no active invoke")
    return op


def _with_site(op: Callable, site: str) -> Callable:
    """Wrap a compiled closure so the sanitizer knows which instruction
    is executing.  Applied before fusion, so fused runs keep publishing
    per-instruction sites."""
    def wrapped(st, f):
        st.memory.san.current_site = site
        return op(st, f)
    return wrapped


def _decode_function(function: Function, target: types.TargetData,
                     sanitize: bool = False,
                     osr: bool = False) -> DecodedFunction:
    """Lower *function* into per-block closure arrays (see module doc)."""
    blocks = function.blocks
    # Slot numbering is the V-ABI register numbering: arguments first,
    # then every value-producing instruction in block order.
    slot_of: Dict[int, int] = {}
    slot = 0
    for arg in function.args:
        slot_of[id(arg)] = slot
        slot += 1
    num_args = len(function.args)
    num_instructions = 0
    for block in blocks:
        for inst in block.instructions:
            num_instructions += 1
            if inst.produces_value:
                slot_of[id(inst)] = slot
                slot += 1
    # Pre-create the per-block op lists so edge closures can capture
    # their target list objects before those are populated.
    ops_map: Dict[int, List[Callable]] = {id(b): [] for b in blocks}
    decoder = _Decoder(function, target, slot_of, ops_map, osr=osr)
    fused = 0
    for block in blocks:
        ops = ops_map[id(block)]
        instructions = block.instructions
        nphis = len(block.phis())
        flags = [False] * nphis
        ops.extend([_phi_error_op] * nphis)
        for index in range(nphis, len(instructions)):
            inst = instructions[index]
            op, fusable = decoder.compile(block, inst, index)
            if sanitize:
                op = _with_site(op, format_site(function.name, block.name,
                                                index, inst.opcode))
            ops.append(op)
            flags.append(fusable)
        fused += _fuse_block(ops, flags)
    return DecodedFunction(
        function=function,
        smc_version=function.smc_version,
        num_slots=slot,
        num_args=num_args,
        entry_ops=ops_map[id(blocks[0])] if blocks else [],
        num_instructions=num_instructions,
        fused_instructions=fused,
    )


class FastInterpreter(Interpreter):
    """The fast engine.  Construct directly, or via
    ``Interpreter(module, engine="fast")``."""

    def __init__(self, module: Module,
                 target: Optional[types.TargetData] = None,
                 privileged: bool = False,
                 max_steps: Optional[int] = None,
                 engine: str = "fast",
                 decode_cache: Optional[DecodeCache] = None,
                 sanitize: bool = False,
                 tier2=False,
                 tier2_threshold: Optional[int] = None,
                 tier3=False,
                 tier3_threshold: Optional[int] = None,
                 tier3_target: Optional[str] = None,
                 tier3_backend: Optional[str] = None,
                 profiler=None):
        super().__init__(module, target=target, privileged=privileged,
                         max_steps=max_steps, sanitize=sanitize,
                         profiler=profiler)
        self.engine = "fast"
        # Tier 2: hot functions compiled to Python bytecode.  Sanitized
        # runs pin everything to tier 1 — shadow-memory checking needs
        # per-instruction fault sites, which compiled code merges away
        # (documented in docs/PERFORMANCE.md, tested in the
        # differential suite).  Configured before the decode cache: the
        # tier-2 cache's OSR mode decides whether tier-1 back edges
        # carry the on-stack-replacement check.
        if (tier2 or tier3) and not sanitize:
            from repro.execution.tier2 import Tier2Cache
            if isinstance(tier2, Tier2Cache):
                if (tier2.target.pointer_size != self.target.pointer_size
                        or tier2.target.endianness
                        != self.target.endianness):
                    raise ValueError("tier-2 cache was built for a "
                                     "different target layout")
                self.tier2 = tier2
            else:
                kwargs = {}
                if tier2_threshold is not None:
                    kwargs["threshold"] = tier2_threshold
                if tier3:
                    kwargs["tier3"] = True
                    if tier3_threshold is not None:
                        kwargs["tier3_threshold"] = tier3_threshold
                    if tier3_target is not None:
                        kwargs["tier3_target"] = tier3_target
                    if tier3_backend is not None:
                        kwargs["tier3_backend"] = tier3_backend
                self.tier2 = Tier2Cache(module, self.target, **kwargs)
            self.smc_listeners.append(self.tier2.listener())
        else:
            self.tier2 = None
        osr = self.tier2 is not None and self.tier2.osr
        if decode_cache is not None:
            if (decode_cache.target.pointer_size != self.target.pointer_size
                    or decode_cache.target.endianness
                    != self.target.endianness):
                raise ValueError(
                    "decode cache was built for a different target layout")
            if decode_cache.sanitize != sanitize:
                raise ValueError(
                    "decode cache sanitize mode ({0}) does not match the "
                    "interpreter ({1})".format(decode_cache.sanitize,
                                               sanitize))
            if decode_cache.osr != osr:
                raise ValueError(
                    "decode cache OSR mode ({0}) does not match the "
                    "interpreter ({1})".format(decode_cache.osr, osr))
            self.decode_cache = decode_cache
        else:
            self.decode_cache = DecodeCache(self.target, sanitize=sanitize,
                                            osr=osr)
        self.smc_listeners.append(self.decode_cache.listener())
        self.fused_runs = 0
        self.fused_instructions = 0
        self.tier2_steps = 0
        self.tier2_calls = 0
        #: Superblock side exits taken (bumped by generated code).
        self.t2_side_exits = 0
        self.tier3_steps = 0
        self.tier3_calls = 0
        #: Simulated machine cycles spent in hosted units (informational
        #: cost model; steps remain the architectural clock).
        self.tier3_cycles = 0
        #: Per-function unfused decode products for tier-3 deopt, keyed
        #: by function name: (smc_version, ops by block name, num_slots).
        self._deopt_decodes = {}

    # -- public API ----------------------------------------------------

    def run(self, function_name: str = "main", args=()) -> ExecutionResult:
        function = self.module.get_function(function_name)
        result_value = None
        exit_status = 0
        flight = self.flight = observe.flight()
        if flight is not None:
            flight.record("run.begin", engine="fast",
                          entry=function_name)
        steps_before = self.steps
        runs_before = self.fused_runs
        fused_before = self.fused_instructions
        t2_steps_before = self.tier2_steps
        t2_calls_before = self.tier2_calls
        t2_exits_before = self.t2_side_exits
        t3_steps_before = self.tier3_steps
        t3_calls_before = self.tier3_calls
        self._push_call(function, list(args), call_inst=None)
        # Engine-active bracket: under the compile service's idle
        # policy, background builds park while this run executes.
        if self.tier2 is not None:
            self.tier2.run_begin()
        try:
            with observe.span("interp.run", entry=function_name,
                              engine="fast"):
                try:
                    result_value = self._run_loop()
                except ExitRequest as request:
                    exit_status = request.status
                    self._frames.clear()
        finally:
            if self.tier2 is not None:
                self.tier2.run_end()
            if self.profiler is not None:
                self.profiler.flush(self.steps)
        observe.counter("run.steps", self.steps - steps_before,
                        engine="fast")
        if observe.enabled():
            observe.counter("fastpath.fused_runs",
                            self.fused_runs - runs_before)
            observe.counter("fastpath.fused_instructions",
                            self.fused_instructions - fused_before)
            if self.tier2 is not None:
                observe.counter("tier2.steps",
                                self.tier2_steps - t2_steps_before)
                observe.counter("tier2.calls",
                                self.tier2_calls - t2_calls_before)
                observe.counter("tier2.side_exits",
                                self.t2_side_exits - t2_exits_before)
                if self.tier2.tier3:
                    observe.counter("tier3.steps",
                                    self.tier3_steps - t3_steps_before)
                    observe.counter("tier3.calls",
                                    self.tier3_calls - t3_calls_before)
        if flight is not None:
            flight.record("run.end", engine="fast",
                          steps=self.steps - steps_before)
        return ExecutionResult(
            return_value=result_value,
            steps=self.steps,
            output=self.runtime.output_text(),
            exit_status=exit_status,
        )

    # -- engine core ---------------------------------------------------

    def _run_loop(self):
        frames = self._frames
        while frames:
            f = frames[-1]
            r = None
            while r is None:
                r = f.ops[f.index](self, f)
            if r is _RESCHED:
                continue
            return r.value
        return None

    def _push_call(self, function: Function, args, call_inst=None):
        self._fast_push(function, list(args), -1, None, None)

    def _fast_push(self, function: Function, args, ret_slot,
                   resume, unwind_edge) -> _FastFrame:
        if function.is_declaration:
            raise ExecutionTrap(
                TrapKind.SOFTWARE_TRAP,
                "call to undefined function %{0}".format(function.name))
        tier2 = self.tier2
        if tier2 is not None:
            # The per-call hook doubles as the primary safe swap-in
            # point for asynchronous compilation: while a background
            # job is in flight lookup() returns None (the call runs
            # tier 1) and installs the finished unit the first time it
            # polls ready — never mid-activation.
            unit = tier2.lookup(function)
            if unit is not None:
                if len(args) != unit.num_args:
                    raise ExecutionTrap(
                        TrapKind.SOFTWARE_TRAP,
                        "argument count mismatch calling %{0}"
                        .format(function.name))
                if unit.kind == "tier3":
                    frame = _Tier3Frame(function, unit,
                                        unit.factory(self, *args),
                                        self.memory.stack_pointer,
                                        ret_slot, resume, unwind_edge)
                    self._frames.append(frame)
                    self.tier3_calls += 1
                    if self.profiler is not None:
                        self.profiler.push(self.steps, function.name,
                                           "tier3")
                        self.profiler.note_tier3_backend(unit.backend)
                    return frame
                frame = _Tier2Frame(function, unit,
                                    unit.factory(self, *args),
                                    self.memory.stack_pointer, ret_slot,
                                    resume, unwind_edge)
                self._frames.append(frame)
                self.tier2_calls += 1
                if self.profiler is not None:
                    self.profiler.push(
                        self.steps, function.name,
                        "superblock" if unit.kind == "superblock"
                        else "tier2")
                return frame
        decoded = self.decode_cache.decode(function)
        if len(args) != decoded.num_args:
            raise ExecutionTrap(
                TrapKind.SOFTWARE_TRAP,
                "argument count mismatch calling %{0}".format(function.name))
        regs = [0] * decoded.num_slots
        regs[:len(args)] = args
        frame = _FastFrame(function, decoded.entry_ops, regs,
                           self.memory.stack_pointer, ret_slot, resume,
                           unwind_edge)
        if tier2 is not None:
            frame.steps_at_entry = self.steps
            # A deferred compile is in flight for this function: arm
            # the back-edge OSR check at a quarter threshold so a
            # loop-bound activation stops paying tier-1 prices
            # promptly (the trigger escalates the queued build).
            if tier2.has_pending(function):
                frame.osr_mark = self.steps - \
                    (tier2.osr_step_threshold * 3) // 4
            else:
                frame.osr_mark = self.steps
        self._frames.append(frame)
        if self.profiler is not None:
            self.profiler.push(self.steps, function.name, "tier1")
        return frame

    def _fast_return(self, f: _FastFrame, value):
        tier2 = self.tier2
        if tier2 is not None and f.steps_at_entry >= 0:
            tier2.credit_steps(f.function, self.steps - f.steps_at_entry)
        self.memory.pop_frame(f.saved_sp)
        frames = self._frames
        frames.pop()
        if self.profiler is not None:
            self.profiler.pop(self.steps)
        if not frames:
            return _Return(value)
        if f.is_trap_handler:
            return _RESCHED
        caller = frames[-1]
        if f.ret_slot >= 0:
            caller.regs[f.ret_slot] = value
        resume = f.resume
        if resume is None:
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "broken return linkage")
        resume(self, caller)
        return _RESCHED

    def _fast_call_any(self, f: _FastFrame, function: Function, args,
                       inst, dst: int, index: int, resume, unwind_edge):
        """Indirect-call dispatch, classified at run time like the
        reference engine's ``_exec_call``."""
        if function.is_intrinsic:
            try:
                result = self._call_intrinsic(f, function.name, args)
            except MemoryError_ as fault:
                return self._fast_fault(f, index, inst, dst,
                                        fault.trap_number,
                                        fault.address or 0,
                                        fault.detail,
                                        fault.unmaskable)
            if dst >= 0:
                f.regs[dst] = result
            resume(self, f)
            return _RESCHED
        if function.is_declaration and is_runtime_name(function.name):
            try:
                result = self.runtime.call(function.name, args)
            except MemoryError_ as fault:
                return self._fast_fault(f, index, inst, dst,
                                        fault.trap_number,
                                        fault.address or 0,
                                        fault.detail,
                                        fault.unmaskable)
            if dst >= 0:
                f.regs[dst] = result
            resume(self, f)
            return _RESCHED
        ms = self.max_steps
        if ms is not None and self.steps > ms:
            raise StepLimitExceeded("exceeded {0} steps".format(ms))
        self._fast_push(function, args, dst, resume, unwind_edge)
        return _RESCHED

    # -- on-stack replacement ------------------------------------------

    def _osr_enter(self, f: _FastFrame, block_id: int):
        """Promote a hot tier-1 activation mid-loop: map its live
        register file onto a tier-2 generator entered at *block_id*
        (where the triggering back edge just landed, phis already
        assigned) and replace the frame in place.

        Returns ``_RESCHED`` so the run loop re-dispatches to the new
        frame, or None when tier 2 declines (OSR off, pinned,
        uncompilable) — in which case the frame's step credit is reset
        so the check does not fire on every subsequent back edge.
        With asynchronous compilation the decline may be transient (a
        background job is still in flight); the credit is then only
        partially reset, so this back-edge safe point re-polls after a
        quarter threshold instead of a full one and the swap-in lands
        promptly once the unit is ready.
        """
        tier2 = self.tier2
        unit = tier2.lookup_osr(f.function) if tier2 is not None else None
        if unit is None:
            # Re-arm the trigger only (never steps_at_entry — that
            # would inflate the activation's step credit on return).
            if tier2 is not None and tier2.has_pending(f.function):
                f.osr_mark = self.steps - \
                    (tier2.osr_step_threshold * 3) // 4
            else:
                f.osr_mark = self.steps
            return None
        gen = unit.factory(
            self, *([0] * unit.num_args),
            __osr=(block_id, tuple(f.regs[:unit.num_slots])))
        frame = _Tier2Frame(f.function, unit, gen, f.saved_sp, f.ret_slot,
                            f.resume, f.unwind_edge)
        frame.is_trap_handler = f.is_trap_handler
        self._frames[-1] = frame
        tier2.stats.osr_entries += 1
        self.tier2_calls += 1
        if self.profiler is not None:
            self.profiler.replace(self.steps, f.function.name, "osr")
        flight = self.flight
        if flight is not None:
            flight.record("tier2.osr.enter", function=f.function.name,
                          block=block_id, kind=unit.kind)
        if observe.enabled():
            observe.counter("tier2.osr_entries", 1)
        return _RESCHED

    # -- tier-3 deoptimization -----------------------------------------

    def _decode_unfused(self, function: Function):
        """Per-block closure arrays with op index == instruction index
        (no fusion), so a tier-3 deopt site maps directly onto a resume
        position.  Cached per function; SMC bumps invalidate by
        version."""
        cached = self._deopt_decodes.get(function.name)
        if cached is not None and cached[0] == function.smc_version:
            return cached[1], cached[2]
        slot_of: Dict[int, int] = {}
        slot = 0
        for arg in function.args:
            slot_of[id(arg)] = slot
            slot += 1
        blocks = function.blocks
        for block in blocks:
            for inst in block.instructions:
                if inst.produces_value:
                    slot_of[id(inst)] = slot
                    slot += 1
        ops_map: Dict[int, List[Callable]] = {id(b): [] for b in blocks}
        decoder = _Decoder(function, self.target, slot_of, ops_map,
                           osr=False)
        for block in blocks:
            ops = ops_map[id(block)]
            instructions = block.instructions
            nphis = len(block.phis())
            ops.extend([_phi_error_op] * nphis)
            for index in range(nphis, len(instructions)):
                op, _fusable = decoder.compile(block,
                                               instructions[index],
                                               index)
                ops.append(op)
        ops_by_name = {block.name: ops_map[id(block)]
                       for block in blocks}
        self._deopt_decodes[function.name] = (function.smc_version,
                                              ops_by_name, slot)
        return ops_by_name, slot

    def _tier3_deopt(self, f, request):
        """Leave native code for good at a deliverable trap: rebuild a
        tier-1 frame from the executor's V-ABI register shadow, demote
        the function, then deliver the trap through the ordinary
        machinery so the handler (or escaping report) is byte-identical
        to tier-1's."""
        _kind, site, shadow, trap_number, info, detail = request
        f.gen.close()
        tier2 = self.tier2
        if tier2 is not None:
            tier2.note_deopt3(f.function)
        function = f.function
        block_name, _sep, index_text = site.rpartition(":")
        site_index = int(index_text)
        ops_by_name, num_slots = self._decode_unfused(function)
        regs = list(shadow)
        if len(regs) < num_slots:
            regs.extend([0] * (num_slots - len(regs)))
        frame = _FastFrame(function, ops_by_name[block_name], regs,
                           f.saved_sp, f.ret_slot, f.resume,
                           f.unwind_edge)
        frame.is_trap_handler = f.is_trap_handler
        frame.steps_at_entry = -1         # the hybrid activation earns
        frame.osr_mark = self.steps       # neither credit nor OSR
        frame.index = site_index
        self._frames[-1] = frame
        if self.profiler is not None:
            self.profiler.replace(self.steps, function.name, "tier1")
        flight = self.flight
        if flight is not None:
            flight.record("tier3.deopt", function=function.name,
                          site=site, trap=trap_number)
        if observe.enabled():
            observe.counter("tier3.deopts", 1)
        block = None
        for candidate in function.blocks:
            if candidate.name == block_name:
                block = candidate
                break
        inst = block.instructions[site_index]
        dst = f.unit.slot_by_site.get(site, -1)
        return self._fast_deliver(frame, site_index, inst, dst,
                                  trap_number, info, detail)

    # -- exception model -----------------------------------------------

    def _fast_fault(self, f: _FastFrame, index: int, inst, dst: int,
                    trap_number: int, info: int, detail: str = "",
                    unmaskable: bool = False):
        """The ExceptionsEnabled rule for a faulting instruction."""
        if not unmaskable \
                and not (inst.exceptions_enabled
                         and self.exceptions_dynamic):
            if dst >= 0:
                f.regs[dst] = _zero_of(inst.type)
            f.index = index + 1
            return None
        return self._fast_deliver(f, index, inst, dst, trap_number, info,
                                  detail)

    def _fast_deliver(self, f: _FastFrame, index: int, inst, dst: int,
                      trap_number: int, info: int, detail: str = ""):
        observe.counter("run.traps", 1, engine="fast",
                        trap=str(trap_number))
        flight = self.flight
        handler_address = self.trap_handlers.get(trap_number)
        if handler_address is None:
            if flight is not None:
                flight.record("trap.unhandled", engine="fast",
                              trap=trap_number, detail=detail)
                flight.autodump("unhandled trap %d" % trap_number)
            raise ExecutionTrap(trap_number,
                                detail or "no handler registered", info)
        handler = self.image.function_at(handler_address)
        if handler is None or handler.is_declaration:
            if flight is not None:
                flight.record("trap.unhandled", engine="fast",
                              trap=trap_number,
                              detail="handler not an LLVA function")
                flight.autodump("unhandled trap %d" % trap_number)
            raise ExecutionTrap(trap_number,
                                "trap handler is not an LLVA function")
        if flight is not None:
            flight.record("trap.deliver", engine="fast",
                          trap=trap_number, handler=handler.name)
        # Snapshot the faulting frame's registers for llva.register.read
        # *before* zeroing the result (precise-exception rule).
        self._last_trap_registers = self._number_registers(f)
        if inst is not None:
            if dst >= 0:
                f.regs[dst] = _zero_of(inst.type)
            f.index = index + 1
        trap_frame = self._fast_push(
            handler, [trap_number & 0xFFFFFFFF, info], -1, None, None)
        trap_frame.is_trap_handler = True
        return _RESCHED

    def _deliver_trap(self, frame, inst, trap_number: int, info: int,
                      detail: str = ""):
        # Reached via the inherited _call_intrinsic (llva.trap.raise);
        # inst is always None on that path.
        self._fast_deliver(frame, frame.index, None, -1, trap_number, info,
                           detail)
        return _NO_RESULT

    def _number_registers(self, frame) -> Dict[int, int]:
        if type(frame) is _Tier3Frame:
            # The hosted executor maintains an explicit V-ABI shadow
            # (slot number -> value), refreshed by every machine
            # instruction carrying a "vabi" annotation; read it straight
            # out of the suspended generator's locals.
            gi_frame = frame.gen.gi_frame
            if gi_frame is None:  # pragma: no cover - defensive
                return {}
            shadow = gi_frame.f_locals.get("shadow") or []
            return {number: int(value)
                    for number, value in enumerate(shadow)
                    if isinstance(value, (bool, int))}
        if type(frame) is _Tier2Frame:
            # The generator is suspended at a yield, so its locals are
            # the live register file; unbound locals are registers not
            # yet written on this path (they read as 0 via
            # llva.register.read, matching the reference engine's
            # absent-key semantics).
            gi_frame = frame.gen.gi_frame
            if gi_frame is None:  # pragma: no cover - defensive
                return {}
            local_values = gi_frame.f_locals
            numbered: Dict[int, int] = {}
            for name, number in frame.unit.snap_map:
                value = local_values.get(name)
                if isinstance(value, (bool, int)):
                    numbered[number] = int(value)
            return numbered
        numbered = {}
        for number, value in enumerate(frame.regs):
            if isinstance(value, (bool, int)):
                numbered[number] = int(value)
        return numbered
