"""Simulator for translated native code.

Executes :class:`~repro.targets.machine.MachineInstr` semantics against
the same :class:`~repro.execution.memory.Memory` model the interpreter
uses, so a translated program must produce bit-identical results to
direct interpretation — the correctness bar for both back ends
(differential testing).

The simulator also charges per-instruction cycle costs, giving the
deterministic "run time" denominator of Table 2's translation-cost
column, and implements the calling convention contract with the code
generators:

* ``CALL`` saves the caller context, points ``fp`` at a fresh frame of
  ``frame_size`` bytes and drops ``sp`` to its base;
* incoming stack arguments live just above the frame
  (``fp + frame_size + 8*j``), exactly where the caller's pushes put
  them;
* ``RET`` restores the caller's ``sp`` and resumes after the call.

Untranslated callees trigger the ``resolver`` callback — this is the
hook LLEE's function-at-a-time JIT hangs off (Section 4.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro import observe
from repro.execution.events import ExecutionTrap, ExitRequest, TrapKind
from repro.execution.image import ProgramImage
from repro.execution.interpreter import (
    StepLimitExceeded,
    _float_arith,
    _pointer_mask,
    _round_f32,
    cast_value,
)
from repro.execution.memory import Memory, MemoryError_
from repro.execution.runtime import (
    RUNTIME_SIGNATURES,
    RuntimeLibrary,
    is_runtime_name,
)
from repro.ir import types
from repro.ir.intrinsics import is_intrinsic_name
from repro.ir.module import Module
from repro.targets.codegen import INCOMING_ARGS
from repro.targets.machine import (
    Imm,
    LabelRef,
    MachineFunction,
    MachineInstr,
    Mem,
    PhysReg,
    Semantics,
    SymRef,
    spill_slot_type,
)
from repro.targets.native import NativeModule

#: Cycle cost per semantic micro-op.
CYCLES = {
    Semantics.MOV: 1, Semantics.ALU: 1, Semantics.CMP: 1,
    Semantics.LOAD: 3, Semantics.STORE: 2, Semantics.LEA: 1,
    Semantics.JMP: 1, Semantics.JCC: 2, Semantics.CALL: 4,
    Semantics.RET: 2, Semantics.PUSH: 2, Semantics.POP: 2,
    Semantics.CVT: 2, Semantics.ADJSP: 1, Semantics.UNWIND: 10,
    Semantics.NOP: 1, Semantics.ALLOCA: 2,
    # One wide memory access each: costlier than a scalar load/store,
    # far cheaper than one scalar access per lane.
    Semantics.VLOAD: 4, Semantics.VSTORE: 3,
}
_MUL_EXTRA = 2
_DIV_EXTRA = 18
_MEM_OPERAND_EXTRA = 2


def instr_cost(instr: MachineInstr) -> int:
    """Deterministic cycle cost of one machine instruction (shared by
    the simulator's budget accounting and tier-3's per-block totals).

    Memoized on the instruction itself: the cost depends only on
    decode-time facts (semantics, ALU op, operand shapes), so the
    opcode dispatch runs once per instruction, not once per executed
    cycle."""
    cost = instr.cost
    if cost is not None:
        return cost
    cost = CYCLES.get(instr.semantics, 1)
    if instr.semantics == Semantics.ALU:
        op = instr.attrs.get("op")
        if op == "mul":
            cost += _MUL_EXTRA
        elif op in ("div", "rem"):
            cost += _DIV_EXTRA
    if any(isinstance(op, Mem) for op in instr.operands) \
            and instr.semantics in (Semantics.ALU, Semantics.CMP,
                                    Semantics.MOV):
        cost += _MEM_OPERAND_EXTRA
    instr.cost = cost
    return cost


class _MachineFrame:
    __slots__ = ("machine", "block_index", "instr_index", "fp",
                 "caller_sp", "unwind_label", "saved_regs", "name",
                 "blocks", "num_blocks", "frame_size")

    def __init__(self, machine: MachineFunction, fp: int, caller_sp: int):
        self.machine = machine
        self.name = machine.name
        self.block_index = 0
        self.instr_index = 0
        self.fp = fp
        self.caller_sp = caller_sp
        self.unwind_label: Optional[str] = None
        #: Callee-saved register values ("save"/"restore" pseudo-stack).
        self.saved_regs: List[object] = []
        # Hoisted at frame entry so the step loop and operand decoding
        # never chase ``frame.machine.<attr>`` per executed instruction.
        self.blocks = machine.blocks
        self.num_blocks = len(machine.blocks)
        self.frame_size = machine.frame_size


class MachineSimulator:
    """Runs native code for one target against simulated memory."""

    def __init__(self, native: NativeModule, module: Module,
                 resolver: Optional[Callable[[str],
                                             MachineFunction]] = None,
                 max_cycles: Optional[int] = None):
        self.native = native
        self.module = module
        self.target = native.target
        self.td = self.target.target_data
        self.memory = Memory(self.td)
        self.image = ProgramImage(module, self.memory)
        self.runtime = RuntimeLibrary(self.memory, lambda: self.cycles)
        self.resolver = resolver
        self.cycles = 0
        self.instructions_executed = 0
        self.max_cycles = max_cycles
        self.registers: Dict[str, object] = {}
        self.smc_listeners: List[Callable] = []
        self.storage_api_address = 0
        self._frames: List[_MachineFrame] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, function_name: str = "main",
            args: Sequence[object] = ()):
        """Execute *function_name*; returns (return value, cycles)."""
        machine = self._machine_function(function_name)
        function = self.module.get_function(function_name)
        # Entry sequence: push stack args / set arg registers, "call".
        arg_regs = self.target.arg_regs
        for value in reversed(list(args)[len(arg_regs):]):
            self._push_value(value)
        for reg_name, value in zip(arg_regs, args):
            self.registers[reg_name] = value
        self._enter_function(machine, unwind_label=None)
        exit_status = 0
        cycles_before = self.cycles
        instructions_before = self.instructions_executed
        with observe.span("native.run", entry=function_name,
                          target=self.target.name):
            try:
                self._run_loop()
            except ExitRequest as request:
                exit_status = request.status
                self._frames.clear()
        if observe.enabled():
            observe.counter("run.cycles",
                            self.cycles - cycles_before,
                            engine=self.target.name)
            observe.counter(
                "run.instructions",
                self.instructions_executed - instructions_before,
                engine=self.target.name)
        raw = self.registers.get(self.target.return_reg)
        return_type = function.return_type
        result = self._normalize_return(raw, return_type)
        return result, exit_status

    def output_text(self) -> str:
        return self.runtime.output_text()

    # ------------------------------------------------------------------
    # Function and frame management
    # ------------------------------------------------------------------

    def _machine_function(self, name: str) -> MachineFunction:
        machine = self.native.functions.get(name)
        function = self.module.functions.get(name)
        if machine is not None and function is not None \
                and machine.smc_version != function.smc_version:
            machine = None  # stale translation (SMC, Section 3.4)
        if machine is None:
            if self.resolver is None:
                raise ExecutionTrap(
                    TrapKind.SOFTWARE_TRAP,
                    "no translation for %{0}".format(name))
            machine = self.resolver(name)
            self.native.functions[name] = machine
        return machine

    def _enter_function(self, machine: MachineFunction,
                        unwind_label: Optional[str]) -> None:
        caller_sp = self.memory.stack_pointer
        fp = caller_sp - machine.frame_size
        self.memory.stack_pointer = fp
        frame = _MachineFrame(machine, fp, caller_sp)
        frame.unwind_label = unwind_label
        self._frames.append(frame)

    def _return_from_function(self) -> None:
        frame = self._frames.pop()
        self.memory.stack_pointer = frame.caller_sp

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _run_loop(self) -> None:
        # Hoisted so the disabled path pays one local-bool test per
        # instruction; op counts flush to the registry on loop exit.
        observing = observe.enabled()
        op_counts: Dict[str, int] = {}
        frames = self._frames
        try:
            while frames:
                frame = frames[-1]
                block = frame.blocks[frame.block_index]
                if frame.instr_index >= len(block.instructions):
                    # Fall through to the next block in layout order (the
                    # trace-layout optimization removes jumps to the
                    # lexically next block).
                    if frame.block_index + 1 < frame.num_blocks:
                        frame.block_index += 1
                        frame.instr_index = 0
                        continue
                    raise ExecutionTrap(
                        TrapKind.SOFTWARE_TRAP,
                        "fell off the end of block {0} in {1}"
                        .format(block.name, frame.name))
                instr = block.instructions[frame.instr_index]
                cost = instr.cost
                if cost is None:
                    cost = instr_cost(instr)
                if self.max_cycles is not None \
                        and self.cycles + cost > self.max_cycles:
                    # A budget of N cycles means N cycles may be *spent*:
                    # the instruction that would exceed it is neither
                    # charged nor executed, so the trap fires with
                    # ``cycles`` at most N (not N + cost).
                    raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                        "cycle budget exhausted")
                self.instructions_executed += 1
                self.cycles += cost
                if observing:
                    op = instr.semantics
                    op_counts[op] = op_counts.get(op, 0) + 1
                self._execute(frame, instr)
        finally:
            if observing:
                for op, count in op_counts.items():
                    observe.counter("native.opcode", count, op=op)

    def _cost(self, instr: MachineInstr) -> int:
        return instr_cost(instr)

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------

    def _reg_read(self, reg: PhysReg):
        if reg.name == "sp":
            return self.memory.stack_pointer
        if reg.name == "fp":
            return self._frames[-1].fp
        return self.registers.get(reg.name, 0)

    def _reg_write(self, reg: PhysReg, value) -> None:
        if reg.name == "sp":
            self.memory.stack_pointer = int(value)
            return
        self.registers[reg.name] = value

    def _mem_address(self, frame: _MachineFrame, mem: Mem) -> int:
        address = 0
        if mem.symbol == INCOMING_ARGS:
            address = frame.fp + frame.frame_size + mem.offset
            return address
        if mem.symbol is not None:
            address += self.image.address_of(mem.symbol)
        if mem.base is not None:
            address += int(self._reg_read(mem.base))
        if mem.index is not None:
            address += int(self._reg_read(mem.index)) * mem.scale
        return address + mem.offset

    def _value_of(self, frame: _MachineFrame, operand,
                  value_type: Optional[types.Type] = None):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, PhysReg):
            return self._reg_read(operand)
        if isinstance(operand, SymRef):
            return self.image.address_of(operand.name)
        if isinstance(operand, Mem):
            address = self._mem_address(frame, operand)
            read_type = value_type or types.ULONG
            return self.memory.read_typed(address, read_type)
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "bad operand {0!r}".format(operand))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, frame: _MachineFrame, instr: MachineInstr) -> None:
        semantics = instr.semantics
        handler = self._handlers.get(semantics)
        if handler is None:
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "unknown semantics {0!r}".format(semantics))
        handler(self, frame, instr)

    def _advance(self, frame: _MachineFrame) -> None:
        frame.instr_index += 1

    def _jump(self, frame: _MachineFrame, label: str) -> None:
        for index, block in enumerate(frame.blocks):
            if block.name == label:
                frame.block_index = index
                frame.instr_index = 0
                return
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "jump to unknown label {0}".format(label))

    # -- data movement -----------------------------------------------------------

    def _exec_mov(self, frame, instr) -> None:
        value_type = instr.attrs.get("mem_value_type") \
            or instr.attrs.get("value_type")
        value = self._value_of(frame, instr.operands[1], value_type)
        self._reg_write(instr.operands[0], value)
        self._advance(frame)

    def _exec_lea(self, frame, instr) -> None:
        address = self._mem_address(frame, instr.operands[1])
        self._reg_write(instr.operands[0], address)
        self._advance(frame)

    def _exec_load(self, frame, instr) -> None:
        value_type = instr.attrs.get("value_type") or types.ULONG
        address = self._mem_address(frame, instr.operands[1])
        try:
            value = self.memory.read_typed(address, value_type)
        except MemoryError_:
            if instr.attrs.get("ee", True):
                raise
            value = _zero_of(value_type)
        self._reg_write(instr.operands[0], value)
        self._advance(frame)

    def _exec_store(self, frame, instr) -> None:
        value_type = instr.attrs.get("value_type") or types.ULONG
        value = self._value_of(frame, instr.operands[0], value_type)
        address = self._mem_address(frame, instr.operands[1])
        try:
            self.memory.write_typed(address, value_type, value)
        except MemoryError_:
            if instr.attrs.get("ee", True):
                raise
        self._advance(frame)

    # -- the vector extension ----------------------------------------------------------

    def _lane_write(self, frame, operand, value, slot_type) -> None:
        if isinstance(operand, Mem):
            # A spilled lane bound to its frame slot by the allocator.
            self.memory.write_typed(self._mem_address(frame, operand),
                                    slot_type, value)
        else:
            self._reg_write(operand, value)

    def _exec_vload(self, frame, instr) -> None:
        element = instr.attrs["value_type"]
        esize = instr.attrs.get("esize") or self.td.size_of(element)
        lanes = instr.operands[:-1]
        address = self._mem_address(frame, instr.operands[-1])
        try:
            values = [self.memory.read_typed(address + i * esize,
                                             element)
                      for i in range(len(lanes))]
        except MemoryError_:
            if instr.attrs.get("ee", True):
                raise
            # Atomic over lanes: a masked fault discards the whole
            # vector and yields all-zero lanes.
            values = [_zero_of(element)] * len(lanes)
        slot_type = spill_slot_type(element)
        for operand, value in zip(lanes, values):
            self._lane_write(frame, operand, value, slot_type)
        self._advance(frame)

    def _exec_vstore(self, frame, instr) -> None:
        element = instr.attrs["value_type"]
        esize = instr.attrs.get("esize") or self.td.size_of(element)
        lanes = instr.operands[:-1]
        address = self._mem_address(frame, instr.operands[-1])
        slot_type = spill_slot_type(element)
        try:
            for position, operand in enumerate(lanes):
                value = self._value_of(frame, operand, slot_type)
                self.memory.write_typed(address + position * esize,
                                        element, value)
        except MemoryError_:
            if instr.attrs.get("ee", True):
                raise
            # Masked fault: lanes before the faulting one stay written,
            # the faulting lane and everything after are dropped —
            # byte-identical to the interpreters.
        self._advance(frame)

    # -- arithmetic ------------------------------------------------------------------

    def _exec_alu(self, frame, instr) -> None:
        value_type = instr.attrs["value_type"]
        mem_type = instr.attrs.get("mem_value_type") or value_type
        op = instr.attrs["op"]
        lhs = self._value_of(frame, instr.operands[1], value_type)
        rhs = self._value_of(frame, instr.operands[2], mem_type)
        if value_type.is_floating_point:
            from repro.execution.interpreter import (
                _float_arith,
                _round_f32,
            )
            result = _float_arith(op, lhs, rhs)
            if value_type is types.FLOAT:
                result = _round_f32(result)
        elif value_type.is_bool:
            bits_l, bits_r = int(lhs), int(rhs)
            if op == "and":
                result = bool(bits_l & bits_r & 1)
            elif op == "or":
                result = bool((bits_l | bits_r) & 1)
            else:
                result = bool((bits_l ^ bits_r) & 1)
        elif op in ("div", "rem") and rhs == 0:
            if instr.attrs.get("ee", False):
                # Byte-identical to the interpreters' unhandled-trap
                # report: divide-by-zero delivers detail "" / info 0,
                # which escapes as "no handler registered".
                raise ExecutionTrap(TrapKind.DIVIDE_BY_ZERO,
                                    "no handler registered", 0)
            result = 0
        else:
            result = _int_alu(op, int(lhs), int(rhs), value_type,
                              ee=instr.attrs.get("ee", False))
        self._reg_write(instr.operands[0], result)
        self._advance(frame)

    def _exec_cmp(self, frame, instr) -> None:
        value_type = instr.attrs.get("value_type")
        mem_type = instr.attrs.get("mem_value_type") or value_type
        rel = instr.attrs["rel"]
        lhs = self._value_of(frame, instr.operands[1], value_type)
        rhs = self._value_of(frame, instr.operands[2], mem_type)
        if rel == "eq":
            result = lhs == rhs
        elif rel == "ne":
            result = lhs != rhs
        elif rel == "lt":
            result = lhs < rhs
        elif rel == "gt":
            result = lhs > rhs
        elif rel == "le":
            result = lhs <= rhs
        else:
            result = lhs >= rhs
        self._reg_write(instr.operands[0], bool(result))
        self._advance(frame)

    def _exec_cvt(self, frame, instr) -> None:
        from_type = instr.attrs["from_type"]
        to_type = instr.attrs["to_type"]
        value = self._value_of(frame, instr.operands[1], from_type)
        self._reg_write(instr.operands[0],
                        cast_value(value, from_type, to_type, self.td))
        self._advance(frame)

    # -- control flow --------------------------------------------------------------------

    def _exec_jmp(self, frame, instr) -> None:
        self._jump(frame, instr.operands[0].name)

    def _exec_jcc(self, frame, instr) -> None:
        condition = self._value_of(frame, instr.operands[0], types.BOOL)
        if condition:
            self._jump(frame, instr.operands[1].name)
        else:
            self._advance(frame)

    def _exec_nop(self, frame, instr) -> None:
        self._advance(frame)

    # -- stack ------------------------------------------------------------------------------

    def _exec_push(self, frame, instr) -> None:
        if instr.mnemonic in ("save",):
            frame.saved_regs.append(
                (instr.operands[0].name,
                 self.registers.get(instr.operands[0].name, 0)))
            self._advance(frame)
            return
        value_type = instr.attrs.get("value_type") or types.ULONG
        value = self._value_of(frame, instr.operands[0], value_type)
        self._push_value(value, value_type)
        self._advance(frame)

    def _exec_pop(self, frame, instr) -> None:
        if instr.mnemonic in ("restore",):
            if frame.saved_regs:
                name, value = frame.saved_regs.pop()
                self.registers[name] = value
            self._advance(frame)
            return
        sp = self.memory.stack_pointer
        value = self.memory.read_typed(sp, types.ULONG)
        self.memory.stack_pointer = sp + 8
        self._reg_write(instr.operands[0], value)
        self._advance(frame)

    def _push_value(self, value,
                    value_type: Optional[types.Type] = None) -> None:
        sp = self.memory.stack_pointer - 8
        self.memory.stack_pointer = sp
        slot_type = _push_slot_type(value, value_type)
        self.memory.write_typed(sp, slot_type, value)

    def _exec_adjsp(self, frame, instr) -> None:
        amount = self._value_of(frame, instr.operands[0],
                                types.ULONG)
        if instr.attrs.get("negate"):
            self.memory.stack_pointer -= int(amount)
        else:
            self.memory.stack_pointer += int(amount)
        self._advance(frame)

    # -- calls ------------------------------------------------------------------------------

    def _exec_call(self, frame, instr) -> None:
        callee = instr.operands[0]
        if isinstance(callee, SymRef):
            name = callee.name
        else:
            address = int(self._value_of(frame, callee))
            function = self.image.function_at(address)
            if function is None:
                raise ExecutionTrap(
                    TrapKind.MEMORY_FAULT,
                    "indirect call to 0x{0:x}".format(address), address)
            name = function.name
        self._advance(frame)  # resume point after the call
        if is_intrinsic_name(name):
            self._call_intrinsic(frame, name, instr)
            return
        ir_function = self.module.functions.get(name)
        if (ir_function is None or ir_function.is_declaration) \
                and is_runtime_name(name):
            self._call_runtime(frame, name, instr)
            return
        machine = self._machine_function(name)
        self._enter_function(machine, instr.attrs.get("unwind"))

    def _call_runtime(self, frame, name: str, instr: MachineInstr) -> None:
        signature = RUNTIME_SIGNATURES[name]
        args = self._collect_args(frame, signature, instr)
        result = self.runtime.call(name, args)
        if not signature.return_type.is_void:
            self.registers[self.target.return_reg] = result

    def _collect_args(self, frame, signature: types.FunctionType,
                      instr: MachineInstr) -> List[object]:
        arg_regs = self.target.arg_regs
        args: List[object] = []
        stack_cursor = self.memory.stack_pointer
        for index, param in enumerate(signature.params):
            if index < len(arg_regs):
                args.append(self.registers.get(arg_regs[index], 0))
            else:
                slot = stack_cursor + 8 * (index - len(arg_regs))
                args.append(self.memory.read_typed(
                    slot, _push_slot_type(None, param)))
        return args

    def _call_intrinsic(self, frame, name: str,
                        instr: MachineInstr) -> None:
        from repro.ir.intrinsics import intrinsic_info

        info = intrinsic_info(name)
        args = self._collect_args(frame, info.function_type, instr)
        if name == "llva.smc.replace":
            target_fn = self.image.function_at(int(args[0]))
            donor_fn = self.image.function_at(int(args[1]))
            if target_fn is None or donor_fn is None:
                raise ExecutionTrap(TrapKind.MEMORY_FAULT,
                                    "llva.smc.replace of non-function")
            target_fn.replace_body_from(donor_fn)
            # Invalidate the stale translation: future invocations get
            # retranslated (Section 3.4); active frames keep running
            # their existing machine code.
            self.native.functions.pop(target_fn.name, None)
            for listener in self.smc_listeners:
                listener(target_fn)
            return
        if name == "llva.sec.register":
            return
        if name == "llva.storage.register":
            self.storage_api_address = int(args[0])
            return
        if name == "llva.stack.depth":
            self.registers[self.target.return_reg] = len(self._frames)
            return
        raise ExecutionTrap(
            TrapKind.SOFTWARE_TRAP,
            "intrinsic {0} is not supported by the native engine "
            "(use the interpreter)".format(name))

    def _exec_ret(self, frame, instr) -> None:
        # The caller's CALL already advanced past itself, so the caller
        # simply resumes; an invoke's trailing JMP to the normal
        # destination executes next.
        self._return_from_function()

    def _exec_unwind(self, frame, instr) -> None:
        while self._frames:
            top = self._frames[-1]
            self._return_from_function()
            if top.unwind_label is not None and self._frames:
                # The *caller* of the invoke-frame resumes at the unwind
                # destination, which lives in the caller's function.
                caller = self._frames[-1]
                self._jump(caller, top.unwind_label)
                return
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "unwind with no active invoke")

    # -- misc -------------------------------------------------------------------------------

    def _normalize_return(self, raw, return_type: types.Type):
        if return_type.is_void or raw is None:
            return None
        if return_type.is_bool:
            return bool(raw)
        if return_type.is_integer:
            return return_type.wrap(int(raw))
        return raw

    _handlers = {}


MachineSimulator._handlers = {
    Semantics.MOV: MachineSimulator._exec_mov,
    Semantics.ALU: MachineSimulator._exec_alu,
    Semantics.CMP: MachineSimulator._exec_cmp,
    Semantics.LOAD: MachineSimulator._exec_load,
    Semantics.STORE: MachineSimulator._exec_store,
    Semantics.LEA: MachineSimulator._exec_lea,
    Semantics.JMP: MachineSimulator._exec_jmp,
    Semantics.JCC: MachineSimulator._exec_jcc,
    Semantics.CALL: MachineSimulator._exec_call,
    Semantics.RET: MachineSimulator._exec_ret,
    Semantics.PUSH: MachineSimulator._exec_push,
    Semantics.POP: MachineSimulator._exec_pop,
    Semantics.CVT: MachineSimulator._exec_cvt,
    Semantics.ADJSP: MachineSimulator._exec_adjsp,
    Semantics.UNWIND: MachineSimulator._exec_unwind,
    Semantics.NOP: MachineSimulator._exec_nop,
    Semantics.VLOAD: MachineSimulator._exec_vload,
    Semantics.VSTORE: MachineSimulator._exec_vstore,
}


def _zero_of(type_: types.Type):
    if type_.is_floating_point:
        return 0.0
    if type_.is_bool:
        return False
    return 0


_OVERFLOW_OPS = ("add", "sub", "mul", "div", "rem")


def _raw_int_alu(op: str, lhs: int, rhs: int,
                 value_type: types.IntegerType) -> int:
    """The unbounded Python-int result of one integer ALU op; the caller
    wraps (and decides what an out-of-range result means)."""
    if op == "add":
        return lhs + rhs
    if op == "sub":
        return lhs - rhs
    if op == "mul":
        return lhs * rhs
    if op in ("div", "rem"):
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        return quotient if op == "div" else lhs - quotient * rhs
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op in ("min", "max"):
        # The vector-reduce fold op: lhs is the accumulator, rhs the
        # lane — `lane if lane REL acc else acc`, matching the
        # reference interpreter's ordered reduce exactly.
        if op == "min":
            return rhs if rhs < lhs else lhs
        return rhs if rhs > lhs else lhs
    if op == "shl":
        return lhs << (rhs & (value_type.bits - 1))
    if op == "shr":
        amount = rhs & (value_type.bits - 1)
        if value_type.is_signed:
            return lhs >> amount
        return (lhs & ((1 << value_type.bits) - 1)) >> amount
    raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                        "bad alu op {0!r}".format(op))


def _int_alu(op: str, lhs: int, rhs: int,
             value_type: types.IntegerType, ee: bool = False) -> int:
    raw = _raw_int_alu(op, lhs, rhs, value_type)
    wrapped = value_type.wrap(raw)
    if ee and wrapped != raw and op in _OVERFLOW_OPS:
        # Same unhandled-trap report as the interpreters: integer
        # overflow delivers detail "" / info 0 (shifts mask silently).
        raise ExecutionTrap(TrapKind.INTEGER_OVERFLOW,
                            "no handler registered", 0)
    return wrapped


def _push_slot_type(value, value_type: Optional[types.Type]) -> types.Type:
    """Every pushed slot is 8 bytes; pick a type wide enough to round-
    trip the value."""
    if value_type is not None:
        if value_type.is_floating_point:
            return types.DOUBLE
        if value_type.is_pointer:
            return types.ULONG
        if value_type.is_bool:
            return types.ULONG
        if value_type.is_integer:
            return types.LONG if value_type.is_signed else types.ULONG
    if isinstance(value, float):
        return types.DOUBLE
    if isinstance(value, bool):
        return types.ULONG
    if isinstance(value, int) and value < 0:
        return types.LONG
    return types.ULONG


# ---------------------------------------------------------------------------
# Tier-3: hosted native execution inside the fast interpreter
# ---------------------------------------------------------------------------
#
# The tiered engine's top rung runs the FunctionJIT translation of a hot
# function instead of its tier-2 generator unit.  The translation is
# lowered in *hosted* mode (no static frame preallocation; allocas stay
# symbolic ALLOCA micro-ops that share the interpreter's stack), so LLVA-
# visible state — memory, addresses, faults, runtime effects — is
# produced through exactly the same Memory/ProgramImage the tier-1
# closures use.  Machine-private state (registers, spill slots, the
# outgoing-argument stack) lives in per-activation Python structures.
#
# The executor is a generator speaking the tier-2 yield protocol:
# ``("call", fn, args)``, ``("rt", name, args)``, ``("intr", name,
# args)`` and ``("icall", address, args)`` yield back to the tier-1
# driver, which pushes frames or performs the effect and resumes the
# generator with the result.  Deliverable traps leave native code for
# good: the executor yields ``("deopt", site, shadow, trapno, info,
# detail)`` and returns, and the driver rebuilds a tier-1 frame from the
# V-ABI shadow (see ``FastInterpreter._tier3_deopt``).


class UnsupportedHosted(Exception):
    """The function cannot be translated for the hosted executor."""


#: Execution backends for tier-3 units.  ``threaded`` block-compiles the
#: machine code to Python at build time (fast path); ``step`` interprets
#: one machine instruction at a time (``_run_hosted``, the semantic
#: oracle the threaded code must match byte for byte).
TIER3_BACKENDS = ("threaded", "step")


class Tier3Unit:
    """A hosted-mode translation plus the bookkeeping the tier-1 driver
    needs to enter, observe, and deoptimize it."""

    kind = "tier3"

    __slots__ = ("name", "machine", "smc_version", "num_args",
                 "num_slots", "block_steps", "block_cycles",
                 "slot_by_site", "backend", "degraded", "_threaded")

    def __init__(self, name: str, machine: MachineFunction,
                 smc_version: int, num_args: int, num_slots: int,
                 block_steps: Dict[str, int],
                 slot_by_site: Dict[str, int],
                 backend: str = "threaded"):
        self.name = name
        self.machine = machine
        self.smc_version = smc_version
        self.num_args = num_args
        self.num_slots = num_slots
        #: Interpreter steps charged on entering each block (the tier-1
        #: per-edge bump: 1 for the branch + one per phi).  Blocks added
        #: by critical-edge splitting are absent and charge nothing.
        self.block_steps = block_steps
        #: "block:index" V-ABI site -> tier-1 register slot, for deopt.
        self.slot_by_site = slot_by_site
        self.block_cycles = {
            block.name: sum(instr_cost(instr)
                            for instr in block.instructions)
            for block in machine.blocks}
        if backend not in TIER3_BACKENDS:
            raise ValueError(
                "unknown tier-3 backend {0!r}".format(backend))
        #: True when a requested threaded compile hit an instruction the
        #: block compiler cannot express and fell back per-function to
        #: the step backend (counted by the cache, never a pin reason).
        self.degraded = False
        self._threaded = None
        if backend == "threaded":
            try:
                self._threaded = _compile_threaded(self)
            except UnsupportedThreaded:
                backend = "step"
                self.degraded = True
        self.backend = backend

    def factory(self, st, *args):
        threaded = self._threaded
        if threaded is not None:
            return threaded(st, *args)
        return _run_hosted(st, self, list(args))


def _run_hosted(st, unit: Tier3Unit, args: list):
    """One activation of a hosted translation, as a tier-2-protocol
    generator driven by ``FastInterpreter._tier3_driver``."""
    machine = unit.machine
    target = machine.target
    arg_regs = target.arg_regs
    return_reg = target.return_reg
    blocks = machine.blocks
    block_position = {block.name: position
                      for position, block in enumerate(blocks)}
    block_steps = unit.block_steps
    block_cycles = unit.block_cycles
    pmask = _pointer_mask(st.target)
    memory = st.memory
    image = st.image

    registers: Dict[str, object] = {}
    slots: Dict[int, object] = {}   # fp-relative spill/fold slots
    arg_stack: list = []            # virtualized outgoing-arg pushes
    incoming = list(args[len(arg_regs):])
    for reg_name, value in zip(arg_regs, args):
        registers[reg_name] = value
    # Tier-1 register shadow, V-ABI slot numbering: arguments first,
    # then one slot per value-producing instruction.  Instructions
    # carrying a "vabi" slot number refresh it, so at any deopt site the
    # shadow maps straight onto a tier-1 frame's register file.
    shadow = [0] * unit.num_slots
    shadow[:len(args)] = args

    def real_address(mem) -> int:
        address = mem.offset
        if mem.symbol is not None:
            address += image.address_of(mem.symbol)
        if mem.base is not None:
            address += int(registers.get(mem.base.name, 0))
        if mem.index is not None:
            address += int(registers.get(mem.index.name, 0)) * mem.scale
        return address

    def is_frame_slot(mem) -> bool:
        return mem.symbol is None and mem.index is None \
            and mem.base is not None and mem.base.name == "fp"

    def value_of(operand, value_type=None):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, PhysReg):
            return registers.get(operand.name, 0)
        if isinstance(operand, SymRef):
            return image.address_of(operand.name)
        if isinstance(operand, Mem):
            if operand.symbol == INCOMING_ARGS:
                return incoming[operand.offset // 8]
            if is_frame_slot(operand):
                return slots.get(operand.offset, 0)
            return memory.read_typed(real_address(operand),
                                     value_type or types.ULONG)
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "bad operand {0!r}".format(operand))

    def masked(ee: bool, unmaskable: bool) -> bool:
        return not unmaskable and not (ee and st.exceptions_dynamic)

    def goto(label: str) -> int:
        position = block_position.get(label)
        if position is None:
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "jump to unknown label {0}".format(label))
        steps = st.steps + block_steps.get(label, 0)
        st.steps = steps
        st.tier3_cycles += block_cycles.get(label, 0)
        ms = st.max_steps
        if ms is not None and steps > ms:
            raise StepLimitExceeded("exceeded {0} steps".format(ms))
        return position

    bi = 0
    ii = 0
    if blocks:
        st.tier3_cycles += block_cycles.get(blocks[0].name, 0)
    while True:
        block = blocks[bi]
        instructions = block.instructions
        if ii >= len(instructions):
            # Lexical fallthrough is a real CFG edge (the translator
            # removed the jump to the next block in layout order).
            if bi + 1 >= len(blocks):
                raise ExecutionTrap(
                    TrapKind.SOFTWARE_TRAP,
                    "fell off the end of block {0} in {1}"
                    .format(block.name, machine.name))
            bi = goto(blocks[bi + 1].name)
            ii = 0
            continue
        instr = instructions[ii]
        attrs = instr.attrs
        sem = instr.semantics
        ops = instr.operands
        if "step" in attrs:
            # One interpreter step per LLVA instruction, charged on the
            # first machine instruction of its run.  No limit check
            # here: tier-1 only checks at edges and calls, and the
            # differential suite compares step counts exactly.
            st.steps += 1

        if sem == Semantics.MOV:
            value_type = attrs.get("mem_value_type") \
                or attrs.get("value_type")
            registers[ops[0].name] = value_of(ops[1], value_type)
        elif sem == Semantics.ALU:
            value_type = attrs["value_type"]
            mem_type = attrs.get("mem_value_type") or value_type
            op = attrs["op"]
            lhs = value_of(ops[1], value_type)
            rhs = value_of(ops[2], mem_type)
            if value_type.is_floating_point:
                result = _float_arith(op, lhs, rhs)
                if value_type is types.FLOAT:
                    result = _round_f32(result)
                registers[ops[0].name] = result
            elif value_type.is_bool:
                if op == "and":
                    registers[ops[0].name] = lhs & rhs
                elif op == "or":
                    registers[ops[0].name] = lhs | rhs
                else:
                    registers[ops[0].name] = lhs ^ rhs
            else:
                lhs = int(lhs)
                rhs = int(rhs)
                ee = attrs.get("ee", False)
                if op in ("div", "rem") and rhs == 0:
                    if masked(ee, False):
                        registers[ops[0].name] = 0
                    else:
                        yield ("deopt", attrs.get("site"), list(shadow),
                               TrapKind.DIVIDE_BY_ZERO, 0, "")
                        return
                else:
                    raw = _raw_int_alu(op, lhs, rhs, value_type)
                    wrapped = value_type.wrap(raw)
                    if wrapped != raw and op in _OVERFLOW_OPS \
                            and ee and st.exceptions_dynamic:
                        yield ("deopt", attrs.get("site"), list(shadow),
                               TrapKind.INTEGER_OVERFLOW, 0, "")
                        return
                    registers[ops[0].name] = wrapped
        elif sem == Semantics.CMP:
            value_type = attrs.get("value_type")
            mem_type = attrs.get("mem_value_type") or value_type
            rel = attrs["rel"]
            lhs = value_of(ops[1], value_type)
            rhs = value_of(ops[2], mem_type)
            if rel == "eq":
                result = lhs == rhs
            elif rel == "ne":
                result = lhs != rhs
            elif rel == "lt":
                result = lhs < rhs
            elif rel == "gt":
                result = lhs > rhs
            elif rel == "le":
                result = lhs <= rhs
            else:
                result = lhs >= rhs
            registers[ops[0].name] = result
        elif sem == Semantics.LOAD:
            value_type = attrs.get("value_type") or types.ULONG
            mem = ops[1]
            if mem.symbol == INCOMING_ARGS:
                registers[ops[0].name] = incoming[mem.offset // 8]
            elif is_frame_slot(mem):
                registers[ops[0].name] = slots.get(mem.offset, 0)
            else:
                try:
                    value = memory.read_typed(real_address(mem),
                                              value_type)
                except MemoryError_ as fault:
                    if masked(attrs.get("ee", False), fault.unmaskable):
                        value = _zero_of(value_type)
                    else:
                        yield ("deopt", attrs.get("site"), list(shadow),
                               fault.trap_number, fault.address or 0,
                               fault.detail)
                        return
                registers[ops[0].name] = value
        elif sem == Semantics.STORE:
            value_type = attrs.get("value_type") or types.ULONG
            mem = ops[1]
            value = value_of(ops[0])
            if mem.symbol is None and is_frame_slot(mem):
                slots[mem.offset] = value
            else:
                try:
                    memory.write_typed(real_address(mem), value_type,
                                       value)
                except MemoryError_ as fault:
                    if not masked(attrs.get("ee", False),
                                  fault.unmaskable):
                        yield ("deopt", attrs.get("site"), list(shadow),
                               fault.trap_number, fault.address or 0,
                               fault.detail)
                        return
        elif sem == Semantics.VLOAD:
            element = attrs["value_type"]
            esize = attrs["esize"]
            lane_ops = ops[:-1]
            address = real_address(ops[-1])
            try:
                values = [memory.read_typed(address + i * esize,
                                            element)
                          for i in range(len(lane_ops))]
            except MemoryError_ as fault:
                if masked(attrs.get("ee", True), fault.unmaskable):
                    # Atomic over lanes: all-zero result vector.
                    values = [_zero_of(element)] * len(lane_ops)
                else:
                    yield ("deopt", attrs.get("site"), list(shadow),
                           fault.trap_number, fault.address or 0,
                           fault.detail)
                    return
            for operand, value in zip(lane_ops, values):
                if isinstance(operand, Mem):
                    slots[operand.offset] = value  # spilled lane
                else:
                    registers[operand.name] = value
        elif sem == Semantics.VSTORE:
            element = attrs["value_type"]
            esize = attrs["esize"]
            lane_ops = ops[:-1]
            address = real_address(ops[-1])
            try:
                for position, operand in enumerate(lane_ops):
                    memory.write_typed(address + position * esize,
                                       element, value_of(operand))
            except MemoryError_ as fault:
                # Masked: lanes before the fault stay written, the rest
                # are dropped — byte-identical to the interpreters.
                if not masked(attrs.get("ee", True), fault.unmaskable):
                    yield ("deopt", attrs.get("site"), list(shadow),
                           fault.trap_number, fault.address or 0,
                           fault.detail)
                    return
        elif sem == Semantics.LEA:
            registers[ops[0].name] = real_address(ops[1]) & pmask
        elif sem == Semantics.CVT:
            from_type = attrs["from_type"]
            to_type = attrs["to_type"]
            registers[ops[0].name] = cast_value(
                value_of(ops[1], from_type), from_type, to_type,
                st.target)
        elif sem == Semantics.JMP:
            bi = goto(ops[0].name)
            ii = 0
            continue
        elif sem == Semantics.JCC:
            if value_of(ops[0], types.BOOL):
                bi = goto(ops[1].name)
                ii = 0
                continue
        elif sem == Semantics.CALL:
            nargs = attrs.get("nargs", 0)
            nreg = min(nargs, len(arg_regs))
            call_args = [registers.get(arg_regs[i], 0)
                         for i in range(nreg)]
            nstack = nargs - nreg
            if nstack:
                call_args.extend(reversed(arg_stack[-nstack:]))
            callee = ops[0]
            return_type = attrs.get("return_type")
            try:
                if isinstance(callee, SymRef):
                    callk = attrs.get("callk", "fn")
                    if callk == "intr":
                        result = yield ("intr", callee.name, call_args)
                    elif callk == "rt":
                        result = yield ("rt", callee.name, call_args)
                    else:
                        fn = st.module.functions.get(callee.name)
                        if fn is None:
                            raise ExecutionTrap(
                                TrapKind.SOFTWARE_TRAP,
                                "call to undefined function %{0}"
                                .format(callee.name))
                        ms = st.max_steps
                        if ms is not None and st.steps > ms:
                            raise StepLimitExceeded(
                                "exceeded {0} steps".format(ms))
                        result = yield ("call", fn, call_args)
                else:
                    address = int(value_of(callee))
                    result = yield ("icall", address, call_args)
            except MemoryError_ as fault:
                if masked(attrs.get("ee", True), fault.unmaskable):
                    if return_type is not None \
                            and not return_type.is_void:
                        registers[return_reg] = _zero_of(return_type)
                else:
                    yield ("deopt", attrs.get("site"), list(shadow),
                           fault.trap_number, fault.address or 0,
                           fault.detail)
                    return
            else:
                if return_type is not None and not return_type.is_void:
                    registers[return_reg] = result
        elif sem == Semantics.RET:
            return registers.get(return_reg)
        elif sem == Semantics.PUSH:
            # Linear-scan "save" pseudo-pushes are no-ops here: the
            # register file is per-activation, so callee-saved state
            # cannot be clobbered.
            if instr.mnemonic != "save":
                arg_stack.append(value_of(ops[0]))
        elif sem == Semantics.POP:
            if instr.mnemonic != "restore":
                registers[ops[0].name] = \
                    arg_stack.pop() if arg_stack else 0
        elif sem == Semantics.ADJSP:
            if attrs.get("negate"):
                raise ExecutionTrap(
                    TrapKind.SOFTWARE_TRAP,
                    "dynamic stack adjustment in hosted code")
            drop = int(value_of(ops[0], types.ULONG)) // 8
            if drop:
                del arg_stack[-drop:]
        elif sem == Semantics.ALLOCA:
            esize = attrs["esize"]
            align = max(attrs.get("align", 1), 1)
            count = int(value_of(ops[1]))
            total = max(esize * max(count, 0), 1)
            try:
                address = memory.push_frame(total, align)
            except ExecutionTrap as trap:
                if masked(attrs.get("ee", False), trap.unmaskable):
                    registers[ops[0].name] = 0
                else:
                    yield ("deopt", attrs.get("site"), list(shadow),
                           trap.trap_number, 0, trap.detail)
                    return
            else:
                registers[ops[0].name] = address
        elif sem == Semantics.NOP:
            pass
        else:
            raise ExecutionTrap(
                TrapKind.SOFTWARE_TRAP,
                "hosted executor cannot run {0!r}".format(sem))

        slot = attrs.get("vabi")
        if slot is not None:
            if sem == Semantics.STORE:
                shadow[slot] = value_of(ops[0])
            else:
                shadow[slot] = registers.get(ops[0].name, 0)
        ii += 1


# ---------------------------------------------------------------------------
# Tier-3 threaded backend: block-compiled direct-threaded execution
# ---------------------------------------------------------------------------
#
# ``_run_hosted`` above re-decodes every machine instruction on every
# executed cycle.  The threaded backend instead compiles each basic
# block, once, at unit-build time, into straight-line Python source
# (mirroring the tier-2 codegen idiom): operands are resolved at decode
# time, registers and frame slots become Python locals, the per-block
# cycle total is charged in one batched add at each edge, and branches
# thread block-to-block through a single ``__blk`` dispatch loop.
#
# The compiled generator speaks the exact tier-2 yield protocol and must
# be *observably byte-identical* to ``_run_hosted`` — same step counts,
# same cycle totals, same deopt tuples, same trap reports.  Step
# accounting uses a local ``__steps`` mirror of ``st.steps`` that is
# written back at every observation point: before any yield, at returns,
# and (via the outermost ``except BaseException``) whenever an exception
# escapes.  After a ``call``/``rt``/``intr``/``icall`` yield resumes the
# mirror is re-read, because the driver ran other code meanwhile.
#
# Anything the block compiler cannot express raises
# :class:`UnsupportedThreaded` and the whole function degrades to the
# step backend — a per-function fallback, never a pin.


class UnsupportedThreaded(Exception):
    """The machine function cannot be block-compiled; the tier-3 unit
    degrades (per function) to the step backend."""


def _div_int(lhs: int, rhs: int) -> int:
    """C-style truncating division (same math as ``_raw_int_alu``)."""
    quotient = abs(lhs) // abs(rhs)
    if (lhs < 0) != (rhs < 0):
        quotient = -quotient
    return quotient


def _rem_int(lhs: int, rhs: int) -> int:
    """C-style remainder paired with :func:`_div_int`."""
    quotient = abs(lhs) // abs(rhs)
    if (lhs < 0) != (rhs < 0):
        quotient = -quotient
    return lhs - quotient * rhs


#: Globals visible to every compiled tier-3 body.  Copied per function
#: (plus the function's constant pool) so units never share mutable
#: state — threaded compiles may run on background compile workers.
_T3_NAMESPACE = {
    "ExecutionTrap": ExecutionTrap,
    "TrapKind": TrapKind,
    "StepLimitExceeded": StepLimitExceeded,
    "MemoryError_": MemoryError_,
    "_float_arith": _float_arith,
    "_round_f32": _round_f32,
    "_cast_value": cast_value,
    "_pointer_mask": _pointer_mask,
    "_div_int": _div_int,
    "_rem_int": _rem_int,
    "__builtins__": {
        "BaseException": BaseException,
        "abs": abs, "bool": bool, "float": float, "int": int,
        "len": len, "list": list, "max": max, "min": min,
    },
}


class _ThreadedCodegen:
    """Emits one machine function as Python generator source."""

    _REL = {"eq": "==", "ne": "!=", "lt": "<", "gt": ">", "le": "<="}

    def __init__(self, unit: Tier3Unit):
        self.unit = unit
        self.machine = unit.machine
        target = self.machine.target
        self.arg_regs = tuple(target.arg_regs)
        self.return_reg = target.return_reg
        self.blocks = self.machine.blocks
        if not self.blocks:
            raise UnsupportedThreaded("no blocks")
        self.block_index = {block.name: position
                            for position, block in enumerate(self.blocks)}
        self.body: List[str] = []
        self.depth = 3
        #: register name -> local, frame offset -> local, symbol -> local
        self.reg_locals: Dict[str, str] = {}
        self.slot_locals: Dict[int, str] = {}
        self.sym_locals: Dict[str, str] = {}
        self.fn_locals: Dict[str, str] = {}
        self.const_names: Dict[int, str] = {}
        self.const_values: Dict[str, object] = {}
        #: registers that are statically the destination of some write
        #: (used to decide whether RET can return the local or ``None``).
        self.dest_written = set()
        self.uses_read = False
        self.uses_write = False
        self.uses_push_frame = False
        self.uses_incoming = False
        self.uses_arg_stack = False
        self.uses_pmask = False
        self.uses_target = False

    # -- symbol tables ----------------------------------------------------

    def reg(self, name: str) -> str:
        local = self.reg_locals.get(name)
        if local is None:
            local = self.reg_locals[name] = "_r{0}".format(
                len(self.reg_locals))
        return local

    def slot(self, offset: int) -> str:
        local = self.slot_locals.get(offset)
        if local is None:
            local = self.slot_locals[offset] = "_s{0}".format(
                len(self.slot_locals))
        return local

    def sym(self, name: str) -> str:
        local = self.sym_locals.get(name)
        if local is None:
            local = self.sym_locals[name] = "_g{0}".format(
                len(self.sym_locals))
        return local

    def fn(self, name: str) -> str:
        local = self.fn_locals.get(name)
        if local is None:
            local = self.fn_locals[name] = "_f{0}".format(
                len(self.fn_locals))
        return local

    def const(self, obj) -> str:
        key = id(obj)
        local = self.const_names.get(key)
        if local is None:
            local = "_c{0}".format(len(self.const_names))
            self.const_names[key] = local
            self.const_values[local] = obj
        return local

    def dest(self, operand) -> str:
        if not isinstance(operand, PhysReg):
            raise UnsupportedThreaded("non-register destination")
        return self.reg(operand.name)

    # -- expressions ------------------------------------------------------

    @staticmethod
    def int_literal(value: int) -> str:
        return repr(value) if value >= 0 else "({0})".format(value)

    @staticmethod
    def zero_literal(type_: types.Type) -> str:
        if type_.is_floating_point:
            return "0.0"
        if type_.is_bool:
            return "False"
        return "0"

    @staticmethod
    def is_frame_slot(mem: Mem) -> bool:
        return mem.symbol is None and mem.index is None \
            and mem.base is not None and getattr(mem.base, "name", None) \
            == "fp"

    def addr(self, mem: Mem) -> str:
        """``real_address(mem)`` as an expression."""
        parts = []
        if mem.symbol is not None:
            if mem.symbol == INCOMING_ARGS:
                raise UnsupportedThreaded("address of incoming args")
            parts.append(self.sym(mem.symbol))
        if mem.base is not None:
            if not isinstance(mem.base, PhysReg):
                raise UnsupportedThreaded("virtual base register")
            parts.append("int({0})".format(self.reg(mem.base.name)))
        if mem.index is not None:
            if not isinstance(mem.index, PhysReg):
                raise UnsupportedThreaded("virtual index register")
            parts.append("int({0}) * {1}".format(
                self.reg(mem.index.name), self.int_literal(mem.scale)))
        if mem.offset:
            parts.append(self.int_literal(mem.offset))
        if not parts:
            return "0"
        return "({0})".format(" + ".join(parts))

    def mem_val(self, mem: Mem, value_type) -> str:
        if mem.symbol == INCOMING_ARGS:
            self.uses_incoming = True
            return "__in[{0}]".format(mem.offset // 8)
        if self.is_frame_slot(mem):
            return self.slot(mem.offset)
        self.uses_read = True
        return "__read({0}, {1})".format(
            self.addr(mem), self.const(value_type or types.ULONG))

    def val(self, operand, value_type=None, as_int=False) -> str:
        """``value_of(operand, value_type)`` as an expression; with
        ``as_int`` the result is wrapped in ``int()`` unless it is
        statically an int already."""
        if isinstance(operand, Imm):
            value = operand.value
            if isinstance(value, bool):
                return repr(int(value)) if as_int else repr(value)
            if isinstance(value, int):
                return self.int_literal(value)
            if isinstance(value, float):
                name = self.const(value)
                return "int({0})".format(name) if as_int else name
            raise UnsupportedThreaded(
                "bad immediate {0!r}".format(value))
        if isinstance(operand, PhysReg):
            local = self.reg(operand.name)
            return "int({0})".format(local) if as_int else local
        if isinstance(operand, SymRef):
            return self.sym(operand.name)  # addresses are already int
        if isinstance(operand, Mem):
            expr = self.mem_val(operand, value_type)
            return "int({0})".format(expr) if as_int else expr
        raise UnsupportedThreaded("bad operand {0!r}".format(operand))

    @staticmethod
    def fault_unmasked_expr(ee: bool) -> str:
        """``not masked(ee, fault.unmaskable)`` with the static ``ee``
        folded in (the fault is bound to ``__f``)."""
        if ee:
            return "__f.unmaskable or st.exceptions_dynamic"
        return "__f.unmaskable"

    def wrap_expr(self, expr: str, value_type) -> str:
        mask = (1 << value_type.bits) - 1
        if value_type.is_signed:
            sign = 1 << (value_type.bits - 1)
            return "((({0}) & {1}) ^ {2}) - {2}".format(expr, mask, sign)
        return "({0}) & {1}".format(expr, mask)

    def raw_alu_expr(self, op: str, lhs: str, rhs: str,
                     value_type) -> str:
        if op == "add":
            return "{0} + {1}".format(lhs, rhs)
        if op == "sub":
            return "{0} - {1}".format(lhs, rhs)
        if op == "mul":
            return "{0} * {1}".format(lhs, rhs)
        if op == "and":
            return "{0} & {1}".format(lhs, rhs)
        if op == "or":
            return "{0} | {1}".format(lhs, rhs)
        if op == "xor":
            return "{0} ^ {1}".format(lhs, rhs)
        if op in ("min", "max"):
            # The vector-reduce fold op: lhs is the accumulator, rhs
            # the lane.  Operand expressions here are pure (locals,
            # slot locals, literals), so repeating them in the
            # conditional is safe.
            rel = "<" if op == "min" else ">"
            return "(({1}) if ({1}) {2} ({0}) else ({0}))".format(
                lhs, rhs, rel)
        amount = "({0} & {1})".format(rhs, value_type.bits - 1)
        if op == "shl":
            return "{0} << {1}".format(lhs, amount)
        if op == "shr":
            if value_type.is_signed:
                return "{0} >> {1}".format(lhs, amount)
            full = (1 << value_type.bits) - 1
            return "(({0}) & {1}) >> {2}".format(lhs, full, amount)
        raise UnsupportedThreaded("bad alu op {0!r}".format(op))

    # -- statement emission -----------------------------------------------

    def emit(self, text: str) -> None:
        self.body.append("    " * self.depth + text)

    def emit_deopt(self, extra_depth: int, site, trapno: str, info: str,
                   detail: str, sync: bool = True) -> None:
        self.depth += extra_depth
        if sync:
            self.emit("st.steps = __steps")
        self.emit("yield ('deopt', {0!r}, list(__sh), {1}, {2}, {3})"
                  .format(site, trapno, info, detail))
        self.emit("return")
        self.depth -= extra_depth

    def emit_edge(self, label: str) -> None:
        """One CFG edge: charge the target block's steps and cycles in a
        batched add, check the limit, thread to the target's arm."""
        position = self.block_index.get(label)
        if position is None:
            raise UnsupportedThreaded(
                "jump to unknown label {0}".format(label))
        steps = self.unit.block_steps.get(label, 0)
        if steps:
            self.emit("__steps += {0}".format(steps))
        cycles = self.unit.block_cycles.get(label, 0)
        if cycles:
            self.emit("st.tier3_cycles += {0}".format(cycles))
        self.emit("if __steps > __ms:")
        self.emit("    raise StepLimitExceeded("
                  "'exceeded {0} steps'.format(__ms))")
        self.emit("__blk = {0}".format(position))
        self.emit("continue")

    def emit_block(self, position: int, block) -> None:
        self.depth = 3
        self.emit("{0} __blk == {1}:".format(
            "if" if position == 0 else "elif", position))
        self.depth = 4
        for instr in block.instructions:
            self.emit_instr(instr)
        # Lexical fallthrough is a real CFG edge (the translator removed
        # the jump to the next block in layout order).
        if position + 1 < len(self.blocks):
            self.emit_edge(self.blocks[position + 1].name)
        else:
            self.emit("raise ExecutionTrap(TrapKind.SOFTWARE_TRAP, {0!r})"
                      .format("fell off the end of block {0} in {1}"
                              .format(block.name, self.machine.name)))

    def emit_instr(self, instr: MachineInstr) -> None:
        attrs = instr.attrs
        if "step" in attrs:
            self.emit("__steps += 1")
        handler = self._EMIT.get(instr.semantics)
        if handler is None:
            raise UnsupportedThreaded(
                "cannot compile {0!r}".format(instr.semantics))
        if handler(self, instr):
            return  # control unconditionally left the instruction
        slot = attrs.get("vabi")
        if slot is not None:
            self.emit_vabi(instr, slot)

    def emit_vabi(self, instr: MachineInstr, slot) -> None:
        if not isinstance(slot, int) or isinstance(slot, bool):
            raise UnsupportedThreaded("unresolved vabi site")
        ops = instr.operands
        if not ops:
            raise UnsupportedThreaded("vabi without operands")
        if instr.semantics == Semantics.STORE:
            expr = self.val(ops[0])
        else:
            name = getattr(ops[0], "name", None)
            if name is None:
                raise UnsupportedThreaded("vabi on unnamed operand")
            # registers.get(name, 0): a never-written name reads as 0.
            expr = self.reg_locals.get(name, "0")
        self.emit("__sh[{0}] = {1}".format(slot, expr))

    # -- per-semantics emitters -------------------------------------------

    def emit_mov(self, instr) -> bool:
        value_type = instr.attrs.get("mem_value_type") \
            or instr.attrs.get("value_type")
        self.emit("{0} = {1}".format(
            self.dest(instr.operands[0]),
            self.val(instr.operands[1], value_type)))
        return False

    def emit_alu(self, instr) -> bool:
        attrs = instr.attrs
        ops = instr.operands
        value_type = attrs["value_type"]
        mem_type = attrs.get("mem_value_type") or value_type
        op = attrs["op"]
        dst = self.dest(ops[0])
        if value_type.is_floating_point:
            expr = "_float_arith({0!r}, {1}, {2})".format(
                op, self.val(ops[1], value_type),
                self.val(ops[2], mem_type))
            if value_type is types.FLOAT:
                expr = "_round_f32({0})".format(expr)
            self.emit("{0} = {1}".format(dst, expr))
            return False
        if value_type.is_bool:
            pyop = "&" if op == "and" else ("|" if op == "or" else "^")
            self.emit("{0} = {1} {2} {3}".format(
                dst, self.val(ops[1], value_type), pyop,
                self.val(ops[2], mem_type)))
            return False
        if not value_type.is_integer:
            raise UnsupportedThreaded(
                "alu on {0!r}".format(value_type))
        ee = bool(attrs.get("ee", False))
        site = attrs.get("site")
        lhs = self.val(ops[1], value_type, as_int=True)
        rhs = self.val(ops[2], mem_type, as_int=True)
        if op in ("div", "rem"):
            self.emit("__l = {0}".format(lhs))
            self.emit("__r = {0}".format(rhs))
            self.emit("if __r == 0:")
            self.depth += 1
            if ee:
                self.emit("if st.exceptions_dynamic:")
                self.emit_deopt(1, site, "TrapKind.DIVIDE_BY_ZERO",
                                "0", "''")
            self.emit("{0} = 0".format(dst))
            self.depth -= 1
            self.emit("else:")
            self.depth += 1
            helper = "_div_int" if op == "div" else "_rem_int"
            self.emit_int_result(
                dst, "{0}(__l, __r)".format(helper), value_type, op, ee,
                site)
            self.depth -= 1
            return False
        raw = self.raw_alu_expr(op, lhs, rhs, value_type)
        self.emit_int_result(dst, raw, value_type, op, ee, site)
        return False

    def emit_int_result(self, dst: str, raw: str, value_type, op: str,
                        ee: bool, site) -> None:
        """Wrap ``raw`` into the type's range; with ExceptionsEnabled on
        an overflow-capable op, deopt when wrapping changed the value
        and exceptions are dynamically enabled."""
        if ee and op in _OVERFLOW_OPS:
            self.emit("__t = {0}".format(raw))
            self.emit("__w = {0}".format(
                self.wrap_expr("__t", value_type)))
            self.emit("if __w != __t and st.exceptions_dynamic:")
            self.emit_deopt(1, site, "TrapKind.INTEGER_OVERFLOW",
                            "0", "''")
            self.emit("{0} = __w".format(dst))
        else:
            self.emit("{0} = {1}".format(
                dst, self.wrap_expr(raw, value_type)))

    def emit_cmp(self, instr) -> bool:
        attrs = instr.attrs
        value_type = attrs.get("value_type")
        mem_type = attrs.get("mem_value_type") or value_type
        pyrel = self._REL.get(attrs["rel"], ">=")
        self.emit("{0} = {1} {2} {3}".format(
            self.dest(instr.operands[0]),
            self.val(instr.operands[1], value_type), pyrel,
            self.val(instr.operands[2], mem_type)))
        return False

    def emit_load(self, instr) -> bool:
        attrs = instr.attrs
        value_type = attrs.get("value_type") or types.ULONG
        dst = self.dest(instr.operands[0])
        mem = instr.operands[1]
        if not isinstance(mem, Mem):
            raise UnsupportedThreaded("load from non-memory operand")
        if mem.symbol == INCOMING_ARGS:
            self.uses_incoming = True
            self.emit("{0} = __in[{1}]".format(dst, mem.offset // 8))
            return False
        if self.is_frame_slot(mem):
            self.emit("{0} = {1}".format(dst, self.slot(mem.offset)))
            return False
        self.uses_read = True
        self.emit("try:")
        self.emit("    {0} = __read({1}, {2})".format(
            dst, self.addr(mem), self.const(value_type)))
        self.emit("except MemoryError_ as __f:")
        self.depth += 1
        self.emit("if {0}:".format(
            self.fault_unmasked_expr(attrs.get("ee", False))))
        self.emit_deopt(1, attrs.get("site"), "__f.trap_number",
                        "__f.address or 0", "__f.detail")
        self.emit("{0} = {1}".format(dst, self.zero_literal(value_type)))
        self.depth -= 1
        return False

    def emit_store(self, instr) -> bool:
        attrs = instr.attrs
        value_type = attrs.get("value_type") or types.ULONG
        ops = instr.operands
        mem = ops[1]
        if not isinstance(mem, Mem):
            raise UnsupportedThreaded("store to non-memory operand")
        value = self.val(ops[0])
        if mem.symbol is None and self.is_frame_slot(mem):
            self.emit("{0} = {1}".format(self.slot(mem.offset), value))
            return False
        if mem.symbol == INCOMING_ARGS:
            raise UnsupportedThreaded("store to incoming args")
        self.uses_write = True
        self.emit("try:")
        self.emit("    __write({0}, {1}, {2})".format(
            self.addr(mem), self.const(value_type), value))
        self.emit("except MemoryError_ as __f:")
        self.depth += 1
        self.emit("if {0}:".format(
            self.fault_unmasked_expr(attrs.get("ee", False))))
        self.emit_deopt(1, attrs.get("site"), "__f.trap_number",
                        "__f.address or 0", "__f.detail")
        self.depth -= 1
        return False

    def lane_dest(self, operand) -> str:
        """The assignable local for one vector lane operand: a register
        local, or a slot local for a spilled lane."""
        if isinstance(operand, PhysReg):
            return self.reg(operand.name)
        if isinstance(operand, Mem) and self.is_frame_slot(operand):
            return self.slot(operand.offset)
        raise UnsupportedThreaded(
            "bad vector lane {0!r}".format(operand))

    def emit_vload(self, instr) -> bool:
        attrs = instr.attrs
        element = attrs["value_type"]
        esize = int(attrs["esize"])
        ops = instr.operands
        mem = ops[-1]
        if not isinstance(mem, Mem):
            raise UnsupportedThreaded("vload from non-memory operand")
        targets = [self.lane_dest(op) for op in ops[:-1]]
        self.uses_read = True
        ce = self.const(element)
        trailing = "," if len(targets) == 1 else ""
        lhs = ", ".join(targets) + trailing
        reads = ", ".join(
            "__read(__b + {0}, {1})".format(i * esize, ce) if i
            else "__read(__b, {0})".format(ce)
            for i in range(len(targets)))
        self.emit("__b = {0}".format(self.addr(mem)))
        # The tuple RHS evaluates every lane read (in lane order)
        # before any target is assigned: a fault leaves all lanes
        # untouched, keeping the op atomic like the step backend.
        self.emit("try:")
        self.emit("    {0} = ({1}{2})".format(lhs, reads, trailing))
        self.emit("except MemoryError_ as __f:")
        self.depth += 1
        self.emit("if {0}:".format(
            self.fault_unmasked_expr(attrs.get("ee", True))))
        self.emit_deopt(1, attrs.get("site"), "__f.trap_number",
                        "__f.address or 0", "__f.detail")
        zeros = ", ".join([self.zero_literal(element)] * len(targets))
        self.emit("{0} = ({1}{2})".format(lhs, zeros, trailing))
        self.depth -= 1
        return False

    def emit_vstore(self, instr) -> bool:
        attrs = instr.attrs
        element = attrs["value_type"]
        esize = int(attrs["esize"])
        ops = instr.operands
        mem = ops[-1]
        if not isinstance(mem, Mem):
            raise UnsupportedThreaded("vstore to non-memory operand")
        values = [self.val(op) for op in ops[:-1]]
        self.uses_write = True
        ce = self.const(element)
        self.emit("__b = {0}".format(self.addr(mem)))
        # Sequential lane writes: a masked fault keeps the lanes
        # already written and drops the rest, like the step backend.
        self.emit("try:")
        for position, value in enumerate(values):
            if position:
                self.emit("    __write(__b + {0}, {1}, {2})".format(
                    position * esize, ce, value))
            else:
                self.emit("    __write(__b, {0}, {1})".format(ce, value))
        self.emit("except MemoryError_ as __f:")
        self.depth += 1
        self.emit("if {0}:".format(
            self.fault_unmasked_expr(attrs.get("ee", True))))
        self.emit_deopt(1, attrs.get("site"), "__f.trap_number",
                        "__f.address or 0", "__f.detail")
        self.depth -= 1
        return False

    def emit_lea(self, instr) -> bool:
        mem = instr.operands[1]
        if not isinstance(mem, Mem):
            raise UnsupportedThreaded("lea of non-memory operand")
        self.uses_pmask = True
        self.emit("{0} = {1} & __pm".format(
            self.dest(instr.operands[0]), self.addr(mem)))
        return False

    def emit_cvt(self, instr) -> bool:
        attrs = instr.attrs
        from_type = attrs["from_type"]
        to_type = attrs["to_type"]
        self.uses_target = True
        self.emit("{0} = _cast_value({1}, {2}, {3}, __td)".format(
            self.dest(instr.operands[0]),
            self.val(instr.operands[1], from_type),
            self.const(from_type), self.const(to_type)))
        return False

    def emit_jmp(self, instr) -> bool:
        self.emit_edge(instr.operands[0].name)
        return True

    def emit_jcc(self, instr) -> bool:
        self.emit("if {0}:".format(
            self.val(instr.operands[0], types.BOOL)))
        self.depth += 1
        self.emit_edge(instr.operands[1].name)
        self.depth -= 1
        return False

    def emit_call(self, instr) -> bool:
        attrs = instr.attrs
        ops = instr.operands
        nargs = attrs.get("nargs", 0)
        nreg = min(nargs, len(self.arg_regs))
        self.emit("__args = [{0}]".format(", ".join(
            self.reg(self.arg_regs[i]) for i in range(nreg))))
        nstack = nargs - nreg
        if nstack:
            self.uses_arg_stack = True
            self.emit("__args += __as[-{0}:][::-1]".format(nstack))
        callee = ops[0]
        return_type = attrs.get("return_type")
        has_result = return_type is not None and not return_type.is_void
        ee = attrs.get("ee", True)
        site = attrs.get("site")
        if isinstance(callee, SymRef):
            callk = attrs.get("callk", "fn")
            if callk == "intr":
                yield_expr = "yield ('intr', {0!r}, __args)".format(
                    callee.name)
            elif callk == "rt":
                yield_expr = "yield ('rt', {0!r}, __args)".format(
                    callee.name)
            else:
                fn_local = self.fn(callee.name)
                self.emit("if {0} is None:".format(fn_local))
                self.emit("    raise ExecutionTrap("
                          "TrapKind.SOFTWARE_TRAP, {0!r})".format(
                              "call to undefined function %{0}"
                              .format(callee.name)))
                self.emit("if __steps > __ms:")
                self.emit("    raise StepLimitExceeded("
                          "'exceeded {0} steps'.format(__ms))")
                yield_expr = "yield ('call', {0}, __args)".format(
                    fn_local)
        else:
            yield_expr = "yield ('icall', int({0}), __args)".format(
                self.val(callee))
        self.emit("st.steps = __steps")
        self.emit("try:")
        self.emit("    __r = " + yield_expr)
        self.emit("except MemoryError_ as __f:")
        self.depth += 1
        self.emit("__steps = st.steps")
        self.emit("if {0}:".format(self.fault_unmasked_expr(ee)))
        self.emit_deopt(1, site, "__f.trap_number", "__f.address or 0",
                        "__f.detail", sync=False)
        if has_result:
            self.emit("{0} = {1}".format(
                self.reg(self.return_reg),
                self.zero_literal(return_type)))
        self.depth -= 1
        self.emit("except BaseException:")
        self.emit("    __steps = st.steps")
        self.emit("    raise")
        self.emit("else:")
        self.depth += 1
        self.emit("__steps = st.steps")
        if has_result:
            self.emit("{0} = __r".format(self.reg(self.return_reg)))
        self.depth -= 1
        return False

    def emit_ret(self, instr) -> bool:
        self.emit("st.steps = __steps")
        name = self.return_reg
        if name in self.dest_written:
            self.emit("return {0}".format(self.reg(name)))
            return True
        for position, arg in enumerate(self.arg_regs):
            if arg == name:
                # The return register doubles as an argument register
                # (SPARC %o0): bound iff the caller passed that many.
                self.emit("return {0} if __n > {1} else None".format(
                    self.reg(name), position))
                return True
        self.emit("return None")
        return True

    def emit_push(self, instr) -> bool:
        # Linear-scan "save" pseudo-pushes are no-ops (per-activation
        # register file), exactly as in the step backend.
        if instr.mnemonic != "save":
            self.uses_arg_stack = True
            self.emit("__as.append({0})".format(
                self.val(instr.operands[0])))
        return False

    def emit_pop(self, instr) -> bool:
        if instr.mnemonic != "restore":
            self.uses_arg_stack = True
            self.emit("{0} = __as.pop() if __as else 0".format(
                self.dest(instr.operands[0])))
        return False

    def emit_adjsp(self, instr) -> bool:
        attrs = instr.attrs
        if attrs.get("negate"):
            self.emit("raise ExecutionTrap(TrapKind.SOFTWARE_TRAP, "
                      "'dynamic stack adjustment in hosted code')")
            return True
        operand = instr.operands[0]
        self.uses_arg_stack = True
        if isinstance(operand, Imm) and isinstance(operand.value, int):
            drop = int(operand.value) // 8
            if drop:
                self.emit("del __as[-{0}:]".format(drop))
            return False
        self.emit("__d = int({0}) // 8".format(
            self.val(operand, types.ULONG)))
        self.emit("if __d:")
        self.emit("    del __as[-__d:]")
        return False

    def emit_alloca(self, instr) -> bool:
        attrs = instr.attrs
        ops = instr.operands
        dst = self.dest(ops[0])
        esize = int(attrs["esize"])
        align = max(int(attrs.get("align", 1)), 1)
        self.uses_push_frame = True
        self.emit("__c = int({0})".format(self.val(ops[1])))
        self.emit("if __c < 0:")
        self.emit("    __c = 0")
        self.emit("__t = {0} * __c".format(esize))
        self.emit("if __t < 1:")
        self.emit("    __t = 1")
        self.emit("try:")
        self.emit("    {0} = __pf(__t, {1})".format(dst, align))
        self.emit("except ExecutionTrap as __f:")
        self.depth += 1
        self.emit("if {0}:".format(
            self.fault_unmasked_expr(attrs.get("ee", False))))
        self.emit_deopt(1, attrs.get("site"), "__f.trap_number", "0",
                        "__f.detail")
        self.emit("{0} = 0".format(dst))
        self.depth -= 1
        return False

    def emit_nop(self, instr) -> bool:
        return False

    _EMIT = {
        Semantics.MOV: emit_mov,
        Semantics.ALU: emit_alu,
        Semantics.CMP: emit_cmp,
        Semantics.LOAD: emit_load,
        Semantics.STORE: emit_store,
        Semantics.LEA: emit_lea,
        Semantics.CVT: emit_cvt,
        Semantics.JMP: emit_jmp,
        Semantics.JCC: emit_jcc,
        Semantics.CALL: emit_call,
        Semantics.RET: emit_ret,
        Semantics.PUSH: emit_push,
        Semantics.POP: emit_pop,
        Semantics.ADJSP: emit_adjsp,
        Semantics.ALLOCA: emit_alloca,
        Semantics.NOP: emit_nop,
        Semantics.VLOAD: emit_vload,
        Semantics.VSTORE: emit_vstore,
    }

    # -- assembly ---------------------------------------------------------

    def prescan(self) -> None:
        """Collect the register universe and the statically-written set
        before emission, so expression defaults (``registers.get(name,
        0)``) and the RET policy see every block, not just earlier
        ones."""
        dest_sems = (Semantics.MOV, Semantics.ALU, Semantics.CMP,
                     Semantics.LOAD, Semantics.LEA, Semantics.CVT,
                     Semantics.ALLOCA)
        for block in self.blocks:
            for instr in block.instructions:
                for _, reg in instr.registers():
                    if not isinstance(reg, PhysReg):
                        raise UnsupportedThreaded("virtual register")
                    self.reg(reg.name)
                sem = instr.semantics
                ops = instr.operands
                if ops and isinstance(ops[0], PhysReg) \
                        and (sem in dest_sems
                             or (sem == Semantics.POP
                                 and instr.mnemonic != "restore")):
                    self.dest_written.add(ops[0].name)
                if sem == Semantics.VLOAD:
                    for operand in ops[:-1]:
                        if isinstance(operand, PhysReg):
                            self.dest_written.add(operand.name)
                if sem == Semantics.CALL:
                    nreg = min(instr.attrs.get("nargs", 0),
                               len(self.arg_regs))
                    for i in range(nreg):
                        self.reg(self.arg_regs[i])
                    return_type = instr.attrs.get("return_type")
                    if return_type is not None \
                            and not return_type.is_void:
                        self.reg(self.return_reg)
                        self.dest_written.add(self.return_reg)

    def render(self) -> str:
        lines = ["def __tier3(st, *__a):"]
        emit = lines.append
        emit("    __steps = st.steps")
        emit("    __ms = st.max_steps")
        emit("    if __ms is None:")
        emit("        __ms = 0x7fffffffffffffff")
        if self.uses_read or self.uses_write or self.uses_push_frame:
            emit("    __mem = st.memory")
            if self.uses_read:
                emit("    __read = __mem.read_typed")
            if self.uses_write:
                emit("    __write = __mem.write_typed")
            if self.uses_push_frame:
                emit("    __pf = __mem.push_frame")
        if self.sym_locals:
            emit("    __ao = st.image.address_of")
            for name, local in self.sym_locals.items():
                emit("    {0} = __ao({1!r})".format(local, name))
        if self.fn_locals:
            emit("    __fns = st.module.functions")
            for name, local in self.fn_locals.items():
                emit("    {0} = __fns.get({1!r})".format(local, name))
        if self.uses_target:
            emit("    __td = st.target")
        if self.uses_pmask:
            emit("    __pm = _pointer_mask(st.target)")
        emit("    __n = len(__a)")
        if self.uses_incoming:
            emit("    __in = __a[{0}:]".format(len(self.arg_regs)))
        bound = set()
        for position, name in enumerate(self.arg_regs):
            local = self.reg_locals.get(name)
            if local is not None and name not in bound:
                bound.add(name)
                emit("    {0} = __a[{1}] if __n > {1} else 0".format(
                    local, position))
        for name, local in self.reg_locals.items():
            if name not in bound:
                emit("    {0} = 0".format(local))
        for local in self.slot_locals.values():
            emit("    {0} = 0".format(local))
        if self.uses_arg_stack:
            emit("    __as = []")
        emit("    __sh = [0] * {0}".format(self.unit.num_slots))
        emit("    __sh[:__n] = __a")
        entry_cycles = self.unit.block_cycles.get(self.blocks[0].name, 0)
        if entry_cycles:
            emit("    st.tier3_cycles += {0}".format(entry_cycles))
        # A body with no calls and no trap exits would otherwise compile
        # to a plain function; the driver requires a generator.
        emit("    if False:")
        emit("        yield None")
        emit("    __blk = 0")
        emit("    try:")
        emit("        while True:")
        lines.extend(self.body)
        emit("            else:")
        emit("                raise ExecutionTrap("
             "TrapKind.SOFTWARE_TRAP, 'lost block index')")
        emit("    except BaseException:")
        emit("        st.steps = __steps")
        emit("        raise")
        return "\n".join(lines) + "\n"

    def compile(self) -> Callable:
        self.prescan()
        for position, block in enumerate(self.blocks):
            self.emit_block(position, block)
        source = self.render()
        code = compile(source, "<tier3:{0}>".format(self.machine.name),
                       "exec")
        namespace = dict(_T3_NAMESPACE)
        namespace.update(self.const_values)
        exec(code, namespace)
        factory = namespace["__tier3"]
        factory._source = source  # for tests and postmortems
        return factory


def _compile_threaded(unit: Tier3Unit) -> Callable:
    """Block-compile *unit*; raises :class:`UnsupportedThreaded` when
    any instruction cannot be expressed (malformed attrs included, so a
    function the step backend would fault on at run time degrades
    rather than failing at build time)."""
    try:
        return _ThreadedCodegen(unit).compile()
    except UnsupportedThreaded:
        raise
    except (AttributeError, IndexError, KeyError, TypeError) as exc:
        raise UnsupportedThreaded(str(exc))


def build_tier3_unit(function, module: Module, target,
                     backend: str = "threaded") -> Tier3Unit:
    """Translate *function* in hosted mode and wrap it as a tier-3 unit
    running on *backend* (threaded compiles degrade per-function to the
    step backend when an instruction is unsupported).

    Raises :class:`UnsupportedHosted` for bodies the hosted executor
    cannot honour exactly (declarations, and invoke/unwind — whose
    lowered control flow charges steps differently from tier-1)."""
    from repro.ir import instructions as insts
    from repro.transforms.cloning import clone_function_body

    if function.is_declaration:
        raise UnsupportedHosted(
            "%{0} has no body".format(function.name))
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, (insts.InvokeInst, insts.UnwindInst)):
                raise UnsupportedHosted(
                    "%{0} uses invoke/unwind".format(function.name))

    # V-ABI slot numbering, identical to tier-1's decode (and the OSR
    # maps): arguments first, then every value-producing instruction in
    # block order.  Sites name the *original* blocks; the clone keeps
    # block names and instruction indices, so annotations agree.
    num_args = len(function.args)
    slot = num_args
    slot_by_site: Dict[str, int] = {}
    block_steps: Dict[str, int] = {}
    for block in function.blocks:
        block_steps[block.name] = 1 + len(block.phis())
        for index, inst in enumerate(block.instructions):
            if inst.produces_value:
                slot_by_site["{0}:{1}".format(block.name, index)] = slot
                slot += 1

    # Lower a clone: critical-edge splitting mutates the CFG, and the
    # original keeps running under tier 1/2 (and may deopt back).
    clone = clone_function_body(function)
    machine = target.translate_function(clone, hosted=True)
    _finalize_hosted(machine, module, slot_by_site)
    return Tier3Unit(function.name, machine, function.smc_version,
                     num_args, slot, block_steps, slot_by_site,
                     backend=backend)


def _finalize_hosted(machine: MachineFunction, module: Module,
                     slot_by_site: Dict[str, int]) -> None:
    """Resolve V-ABI site strings to slot numbers and classify direct
    callees, so the executor needs no IR at run time (the annotated
    machine function round-trips through persistence on its own)."""
    for block in machine.blocks:
        for instr in block.instructions:
            site = instr.attrs.get("vabi")
            if isinstance(site, str):
                number = slot_by_site.get(site)
                if number is None:
                    del instr.attrs["vabi"]
                else:
                    instr.attrs["vabi"] = number
            if instr.semantics == Semantics.CALL \
                    and isinstance(instr.operands[0], SymRef):
                name = instr.operands[0].name
                fn = module.functions.get(name)
                if is_intrinsic_name(name):
                    instr.attrs["callk"] = "intr"
                elif (fn is None or fn.is_declaration) \
                        and is_runtime_name(name):
                    instr.attrs["callk"] = "rt"
                else:
                    instr.attrs["callk"] = "fn"