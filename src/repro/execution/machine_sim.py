"""Simulator for translated native code.

Executes :class:`~repro.targets.machine.MachineInstr` semantics against
the same :class:`~repro.execution.memory.Memory` model the interpreter
uses, so a translated program must produce bit-identical results to
direct interpretation — the correctness bar for both back ends
(differential testing).

The simulator also charges per-instruction cycle costs, giving the
deterministic "run time" denominator of Table 2's translation-cost
column, and implements the calling convention contract with the code
generators:

* ``CALL`` saves the caller context, points ``fp`` at a fresh frame of
  ``frame_size`` bytes and drops ``sp`` to its base;
* incoming stack arguments live just above the frame
  (``fp + frame_size + 8*j``), exactly where the caller's pushes put
  them;
* ``RET`` restores the caller's ``sp`` and resumes after the call.

Untranslated callees trigger the ``resolver`` callback — this is the
hook LLEE's function-at-a-time JIT hangs off (Section 4.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro import observe
from repro.execution.events import ExecutionTrap, ExitRequest, TrapKind
from repro.execution.image import ProgramImage
from repro.execution.interpreter import (
    StepLimitExceeded,
    _float_arith,
    _pointer_mask,
    _round_f32,
    cast_value,
)
from repro.execution.memory import Memory, MemoryError_
from repro.execution.runtime import (
    RUNTIME_SIGNATURES,
    RuntimeLibrary,
    is_runtime_name,
)
from repro.ir import types
from repro.ir.intrinsics import is_intrinsic_name
from repro.ir.module import Module
from repro.targets.codegen import INCOMING_ARGS
from repro.targets.machine import (
    Imm,
    LabelRef,
    MachineFunction,
    MachineInstr,
    Mem,
    PhysReg,
    Semantics,
    SymRef,
)
from repro.targets.native import NativeModule

#: Cycle cost per semantic micro-op.
CYCLES = {
    Semantics.MOV: 1, Semantics.ALU: 1, Semantics.CMP: 1,
    Semantics.LOAD: 3, Semantics.STORE: 2, Semantics.LEA: 1,
    Semantics.JMP: 1, Semantics.JCC: 2, Semantics.CALL: 4,
    Semantics.RET: 2, Semantics.PUSH: 2, Semantics.POP: 2,
    Semantics.CVT: 2, Semantics.ADJSP: 1, Semantics.UNWIND: 10,
    Semantics.NOP: 1, Semantics.ALLOCA: 2,
}
_MUL_EXTRA = 2
_DIV_EXTRA = 18
_MEM_OPERAND_EXTRA = 2


def instr_cost(instr: MachineInstr) -> int:
    """Deterministic cycle cost of one machine instruction (shared by
    the simulator's budget accounting and tier-3's per-block totals)."""
    cost = CYCLES.get(instr.semantics, 1)
    if instr.semantics == Semantics.ALU:
        op = instr.attrs.get("op")
        if op == "mul":
            cost += _MUL_EXTRA
        elif op in ("div", "rem"):
            cost += _DIV_EXTRA
    if any(isinstance(op, Mem) for op in instr.operands) \
            and instr.semantics in (Semantics.ALU, Semantics.CMP,
                                    Semantics.MOV):
        cost += _MEM_OPERAND_EXTRA
    return cost


class _MachineFrame:
    __slots__ = ("machine", "block_index", "instr_index", "fp",
                 "caller_sp", "unwind_label", "saved_regs", "name")

    def __init__(self, machine: MachineFunction, fp: int, caller_sp: int):
        self.machine = machine
        self.name = machine.name
        self.block_index = 0
        self.instr_index = 0
        self.fp = fp
        self.caller_sp = caller_sp
        self.unwind_label: Optional[str] = None
        #: Callee-saved register values ("save"/"restore" pseudo-stack).
        self.saved_regs: List[object] = []


class MachineSimulator:
    """Runs native code for one target against simulated memory."""

    def __init__(self, native: NativeModule, module: Module,
                 resolver: Optional[Callable[[str],
                                             MachineFunction]] = None,
                 max_cycles: Optional[int] = None):
        self.native = native
        self.module = module
        self.target = native.target
        self.td = self.target.target_data
        self.memory = Memory(self.td)
        self.image = ProgramImage(module, self.memory)
        self.runtime = RuntimeLibrary(self.memory, lambda: self.cycles)
        self.resolver = resolver
        self.cycles = 0
        self.instructions_executed = 0
        self.max_cycles = max_cycles
        self.registers: Dict[str, object] = {}
        self.smc_listeners: List[Callable] = []
        self.storage_api_address = 0
        self._frames: List[_MachineFrame] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, function_name: str = "main",
            args: Sequence[object] = ()):
        """Execute *function_name*; returns (return value, cycles)."""
        machine = self._machine_function(function_name)
        function = self.module.get_function(function_name)
        # Entry sequence: push stack args / set arg registers, "call".
        arg_regs = self.target.arg_regs
        for value in reversed(list(args)[len(arg_regs):]):
            self._push_value(value)
        for reg_name, value in zip(arg_regs, args):
            self.registers[reg_name] = value
        self._enter_function(machine, unwind_label=None)
        exit_status = 0
        cycles_before = self.cycles
        instructions_before = self.instructions_executed
        with observe.span("native.run", entry=function_name,
                          target=self.target.name):
            try:
                self._run_loop()
            except ExitRequest as request:
                exit_status = request.status
                self._frames.clear()
        if observe.enabled():
            observe.counter("run.cycles",
                            self.cycles - cycles_before,
                            engine=self.target.name)
            observe.counter(
                "run.instructions",
                self.instructions_executed - instructions_before,
                engine=self.target.name)
        raw = self.registers.get(self.target.return_reg)
        return_type = function.return_type
        result = self._normalize_return(raw, return_type)
        return result, exit_status

    def output_text(self) -> str:
        return self.runtime.output_text()

    # ------------------------------------------------------------------
    # Function and frame management
    # ------------------------------------------------------------------

    def _machine_function(self, name: str) -> MachineFunction:
        machine = self.native.functions.get(name)
        function = self.module.functions.get(name)
        if machine is not None and function is not None \
                and machine.smc_version != function.smc_version:
            machine = None  # stale translation (SMC, Section 3.4)
        if machine is None:
            if self.resolver is None:
                raise ExecutionTrap(
                    TrapKind.SOFTWARE_TRAP,
                    "no translation for %{0}".format(name))
            machine = self.resolver(name)
            self.native.functions[name] = machine
        return machine

    def _enter_function(self, machine: MachineFunction,
                        unwind_label: Optional[str]) -> None:
        caller_sp = self.memory.stack_pointer
        fp = caller_sp - machine.frame_size
        self.memory.stack_pointer = fp
        frame = _MachineFrame(machine, fp, caller_sp)
        frame.unwind_label = unwind_label
        self._frames.append(frame)

    def _return_from_function(self) -> None:
        frame = self._frames.pop()
        self.memory.stack_pointer = frame.caller_sp

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _run_loop(self) -> None:
        # Hoisted so the disabled path pays one local-bool test per
        # instruction; op counts flush to the registry on loop exit.
        observing = observe.enabled()
        op_counts: Dict[str, int] = {}
        try:
            while self._frames:
                frame = self._frames[-1]
                block = frame.machine.blocks[frame.block_index]
                if frame.instr_index >= len(block.instructions):
                    # Fall through to the next block in layout order (the
                    # trace-layout optimization removes jumps to the
                    # lexically next block).
                    if frame.block_index + 1 < len(frame.machine.blocks):
                        frame.block_index += 1
                        frame.instr_index = 0
                        continue
                    raise ExecutionTrap(
                        TrapKind.SOFTWARE_TRAP,
                        "fell off the end of block {0} in {1}"
                        .format(block.name, frame.name))
                instr = block.instructions[frame.instr_index]
                cost = self._cost(instr)
                if self.max_cycles is not None \
                        and self.cycles + cost > self.max_cycles:
                    # A budget of N cycles means N cycles may be *spent*:
                    # the instruction that would exceed it is neither
                    # charged nor executed, so the trap fires with
                    # ``cycles`` at most N (not N + cost).
                    raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                        "cycle budget exhausted")
                self.instructions_executed += 1
                self.cycles += cost
                if observing:
                    op = instr.semantics
                    op_counts[op] = op_counts.get(op, 0) + 1
                self._execute(frame, instr)
        finally:
            if observing:
                for op, count in op_counts.items():
                    observe.counter("native.opcode", count, op=op)

    def _cost(self, instr: MachineInstr) -> int:
        return instr_cost(instr)

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------

    def _reg_read(self, reg: PhysReg):
        if reg.name == "sp":
            return self.memory.stack_pointer
        if reg.name == "fp":
            return self._frames[-1].fp
        return self.registers.get(reg.name, 0)

    def _reg_write(self, reg: PhysReg, value) -> None:
        if reg.name == "sp":
            self.memory.stack_pointer = int(value)
            return
        self.registers[reg.name] = value

    def _mem_address(self, frame: _MachineFrame, mem: Mem) -> int:
        address = 0
        if mem.symbol == INCOMING_ARGS:
            address = frame.fp + frame.machine.frame_size + mem.offset
            return address
        if mem.symbol is not None:
            address += self.image.address_of(mem.symbol)
        if mem.base is not None:
            address += int(self._reg_read(mem.base))
        if mem.index is not None:
            address += int(self._reg_read(mem.index)) * mem.scale
        return address + mem.offset

    def _value_of(self, frame: _MachineFrame, operand,
                  value_type: Optional[types.Type] = None):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, PhysReg):
            return self._reg_read(operand)
        if isinstance(operand, SymRef):
            return self.image.address_of(operand.name)
        if isinstance(operand, Mem):
            address = self._mem_address(frame, operand)
            read_type = value_type or types.ULONG
            return self.memory.read_typed(address, read_type)
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "bad operand {0!r}".format(operand))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, frame: _MachineFrame, instr: MachineInstr) -> None:
        semantics = instr.semantics
        handler = self._handlers.get(semantics)
        if handler is None:
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "unknown semantics {0!r}".format(semantics))
        handler(self, frame, instr)

    def _advance(self, frame: _MachineFrame) -> None:
        frame.instr_index += 1

    def _jump(self, frame: _MachineFrame, label: str) -> None:
        for index, block in enumerate(frame.machine.blocks):
            if block.name == label:
                frame.block_index = index
                frame.instr_index = 0
                return
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "jump to unknown label {0}".format(label))

    # -- data movement -----------------------------------------------------------

    def _exec_mov(self, frame, instr) -> None:
        value_type = instr.attrs.get("mem_value_type") \
            or instr.attrs.get("value_type")
        value = self._value_of(frame, instr.operands[1], value_type)
        self._reg_write(instr.operands[0], value)
        self._advance(frame)

    def _exec_lea(self, frame, instr) -> None:
        address = self._mem_address(frame, instr.operands[1])
        self._reg_write(instr.operands[0], address)
        self._advance(frame)

    def _exec_load(self, frame, instr) -> None:
        value_type = instr.attrs.get("value_type") or types.ULONG
        address = self._mem_address(frame, instr.operands[1])
        try:
            value = self.memory.read_typed(address, value_type)
        except MemoryError_:
            if instr.attrs.get("ee", True):
                raise
            value = _zero_of(value_type)
        self._reg_write(instr.operands[0], value)
        self._advance(frame)

    def _exec_store(self, frame, instr) -> None:
        value_type = instr.attrs.get("value_type") or types.ULONG
        value = self._value_of(frame, instr.operands[0], value_type)
        address = self._mem_address(frame, instr.operands[1])
        try:
            self.memory.write_typed(address, value_type, value)
        except MemoryError_:
            if instr.attrs.get("ee", True):
                raise
        self._advance(frame)

    # -- arithmetic ------------------------------------------------------------------

    def _exec_alu(self, frame, instr) -> None:
        value_type = instr.attrs["value_type"]
        mem_type = instr.attrs.get("mem_value_type") or value_type
        op = instr.attrs["op"]
        lhs = self._value_of(frame, instr.operands[1], value_type)
        rhs = self._value_of(frame, instr.operands[2], mem_type)
        if value_type.is_floating_point:
            from repro.execution.interpreter import (
                _float_arith,
                _round_f32,
            )
            result = _float_arith(op, lhs, rhs)
            if value_type is types.FLOAT:
                result = _round_f32(result)
        elif value_type.is_bool:
            bits_l, bits_r = int(lhs), int(rhs)
            if op == "and":
                result = bool(bits_l & bits_r & 1)
            elif op == "or":
                result = bool((bits_l | bits_r) & 1)
            else:
                result = bool((bits_l ^ bits_r) & 1)
        elif op in ("div", "rem") and rhs == 0:
            if instr.attrs.get("ee", False):
                # Byte-identical to the interpreters' unhandled-trap
                # report: divide-by-zero delivers detail "" / info 0,
                # which escapes as "no handler registered".
                raise ExecutionTrap(TrapKind.DIVIDE_BY_ZERO,
                                    "no handler registered", 0)
            result = 0
        else:
            result = _int_alu(op, int(lhs), int(rhs), value_type,
                              ee=instr.attrs.get("ee", False))
        self._reg_write(instr.operands[0], result)
        self._advance(frame)

    def _exec_cmp(self, frame, instr) -> None:
        value_type = instr.attrs.get("value_type")
        mem_type = instr.attrs.get("mem_value_type") or value_type
        rel = instr.attrs["rel"]
        lhs = self._value_of(frame, instr.operands[1], value_type)
        rhs = self._value_of(frame, instr.operands[2], mem_type)
        if rel == "eq":
            result = lhs == rhs
        elif rel == "ne":
            result = lhs != rhs
        elif rel == "lt":
            result = lhs < rhs
        elif rel == "gt":
            result = lhs > rhs
        elif rel == "le":
            result = lhs <= rhs
        else:
            result = lhs >= rhs
        self._reg_write(instr.operands[0], bool(result))
        self._advance(frame)

    def _exec_cvt(self, frame, instr) -> None:
        from_type = instr.attrs["from_type"]
        to_type = instr.attrs["to_type"]
        value = self._value_of(frame, instr.operands[1], from_type)
        self._reg_write(instr.operands[0],
                        cast_value(value, from_type, to_type, self.td))
        self._advance(frame)

    # -- control flow --------------------------------------------------------------------

    def _exec_jmp(self, frame, instr) -> None:
        self._jump(frame, instr.operands[0].name)

    def _exec_jcc(self, frame, instr) -> None:
        condition = self._value_of(frame, instr.operands[0], types.BOOL)
        if condition:
            self._jump(frame, instr.operands[1].name)
        else:
            self._advance(frame)

    def _exec_nop(self, frame, instr) -> None:
        self._advance(frame)

    # -- stack ------------------------------------------------------------------------------

    def _exec_push(self, frame, instr) -> None:
        if instr.mnemonic in ("save",):
            frame.saved_regs.append(
                (instr.operands[0].name,
                 self.registers.get(instr.operands[0].name, 0)))
            self._advance(frame)
            return
        value_type = instr.attrs.get("value_type") or types.ULONG
        value = self._value_of(frame, instr.operands[0], value_type)
        self._push_value(value, value_type)
        self._advance(frame)

    def _exec_pop(self, frame, instr) -> None:
        if instr.mnemonic in ("restore",):
            if frame.saved_regs:
                name, value = frame.saved_regs.pop()
                self.registers[name] = value
            self._advance(frame)
            return
        sp = self.memory.stack_pointer
        value = self.memory.read_typed(sp, types.ULONG)
        self.memory.stack_pointer = sp + 8
        self._reg_write(instr.operands[0], value)
        self._advance(frame)

    def _push_value(self, value,
                    value_type: Optional[types.Type] = None) -> None:
        sp = self.memory.stack_pointer - 8
        self.memory.stack_pointer = sp
        slot_type = _push_slot_type(value, value_type)
        self.memory.write_typed(sp, slot_type, value)

    def _exec_adjsp(self, frame, instr) -> None:
        amount = self._value_of(frame, instr.operands[0],
                                types.ULONG)
        if instr.attrs.get("negate"):
            self.memory.stack_pointer -= int(amount)
        else:
            self.memory.stack_pointer += int(amount)
        self._advance(frame)

    # -- calls ------------------------------------------------------------------------------

    def _exec_call(self, frame, instr) -> None:
        callee = instr.operands[0]
        if isinstance(callee, SymRef):
            name = callee.name
        else:
            address = int(self._value_of(frame, callee))
            function = self.image.function_at(address)
            if function is None:
                raise ExecutionTrap(
                    TrapKind.MEMORY_FAULT,
                    "indirect call to 0x{0:x}".format(address), address)
            name = function.name
        self._advance(frame)  # resume point after the call
        if is_intrinsic_name(name):
            self._call_intrinsic(frame, name, instr)
            return
        ir_function = self.module.functions.get(name)
        if (ir_function is None or ir_function.is_declaration) \
                and is_runtime_name(name):
            self._call_runtime(frame, name, instr)
            return
        machine = self._machine_function(name)
        self._enter_function(machine, instr.attrs.get("unwind"))

    def _call_runtime(self, frame, name: str, instr: MachineInstr) -> None:
        signature = RUNTIME_SIGNATURES[name]
        args = self._collect_args(frame, signature, instr)
        result = self.runtime.call(name, args)
        if not signature.return_type.is_void:
            self.registers[self.target.return_reg] = result

    def _collect_args(self, frame, signature: types.FunctionType,
                      instr: MachineInstr) -> List[object]:
        arg_regs = self.target.arg_regs
        args: List[object] = []
        stack_cursor = self.memory.stack_pointer
        for index, param in enumerate(signature.params):
            if index < len(arg_regs):
                args.append(self.registers.get(arg_regs[index], 0))
            else:
                slot = stack_cursor + 8 * (index - len(arg_regs))
                args.append(self.memory.read_typed(
                    slot, _push_slot_type(None, param)))
        return args

    def _call_intrinsic(self, frame, name: str,
                        instr: MachineInstr) -> None:
        from repro.ir.intrinsics import intrinsic_info

        info = intrinsic_info(name)
        args = self._collect_args(frame, info.function_type, instr)
        if name == "llva.smc.replace":
            target_fn = self.image.function_at(int(args[0]))
            donor_fn = self.image.function_at(int(args[1]))
            if target_fn is None or donor_fn is None:
                raise ExecutionTrap(TrapKind.MEMORY_FAULT,
                                    "llva.smc.replace of non-function")
            target_fn.replace_body_from(donor_fn)
            # Invalidate the stale translation: future invocations get
            # retranslated (Section 3.4); active frames keep running
            # their existing machine code.
            self.native.functions.pop(target_fn.name, None)
            for listener in self.smc_listeners:
                listener(target_fn)
            return
        if name == "llva.sec.register":
            return
        if name == "llva.storage.register":
            self.storage_api_address = int(args[0])
            return
        if name == "llva.stack.depth":
            self.registers[self.target.return_reg] = len(self._frames)
            return
        raise ExecutionTrap(
            TrapKind.SOFTWARE_TRAP,
            "intrinsic {0} is not supported by the native engine "
            "(use the interpreter)".format(name))

    def _exec_ret(self, frame, instr) -> None:
        # The caller's CALL already advanced past itself, so the caller
        # simply resumes; an invoke's trailing JMP to the normal
        # destination executes next.
        self._return_from_function()

    def _exec_unwind(self, frame, instr) -> None:
        while self._frames:
            top = self._frames[-1]
            self._return_from_function()
            if top.unwind_label is not None and self._frames:
                # The *caller* of the invoke-frame resumes at the unwind
                # destination, which lives in the caller's function.
                caller = self._frames[-1]
                self._jump(caller, top.unwind_label)
                return
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "unwind with no active invoke")

    # -- misc -------------------------------------------------------------------------------

    def _normalize_return(self, raw, return_type: types.Type):
        if return_type.is_void or raw is None:
            return None
        if return_type.is_bool:
            return bool(raw)
        if return_type.is_integer:
            return return_type.wrap(int(raw))
        return raw

    _handlers = {}


MachineSimulator._handlers = {
    Semantics.MOV: MachineSimulator._exec_mov,
    Semantics.ALU: MachineSimulator._exec_alu,
    Semantics.CMP: MachineSimulator._exec_cmp,
    Semantics.LOAD: MachineSimulator._exec_load,
    Semantics.STORE: MachineSimulator._exec_store,
    Semantics.LEA: MachineSimulator._exec_lea,
    Semantics.JMP: MachineSimulator._exec_jmp,
    Semantics.JCC: MachineSimulator._exec_jcc,
    Semantics.CALL: MachineSimulator._exec_call,
    Semantics.RET: MachineSimulator._exec_ret,
    Semantics.PUSH: MachineSimulator._exec_push,
    Semantics.POP: MachineSimulator._exec_pop,
    Semantics.CVT: MachineSimulator._exec_cvt,
    Semantics.ADJSP: MachineSimulator._exec_adjsp,
    Semantics.UNWIND: MachineSimulator._exec_unwind,
    Semantics.NOP: MachineSimulator._exec_nop,
}


def _zero_of(type_: types.Type):
    if type_.is_floating_point:
        return 0.0
    if type_.is_bool:
        return False
    return 0


_OVERFLOW_OPS = ("add", "sub", "mul", "div", "rem")


def _raw_int_alu(op: str, lhs: int, rhs: int,
                 value_type: types.IntegerType) -> int:
    """The unbounded Python-int result of one integer ALU op; the caller
    wraps (and decides what an out-of-range result means)."""
    if op == "add":
        return lhs + rhs
    if op == "sub":
        return lhs - rhs
    if op == "mul":
        return lhs * rhs
    if op in ("div", "rem"):
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        return quotient if op == "div" else lhs - quotient * rhs
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "shl":
        return lhs << (rhs & (value_type.bits - 1))
    if op == "shr":
        amount = rhs & (value_type.bits - 1)
        if value_type.is_signed:
            return lhs >> amount
        return (lhs & ((1 << value_type.bits) - 1)) >> amount
    raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                        "bad alu op {0!r}".format(op))


def _int_alu(op: str, lhs: int, rhs: int,
             value_type: types.IntegerType, ee: bool = False) -> int:
    raw = _raw_int_alu(op, lhs, rhs, value_type)
    wrapped = value_type.wrap(raw)
    if ee and wrapped != raw and op in _OVERFLOW_OPS:
        # Same unhandled-trap report as the interpreters: integer
        # overflow delivers detail "" / info 0 (shifts mask silently).
        raise ExecutionTrap(TrapKind.INTEGER_OVERFLOW,
                            "no handler registered", 0)
    return wrapped


def _push_slot_type(value, value_type: Optional[types.Type]) -> types.Type:
    """Every pushed slot is 8 bytes; pick a type wide enough to round-
    trip the value."""
    if value_type is not None:
        if value_type.is_floating_point:
            return types.DOUBLE
        if value_type.is_pointer:
            return types.ULONG
        if value_type.is_bool:
            return types.ULONG
        if value_type.is_integer:
            return types.LONG if value_type.is_signed else types.ULONG
    if isinstance(value, float):
        return types.DOUBLE
    if isinstance(value, bool):
        return types.ULONG
    if isinstance(value, int) and value < 0:
        return types.LONG
    return types.ULONG


# ---------------------------------------------------------------------------
# Tier-3: hosted native execution inside the fast interpreter
# ---------------------------------------------------------------------------
#
# The tiered engine's top rung runs the FunctionJIT translation of a hot
# function instead of its tier-2 generator unit.  The translation is
# lowered in *hosted* mode (no static frame preallocation; allocas stay
# symbolic ALLOCA micro-ops that share the interpreter's stack), so LLVA-
# visible state — memory, addresses, faults, runtime effects — is
# produced through exactly the same Memory/ProgramImage the tier-1
# closures use.  Machine-private state (registers, spill slots, the
# outgoing-argument stack) lives in per-activation Python structures.
#
# The executor is a generator speaking the tier-2 yield protocol:
# ``("call", fn, args)``, ``("rt", name, args)``, ``("intr", name,
# args)`` and ``("icall", address, args)`` yield back to the tier-1
# driver, which pushes frames or performs the effect and resumes the
# generator with the result.  Deliverable traps leave native code for
# good: the executor yields ``("deopt", site, shadow, trapno, info,
# detail)`` and returns, and the driver rebuilds a tier-1 frame from the
# V-ABI shadow (see ``FastInterpreter._tier3_deopt``).


class UnsupportedHosted(Exception):
    """The function cannot be translated for the hosted executor."""


class Tier3Unit:
    """A hosted-mode translation plus the bookkeeping the tier-1 driver
    needs to enter, observe, and deoptimize it."""

    kind = "tier3"

    __slots__ = ("name", "machine", "smc_version", "num_args",
                 "num_slots", "block_steps", "block_cycles",
                 "slot_by_site")

    def __init__(self, name: str, machine: MachineFunction,
                 smc_version: int, num_args: int, num_slots: int,
                 block_steps: Dict[str, int],
                 slot_by_site: Dict[str, int]):
        self.name = name
        self.machine = machine
        self.smc_version = smc_version
        self.num_args = num_args
        self.num_slots = num_slots
        #: Interpreter steps charged on entering each block (the tier-1
        #: per-edge bump: 1 for the branch + one per phi).  Blocks added
        #: by critical-edge splitting are absent and charge nothing.
        self.block_steps = block_steps
        #: "block:index" V-ABI site -> tier-1 register slot, for deopt.
        self.slot_by_site = slot_by_site
        self.block_cycles = {
            block.name: sum(instr_cost(instr)
                            for instr in block.instructions)
            for block in machine.blocks}

    def factory(self, st, *args):
        return _run_hosted(st, self, list(args))


def _run_hosted(st, unit: Tier3Unit, args: list):
    """One activation of a hosted translation, as a tier-2-protocol
    generator driven by ``FastInterpreter._tier3_driver``."""
    machine = unit.machine
    target = machine.target
    arg_regs = target.arg_regs
    return_reg = target.return_reg
    blocks = machine.blocks
    block_position = {block.name: position
                      for position, block in enumerate(blocks)}
    block_steps = unit.block_steps
    block_cycles = unit.block_cycles
    pmask = _pointer_mask(st.target)
    memory = st.memory
    image = st.image

    registers: Dict[str, object] = {}
    slots: Dict[int, object] = {}   # fp-relative spill/fold slots
    arg_stack: list = []            # virtualized outgoing-arg pushes
    incoming = list(args[len(arg_regs):])
    for reg_name, value in zip(arg_regs, args):
        registers[reg_name] = value
    # Tier-1 register shadow, V-ABI slot numbering: arguments first,
    # then one slot per value-producing instruction.  Instructions
    # carrying a "vabi" slot number refresh it, so at any deopt site the
    # shadow maps straight onto a tier-1 frame's register file.
    shadow = [0] * unit.num_slots
    shadow[:len(args)] = args

    def real_address(mem) -> int:
        address = mem.offset
        if mem.symbol is not None:
            address += image.address_of(mem.symbol)
        if mem.base is not None:
            address += int(registers.get(mem.base.name, 0))
        if mem.index is not None:
            address += int(registers.get(mem.index.name, 0)) * mem.scale
        return address

    def is_frame_slot(mem) -> bool:
        return mem.symbol is None and mem.index is None \
            and mem.base is not None and mem.base.name == "fp"

    def value_of(operand, value_type=None):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, PhysReg):
            return registers.get(operand.name, 0)
        if isinstance(operand, SymRef):
            return image.address_of(operand.name)
        if isinstance(operand, Mem):
            if operand.symbol == INCOMING_ARGS:
                return incoming[operand.offset // 8]
            if is_frame_slot(operand):
                return slots.get(operand.offset, 0)
            return memory.read_typed(real_address(operand),
                                     value_type or types.ULONG)
        raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                            "bad operand {0!r}".format(operand))

    def masked(ee: bool, unmaskable: bool) -> bool:
        return not unmaskable and not (ee and st.exceptions_dynamic)

    def goto(label: str) -> int:
        position = block_position.get(label)
        if position is None:
            raise ExecutionTrap(TrapKind.SOFTWARE_TRAP,
                                "jump to unknown label {0}".format(label))
        steps = st.steps + block_steps.get(label, 0)
        st.steps = steps
        st.tier3_cycles += block_cycles.get(label, 0)
        ms = st.max_steps
        if ms is not None and steps > ms:
            raise StepLimitExceeded("exceeded {0} steps".format(ms))
        return position

    bi = 0
    ii = 0
    if blocks:
        st.tier3_cycles += block_cycles.get(blocks[0].name, 0)
    while True:
        block = blocks[bi]
        instructions = block.instructions
        if ii >= len(instructions):
            # Lexical fallthrough is a real CFG edge (the translator
            # removed the jump to the next block in layout order).
            if bi + 1 >= len(blocks):
                raise ExecutionTrap(
                    TrapKind.SOFTWARE_TRAP,
                    "fell off the end of block {0} in {1}"
                    .format(block.name, machine.name))
            bi = goto(blocks[bi + 1].name)
            ii = 0
            continue
        instr = instructions[ii]
        attrs = instr.attrs
        sem = instr.semantics
        ops = instr.operands
        if "step" in attrs:
            # One interpreter step per LLVA instruction, charged on the
            # first machine instruction of its run.  No limit check
            # here: tier-1 only checks at edges and calls, and the
            # differential suite compares step counts exactly.
            st.steps += 1

        if sem == Semantics.MOV:
            value_type = attrs.get("mem_value_type") \
                or attrs.get("value_type")
            registers[ops[0].name] = value_of(ops[1], value_type)
        elif sem == Semantics.ALU:
            value_type = attrs["value_type"]
            mem_type = attrs.get("mem_value_type") or value_type
            op = attrs["op"]
            lhs = value_of(ops[1], value_type)
            rhs = value_of(ops[2], mem_type)
            if value_type.is_floating_point:
                result = _float_arith(op, lhs, rhs)
                if value_type is types.FLOAT:
                    result = _round_f32(result)
                registers[ops[0].name] = result
            elif value_type.is_bool:
                if op == "and":
                    registers[ops[0].name] = lhs & rhs
                elif op == "or":
                    registers[ops[0].name] = lhs | rhs
                else:
                    registers[ops[0].name] = lhs ^ rhs
            else:
                lhs = int(lhs)
                rhs = int(rhs)
                ee = attrs.get("ee", False)
                if op in ("div", "rem") and rhs == 0:
                    if masked(ee, False):
                        registers[ops[0].name] = 0
                    else:
                        yield ("deopt", attrs.get("site"), list(shadow),
                               TrapKind.DIVIDE_BY_ZERO, 0, "")
                        return
                else:
                    raw = _raw_int_alu(op, lhs, rhs, value_type)
                    wrapped = value_type.wrap(raw)
                    if wrapped != raw and op in _OVERFLOW_OPS \
                            and ee and st.exceptions_dynamic:
                        yield ("deopt", attrs.get("site"), list(shadow),
                               TrapKind.INTEGER_OVERFLOW, 0, "")
                        return
                    registers[ops[0].name] = wrapped
        elif sem == Semantics.CMP:
            value_type = attrs.get("value_type")
            mem_type = attrs.get("mem_value_type") or value_type
            rel = attrs["rel"]
            lhs = value_of(ops[1], value_type)
            rhs = value_of(ops[2], mem_type)
            if rel == "eq":
                result = lhs == rhs
            elif rel == "ne":
                result = lhs != rhs
            elif rel == "lt":
                result = lhs < rhs
            elif rel == "gt":
                result = lhs > rhs
            elif rel == "le":
                result = lhs <= rhs
            else:
                result = lhs >= rhs
            registers[ops[0].name] = result
        elif sem == Semantics.LOAD:
            value_type = attrs.get("value_type") or types.ULONG
            mem = ops[1]
            if mem.symbol == INCOMING_ARGS:
                registers[ops[0].name] = incoming[mem.offset // 8]
            elif is_frame_slot(mem):
                registers[ops[0].name] = slots.get(mem.offset, 0)
            else:
                try:
                    value = memory.read_typed(real_address(mem),
                                              value_type)
                except MemoryError_ as fault:
                    if masked(attrs.get("ee", False), fault.unmaskable):
                        value = _zero_of(value_type)
                    else:
                        yield ("deopt", attrs.get("site"), list(shadow),
                               fault.trap_number, fault.address or 0,
                               fault.detail)
                        return
                registers[ops[0].name] = value
        elif sem == Semantics.STORE:
            value_type = attrs.get("value_type") or types.ULONG
            mem = ops[1]
            value = value_of(ops[0])
            if mem.symbol is None and is_frame_slot(mem):
                slots[mem.offset] = value
            else:
                try:
                    memory.write_typed(real_address(mem), value_type,
                                       value)
                except MemoryError_ as fault:
                    if not masked(attrs.get("ee", False),
                                  fault.unmaskable):
                        yield ("deopt", attrs.get("site"), list(shadow),
                               fault.trap_number, fault.address or 0,
                               fault.detail)
                        return
        elif sem == Semantics.LEA:
            registers[ops[0].name] = real_address(ops[1]) & pmask
        elif sem == Semantics.CVT:
            from_type = attrs["from_type"]
            to_type = attrs["to_type"]
            registers[ops[0].name] = cast_value(
                value_of(ops[1], from_type), from_type, to_type,
                st.target)
        elif sem == Semantics.JMP:
            bi = goto(ops[0].name)
            ii = 0
            continue
        elif sem == Semantics.JCC:
            if value_of(ops[0], types.BOOL):
                bi = goto(ops[1].name)
                ii = 0
                continue
        elif sem == Semantics.CALL:
            nargs = attrs.get("nargs", 0)
            nreg = min(nargs, len(arg_regs))
            call_args = [registers.get(arg_regs[i], 0)
                         for i in range(nreg)]
            nstack = nargs - nreg
            if nstack:
                call_args.extend(reversed(arg_stack[-nstack:]))
            callee = ops[0]
            return_type = attrs.get("return_type")
            try:
                if isinstance(callee, SymRef):
                    callk = attrs.get("callk", "fn")
                    if callk == "intr":
                        result = yield ("intr", callee.name, call_args)
                    elif callk == "rt":
                        result = yield ("rt", callee.name, call_args)
                    else:
                        fn = st.module.functions.get(callee.name)
                        if fn is None:
                            raise ExecutionTrap(
                                TrapKind.SOFTWARE_TRAP,
                                "call to undefined function %{0}"
                                .format(callee.name))
                        ms = st.max_steps
                        if ms is not None and st.steps > ms:
                            raise StepLimitExceeded(
                                "exceeded {0} steps".format(ms))
                        result = yield ("call", fn, call_args)
                else:
                    address = int(value_of(callee))
                    result = yield ("icall", address, call_args)
            except MemoryError_ as fault:
                if masked(attrs.get("ee", True), fault.unmaskable):
                    if return_type is not None \
                            and not return_type.is_void:
                        registers[return_reg] = _zero_of(return_type)
                else:
                    yield ("deopt", attrs.get("site"), list(shadow),
                           fault.trap_number, fault.address or 0,
                           fault.detail)
                    return
            else:
                if return_type is not None and not return_type.is_void:
                    registers[return_reg] = result
        elif sem == Semantics.RET:
            return registers.get(return_reg)
        elif sem == Semantics.PUSH:
            # Linear-scan "save" pseudo-pushes are no-ops here: the
            # register file is per-activation, so callee-saved state
            # cannot be clobbered.
            if instr.mnemonic != "save":
                arg_stack.append(value_of(ops[0]))
        elif sem == Semantics.POP:
            if instr.mnemonic != "restore":
                registers[ops[0].name] = \
                    arg_stack.pop() if arg_stack else 0
        elif sem == Semantics.ADJSP:
            if attrs.get("negate"):
                raise ExecutionTrap(
                    TrapKind.SOFTWARE_TRAP,
                    "dynamic stack adjustment in hosted code")
            drop = int(value_of(ops[0], types.ULONG)) // 8
            if drop:
                del arg_stack[-drop:]
        elif sem == Semantics.ALLOCA:
            esize = attrs["esize"]
            align = max(attrs.get("align", 1), 1)
            count = int(value_of(ops[1]))
            total = max(esize * max(count, 0), 1)
            try:
                address = memory.push_frame(total, align)
            except ExecutionTrap as trap:
                if masked(attrs.get("ee", False), trap.unmaskable):
                    registers[ops[0].name] = 0
                else:
                    yield ("deopt", attrs.get("site"), list(shadow),
                           trap.trap_number, 0, trap.detail)
                    return
            else:
                registers[ops[0].name] = address
        elif sem == Semantics.NOP:
            pass
        else:
            raise ExecutionTrap(
                TrapKind.SOFTWARE_TRAP,
                "hosted executor cannot run {0!r}".format(sem))

        slot = attrs.get("vabi")
        if slot is not None:
            if sem == Semantics.STORE:
                shadow[slot] = value_of(ops[0])
            else:
                shadow[slot] = registers.get(ops[0].name, 0)
        ii += 1


def build_tier3_unit(function, module: Module, target) -> Tier3Unit:
    """Translate *function* in hosted mode and wrap it as a tier-3 unit.

    Raises :class:`UnsupportedHosted` for bodies the hosted executor
    cannot honour exactly (declarations, and invoke/unwind — whose
    lowered control flow charges steps differently from tier-1)."""
    from repro.ir import instructions as insts
    from repro.transforms.cloning import clone_function_body

    if function.is_declaration:
        raise UnsupportedHosted(
            "%{0} has no body".format(function.name))
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, (insts.InvokeInst, insts.UnwindInst)):
                raise UnsupportedHosted(
                    "%{0} uses invoke/unwind".format(function.name))

    # V-ABI slot numbering, identical to tier-1's decode (and the OSR
    # maps): arguments first, then every value-producing instruction in
    # block order.  Sites name the *original* blocks; the clone keeps
    # block names and instruction indices, so annotations agree.
    num_args = len(function.args)
    slot = num_args
    slot_by_site: Dict[str, int] = {}
    block_steps: Dict[str, int] = {}
    for block in function.blocks:
        block_steps[block.name] = 1 + len(block.phis())
        for index, inst in enumerate(block.instructions):
            if inst.produces_value:
                slot_by_site["{0}:{1}".format(block.name, index)] = slot
                slot += 1

    # Lower a clone: critical-edge splitting mutates the CFG, and the
    # original keeps running under tier 1/2 (and may deopt back).
    clone = clone_function_body(function)
    machine = target.translate_function(clone, hosted=True)
    _finalize_hosted(machine, module, slot_by_site)
    return Tier3Unit(function.name, machine, function.smc_version,
                     num_args, slot, block_steps, slot_by_site)


def _finalize_hosted(machine: MachineFunction, module: Module,
                     slot_by_site: Dict[str, int]) -> None:
    """Resolve V-ABI site strings to slot numbers and classify direct
    callees, so the executor needs no IR at run time (the annotated
    machine function round-trips through persistence on its own)."""
    for block in machine.blocks:
        for instr in block.instructions:
            site = instr.attrs.get("vabi")
            if isinstance(site, str):
                number = slot_by_site.get(site)
                if number is None:
                    del instr.attrs["vabi"]
                else:
                    instr.attrs["vabi"] = number
            if instr.semantics == Semantics.CALL \
                    and isinstance(instr.operands[0], SymRef):
                name = instr.operands[0].name
                fn = module.functions.get(name)
                if is_intrinsic_name(name):
                    instr.attrs["callk"] = "intr"
                elif (fn is None or fn.is_declaration) \
                        and is_runtime_name(name):
                    instr.attrs["callk"] = "rt"
                else:
                    instr.attrs["callk"] = "fn"