"""llva-san: ASan-style shadow metadata for LLVA execution.

The paper makes memory faults an architectural event (Section 3.1/3.4:
all memory is explicitly allocated and ``ExceptionsEnabled`` controls
whether a bad ``load``/``store`` traps), but the base :class:`Memory`
only bounds-checks arena edges.  This module layers per-object shadow
metadata on top of it:

* every heap allocation is surrounded by :data:`REDZONE`-byte redzones,
  so an overflow from one object into its neighbour faults instead of
  silently corrupting it;
* ``free`` moves the block into a quarantine — the address range stays
  poisoned and is *never* handed out again, so use-after-free faults
  deterministically instead of aliasing a fresh allocation;
* ``pop_frame`` scrubs the popped stack range (and the live
  ``stack_pointer`` boundary makes any below-SP access fault);
* every allocation carries a record of its allocation site, free site,
  and requested size, so a fault report names the offending
  instruction, the offset into the object, and where the object was
  allocated and freed.

Sanitizer faults are *diagnostic*: they subclass
:class:`~repro.execution.memory.MemoryError_` with ``unmaskable`` set,
so both engines deliver them even when the faulting instruction's
ExceptionsEnabled bit is cleared (``free`` faults surface through
``call``, which masks by default).

Everything here is opt-in (``sanitize=True`` / ``--sanitize``) and
costs nothing when off: the base :class:`Memory` carries ``san = None``
as a class attribute and the engines only consult it when it is set.
"""

from __future__ import annotations

import bisect as _bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import observe
from repro.execution.memory import (
    DEFAULT_STACK_LIMIT,
    HEAP_BASE,
    STACK_TOP,
    _HEAP_CHUNK,
    Memory,
    MemoryError_,
    _align_up,
)
from repro.ir.types import TargetData

#: Bytes of poisoned padding on each side of every heap allocation.
REDZONE = 16

#: Fill pattern for freed (quarantined) heap payloads.
_POISON_BYTE = 0xDD
#: Fill pattern for redzone bytes (debuggability in hexdumps).
_REDZONE_BYTE = 0xAA


def format_site(function_name: str, block_name: str, index: int,
                opcode: str) -> str:
    """The canonical "where" string: ``%fn:block:#i (opcode)``."""
    return "%{0}:{1}:#{2} ({3})".format(function_name, block_name,
                                        index, opcode)


@dataclass
class AllocationRecord:
    """Shadow metadata for one heap allocation (live or quarantined)."""

    #: Payload start — the address ``malloc`` returned.
    address: int
    #: Requested payload size in bytes (exact, not rounded).
    size: int
    #: Chunk bounds: ``[chunk_start, chunk_end)`` covers the left
    #: redzone, the payload, and the right redzone.  Chunks tile the
    #: sanitized heap contiguously.
    chunk_start: int
    chunk_end: int
    #: Instruction that performed the allocation.
    alloc_site: str
    #: Instruction that freed the block; ``None`` while live.
    free_site: Optional[str] = None


@dataclass
class FaultReport:
    """A structured sanitizer diagnosis, rendered into the trap detail."""

    kind: str  # e.g. "heap-use-after-free"
    access: str  # "read" | "write" | "free"
    address: int
    size: int
    site: str
    allocation: Optional[AllocationRecord] = None
    extra: str = ""

    def render(self) -> str:
        if self.access == "free":
            head = "{0}: free of 0x{1:x}".format(self.kind, self.address)
        else:
            head = "{0}: {1} of {2} byte{3} at 0x{4:x}".format(
                self.kind, self.access, self.size,
                "" if self.size == 1 else "s", self.address)
        parts = [head]
        if self.extra:
            parts.append(self.extra)
        parts.append("at {0}".format(self.site))
        text = " ".join(parts)
        record = self.allocation
        if record is not None:
            text += "; allocated at {0}".format(record.alloc_site)
            if record.free_site is not None:
                text += "; freed at {0}".format(record.free_site)
        return text


class SanitizerFault(MemoryError_):
    """A diagnosed memory bug.  Unmaskable: ExceptionsEnabled cannot
    suppress a sanitizer report (a masked diagnosis would corrupt the
    very run it was protecting)."""

    unmaskable = True

    def __init__(self, report: FaultReport):
        super().__init__(report.render(), report.address)
        self.report = report


class ShadowSanitizer:
    """Per-allocation shadow metadata plus the fault-site protocol.

    Both engines tell the sanitizer *where* execution is before each
    potentially-faulting step: the reference engine hands over its live
    frame (formatted lazily, only if a fault actually fires), the fast
    engine stores a string precomputed at decode time.
    """

    def __init__(self) -> None:
        # Chunk index: starts are appended in increasing order (bump
        # allocation), so lookup is a single bisect.
        self._chunk_starts: List[int] = []
        self._by_chunk: Dict[int, AllocationRecord] = {}
        self._by_payload: Dict[int, AllocationRecord] = {}
        #: Decode-time site string (fast engine) — wins when set.
        self.current_site: Optional[str] = None
        self._site_frame = None  # (frame, inst) from the reference engine
        # -- statistics, exported as san.* metrics --
        self.fault_count = 0
        self.fault_kinds: Dict[str, int] = {}
        self.allocations = 0
        self.frees = 0
        self.quarantine_bytes = 0
        self.redzone_bytes = 0
        self.stack_scrubbed_bytes = 0

    # -- fault sites -----------------------------------------------------

    def set_site(self, site: str) -> None:
        self.current_site = site
        self._site_frame = None

    def set_site_frame(self, frame, inst) -> None:
        self._site_frame = (frame, inst)
        self.current_site = None

    def site(self) -> str:
        if self.current_site is not None:
            return self.current_site
        if self._site_frame is not None:
            frame, inst = self._site_frame
            return format_site(frame.function.name, frame.block.name,
                               frame.index, inst.opcode)
        return "<runtime>"

    # -- bookkeeping -----------------------------------------------------

    def register_allocation(self, payload: int, size: int,
                            chunk_start: int,
                            chunk_end: int) -> AllocationRecord:
        record = AllocationRecord(payload, size, chunk_start, chunk_end,
                                  self.site())
        self._chunk_starts.append(chunk_start)
        self._by_chunk[chunk_start] = record
        self._by_payload[payload] = record
        self.allocations += 1
        self.redzone_bytes += (chunk_end - chunk_start) - size
        observe.gauge("san.redzone.bytes", self.redzone_bytes)
        return record

    def register_free(self, record: AllocationRecord) -> None:
        record.free_site = self.site()
        self.frees += 1
        self.quarantine_bytes += record.size
        observe.gauge("san.quarantine.bytes", self.quarantine_bytes)

    # -- checks ----------------------------------------------------------

    def _chunk_at(self, address: int) -> Optional[AllocationRecord]:
        i = _bisect.bisect_right(self._chunk_starts, address) - 1
        if i < 0:
            return None
        record = self._by_chunk[self._chunk_starts[i]]
        if address >= record.chunk_end:
            return None
        return record

    def check_heap(self, address: int, size: int,
                   access: str) -> AllocationRecord:
        """Validate a heap access of *size* bytes at *address*; returns
        the owning allocation record or raises :class:`SanitizerFault`."""
        record = self._chunk_at(address)
        if record is None:
            self.fault(FaultReport("heap-wild-access", access, address,
                                   size, self.site()))
        offset = address - record.address
        if record.free_site is not None:
            self.fault(FaultReport(
                "heap-use-after-free", access, address, size,
                self.site(), record,
                "(offset {0} into {1}-byte block)".format(offset,
                                                          record.size)))
        if offset < 0 or address + size > record.address + record.size:
            kind = ("heap-buffer-underflow" if offset < 0
                    else "heap-buffer-overflow")
            self.fault(FaultReport(
                kind, access, address, size, self.site(), record,
                "(offset {0} into {1}-byte block)".format(offset,
                                                          record.size)))
        return record

    def check_free(self, address: int) -> AllocationRecord:
        """Validate a ``free``; returns the (still-live) record or
        raises :class:`SanitizerFault`."""
        record = self._by_payload.get(address)
        if record is None:
            interior = self._chunk_at(address)
            if interior is not None:
                self.fault(FaultReport(
                    "invalid-free", "free", address, 0, self.site(),
                    interior,
                    "(offset {0} into {1}-byte block)".format(
                        address - interior.address, interior.size)))
            self.fault(FaultReport(
                "invalid-free", "free", address, 0, self.site(), None,
                "(not the start of any heap allocation)"))
        if record.free_site is not None:
            self.fault(FaultReport(
                "double-free", "free", address, record.size,
                self.site(), record,
                "({0}-byte block)".format(record.size)))
        return record

    def below_sp_fault(self, address: int, size: int, access: str,
                       stack_pointer: int) -> None:
        self.fault(FaultReport(
            "stack-below-sp", access, address, size, self.site(), None,
            "({0} bytes below the live stack pointer 0x{1:x})".format(
                stack_pointer - address, stack_pointer)))

    def fault(self, report: FaultReport) -> None:
        self.fault_count += 1
        self.fault_kinds[report.kind] = \
            self.fault_kinds.get(report.kind, 0) + 1
        observe.counter("san.faults", 1, kind=report.kind)
        flight = observe.flight()
        if flight is not None:
            flight.record("san.fault", kind=report.kind,
                          access=report.access, address=report.address,
                          site=report.site, detail=report.extra)
            flight.autodump("sanitizer fault: %s" % report.kind)
        raise SanitizerFault(report)

    def record_for(self, payload: int) -> Optional[AllocationRecord]:
        """Introspection helper (tests, reports)."""
        return self._by_payload.get(payload)


class SanitizedMemory(Memory):
    """:class:`Memory` with llva-san shadow metadata enabled.

    The heap becomes a bump-only allocator whose chunks (left redzone +
    payload + right redzone) tile ``[HEAP_BASE, cursor)`` contiguously,
    so any in-range heap address maps to exactly one allocation record.
    Freed chunks are quarantined forever — addresses are never reused.
    """

    def __init__(self, target: TargetData,
                 stack_limit: int = DEFAULT_STACK_LIMIT):
        Memory.__init__(self, target, stack_limit)
        self.san = ShadowSanitizer()

    # -- checked raw access ----------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        if HEAP_BASE <= address and address + size <= self._heap_cursor:
            self.san.check_heap(address, size, "read")
            offset = address - HEAP_BASE
            return bytes(self._heap_arena[offset:offset + size])
        if self._stack_base <= address < self.stack_pointer:
            self.san.below_sp_fault(address, size, "read",
                                    self.stack_pointer)
        return Memory.read_bytes(self, address, size)

    def write_bytes(self, address: int, payload: bytes) -> None:
        size = len(payload)
        if HEAP_BASE <= address and address + size <= self._heap_cursor:
            self.san.check_heap(address, size, "write")
            offset = address - HEAP_BASE
            self._heap_arena[offset:offset + size] = payload
            return
        if self._stack_base <= address < self.stack_pointer:
            self.san.below_sp_fault(address, size, "write",
                                    self.stack_pointer)
        Memory.write_bytes(self, address, payload)

    # -- heap ------------------------------------------------------------

    def malloc(self, size: int) -> int:
        if size <= 0:
            size = 1
        chunk_start = self._heap_cursor
        payload = chunk_start + REDZONE
        chunk_end = _align_up(payload + size + REDZONE, 16)
        end = chunk_end - HEAP_BASE
        if end > len(self._heap_arena):
            grow = _align_up(end - len(self._heap_arena), _HEAP_CHUNK)
            self._heap_arena.extend(bytearray(grow))
        self._heap_cursor = chunk_end
        base = chunk_start - HEAP_BASE
        self._heap_arena[base:base + (payload - chunk_start)] = \
            bytes([_REDZONE_BYTE]) * (payload - chunk_start)
        pay_off = payload - HEAP_BASE
        self._heap_arena[pay_off + size:chunk_end - HEAP_BASE] = \
            bytes([_REDZONE_BYTE]) * (chunk_end - payload - size)
        self.san.register_allocation(payload, size, chunk_start,
                                     chunk_end)
        self._alloc_sizes[payload] = size
        self.heap_allocated += size
        self.heap_live += size
        return payload

    def free(self, address: int) -> None:
        if address == 0:
            return
        record = self.san.check_free(address)
        self.san.register_free(record)
        offset = address - HEAP_BASE
        self._heap_arena[offset:offset + record.size] = \
            bytes([_POISON_BYTE]) * record.size
        self._alloc_sizes.pop(address, None)
        self.heap_live -= record.size

    # -- stack -----------------------------------------------------------

    def pop_frame(self, old_stack_pointer: int) -> None:
        sp = self.stack_pointer
        if old_stack_pointer > sp:
            scrub = old_stack_pointer - sp
            offset = sp - self._stack_base
            self._stack_arena[offset:offset + scrub] = bytes(scrub)
            self.san.stack_scrubbed_bytes += scrub
        Memory.pop_frame(self, old_stack_pointer)

    # -- mapping queries -------------------------------------------------

    def is_mapped(self, address: int, size: int = 1) -> bool:
        try:
            self.read_bytes(address, size)
            return True
        except MemoryError_:
            return False
