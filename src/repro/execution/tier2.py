"""Tier-2 translator: hot LLVA functions compiled to Python bytecode.

The fast engine (:mod:`repro.execution.fastpath`) is tier 1: every
function is lowered once into arrays of specialized closures and run
through a dispatch loop.  That pays one Python call per instruction.
This module is tier 2: a *hot* function is compiled into Python
**source**, then ``compile()``d into a genuine Python bytecode
generator function —

* registers become dense local variables (``r0``, ``r1``, ...) named by
  the same V-ABI slot numbering tier 1 uses, so trap-handler register
  snapshots stay identical across tiers;
* basic blocks become arms of a ``while True`` block-dispatch loop;
  branches assign the successor id and ``continue`` — no per-
  instruction dispatch at all;
* step counting is merged: one ``__steps += k`` per straight-line run,
  placed so the architectural count is exact at every fault point;
* constant ``getelementptr`` chains fold to literal byte offsets, and
  loads/stores go straight to the byte-level memory API with
  precomputed sizes and pre-serialized constant stores.

The compiled unit is a **generator**.  Anything that touches the frame
stack (LLVA calls, trap delivery) or the runtime is *yielded* as a
request to the tier-1 driver (``fastpath._tier2_driver``), which keeps
the explicit frame stack in charge: deep LLVA recursion never grows the
host stack, trap handlers run as ordinary frames before the generator
resumes, and a tier-1 caller can call a tier-2 callee (and vice versa)
freely.  Runtime faults are thrown *into* the generator at the yield
point, so the ExceptionsEnabled masking rules run in compiled code with
the same semantics as tier 1.

Functions the code generator does not support (``invoke``/``unwind``
bodies, exotic operands) are *pinned* to tier 1; a delivered trap
inside a tier-2 activation completes precisely in place and then
*deopts* the function (future invocations run tier 1).  Sanitized runs
pin everything — shadow-memory checking needs per-instruction sites.

With ``superblocks=True`` the code generator additionally consumes
:func:`repro.llee.tracecache.form_function_traces` layouts: a hot
trace becomes one straight-line **superblock** arm — its own inner
``while True`` whose back edge to the trace head is a direct
``continue`` and whose interior transfers fall through with no
dispatch at all; every off-trace edge is a conditional *side exit*
that breaks back to the block-dispatch loop (interior trace blocks
keep their own dispatch arms, so side exits and OSR entries always
have a landing pad).  When no profile exists yet, functions first
compile as *profiling* units whose per-block counters both feed trace
formation and, at ``superblock_threshold`` executions of one block,
yield an ``('osr', block)`` request so the driver can swap in the
trace-guided unit *mid-activation*.  With ``osr=True`` tier 1 joins
in: a back edge taken after ``osr_step_threshold`` architectural
steps maps the live tier-1 frame onto tier-2 locals (the shared V-ABI
slot numbering makes this a straight copy) and resumes at the loop
header, instead of finishing the activation interpreted.

Promotion is counter-driven: a function is compiled after
``threshold`` tier-1 invocations, or once its tier-1 activations have
accumulated ``step_threshold`` architectural steps (credited on
return).  ``threshold=0`` promotes on first call; ``Tier2Cache=None``
on the interpreter turns the tier off.

Translations persist across processes through the Section 4.1 storage
API: :meth:`Tier2Cache.attach_storage` loads previously generated
sources (keyed by module hash + per-function hash + engine version,
with timestamp and target-fingerprint validation) so a warm start
skips source generation and goes straight to ``compile()`` — or skips
even that, when the blob carries ``.pyc``-style marshalled bytecode
from the same Python build (``sys.implementation.cache_tag``);
:meth:`Tier2Cache.flush_storage` writes new translations back.  Any
corrupt, truncated, stale, or version-mismatched blob logs the
``llee.cache.invalid`` metric and falls back to online translation.
"""

from __future__ import annotations

import base64
import hashlib
import json
import marshal
import math
import struct
import sys
import time
from concurrent.futures import CancelledError
from typing import Dict, List, Optional, Tuple

from repro import observe
from repro.execution.events import ExecutionTrap
from repro.execution.interpreter import (
    StepLimitExceeded,
    _float_arith,
    _pointer_mask,
    _round_f32,
    _zero_of,
)
from repro.execution.fastpath import _vector_struct_format
from repro.execution.memory import MemoryError_, _FP_FORMAT
from repro.execution.runtime import is_runtime_name
from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.printer import print_function
from repro.ir.values import (
    ConstantBool,
    ConstantFP,
    ConstantInt,
    ConstantNull,
    UndefValue,
)

#: Bump whenever generated code or the yield protocol changes shape;
#: persisted translations from other versions are discarded.
#: v3: side exits report to the flight recorder (``st.flight``).
#: v4: the vector extension (vadd/vsub/vmul, vsplat, vreduce.*,
#: vload/vstore) lowers to tuple-valued registers, and generated code
#: carries the ``__vlanes`` observability hook.
#: v5: contiguous vload/vstore go through one bulk read/write (single
#: region lookup, one struct format) with a per-lane replay on fault.
TIER2_VERSION = 5

#: Tier-1 invocations before a function is promoted (0 = immediately).
DEFAULT_THRESHOLD = 16

#: Architectural steps credited to a function (on return of its tier-1
#: activations) before it is promoted regardless of invocation count.
DEFAULT_STEP_THRESHOLD = 50_000

#: Executions of a single block inside a profiling-stage tier-2 unit
#: before the unit yields an ``('osr', block)`` request asking to be
#: upgraded to a trace-guided superblock unit mid-activation.
DEFAULT_SUPERBLOCK_THRESHOLD = 512

#: Architectural steps a tier-1 activation must accumulate before a
#: taken back edge triggers on-stack replacement into tier 2.
DEFAULT_OSR_STEP_THRESHOLD = 25_000

#: Asynchronous mode: tier-1 steps a function may burn *after* its
#: compile job was enqueued before the engine stops waiting and
#: escalates to an inline (synchronous) compile.  Past that point the
#: function has proven it will out-run its own compile cost, so
#: waiting for an idle-time build costs more than doing the work now.
#: Set to several compiles' worth of tier-1 steps: call-heavy
#: functions whose tier-1 closures are nearly as fast as their tier-2
#: units finish whole short runs below it (their builds stay
#: deferred), while the loop-heavy functions that dominate long runs
#: blow through it early and get their superblock pipeline inline.
DEFAULT_ESCALATE_STEP_THRESHOLD = 16384

#: Storage-API cache name for persisted translations.
TIER2_CACHE_NAME = "llee-tier2"

#: Storage-API cache name for persisted profile snapshots (written
#: next to the translation blob under the same module key).
PROFILE_CACHE_NAME = "llee-profile"

#: Tier-3 promotion: architectural steps a function must burn *inside
#: its tier-2 activations* before it is handed to the native
#: translation pipeline (0 = promote on first lookup).
DEFAULT_TIER3_STEP_THRESHOLD = 250_000

#: Storage-API cache name for persisted tier-3 (hosted native) units,
#: written next to the ``llee-tier2`` blob under the same module key.
TIER3_CACHE_NAME = "llee-tier3"

#: Bump whenever the hosted lowering annotations or the tier-3 blob
#: format change shape.  v2: units rebuild their block-compiled
#: threaded bodies from the persisted machine code at warm load.
TIER3_VERSION = 2

class UnsupportedFunction(Exception):
    """Raised by the code generator for functions tier 2 cannot compile
    (the function is then pinned to tier 1)."""


class CompiledUnit:
    """One tier-2 translation: a generator factory plus its metadata."""

    __slots__ = ("function", "smc_version", "factory", "num_args",
                 "num_slots", "snap_map", "source", "func_hash", "code",
                 "kind", "layout_hash", "side_exits", "block_counts")

    def __init__(self, function, smc_version, factory, num_args,
                 num_slots, snap_map, source, func_hash, code,
                 kind="dispatch", layout_hash="-", side_exits=(),
                 block_counts=None):
        self.function = function
        self.smc_version = smc_version
        self.factory = factory          # (st, *args) -> generator
        self.num_args = num_args
        self.num_slots = num_slots
        #: (("r0", 0), ("r1", 1), ...) — local name per V-ABI register
        #: number, used to snapshot a suspended generator's registers.
        self.snap_map = snap_map
        self.source = source
        self.func_hash = func_hash
        #: The module-level code object ``exec``'d to make ``factory``;
        #: persisted (marshalled, .pyc-style) so warm starts skip both
        #: codegen and ``compile()``.
        self.code = code
        #: "dispatch" (one arm per block), "superblock" (trace-guided
        #: straight-line arms), or "profiling" (block dispatch plus
        #: per-block counters feeding trace formation; never persisted).
        self.kind = kind
        #: Signature of the trace layout the unit was generated from
        #: ("-" = plain dispatch); part of the persistent key, so a
        #: profile change invalidates stale superblocks.
        self.layout_hash = layout_hash
        #: Deopt metadata: one (from-block, to-block) name pair per
        #: superblock side exit, in emission order.
        self.side_exits = side_exits
        #: Live per-block execution counters (profiling units only);
        #: shared with the generated code's ``__bc`` list.
        self.block_counts = block_counts


class Tier2Stats:
    __slots__ = ("functions_compiled", "warm_compiles", "codegen_seconds",
                 "compile_seconds", "invalidations", "deopts", "pins",
                 "promotions_by_steps", "superblocks_compiled",
                 "profiling_compiled", "osr_entries", "osr_upgrades",
                 "async_enqueued", "swap_ins", "swap_wait_seconds",
                 "stale_drops", "escalations", "tier3_compiled",
                 "tier3_warm", "tier3_compile_seconds", "tier3_deopts",
                 "tier3_pins", "tier3_invalidations",
                 "tier3_threaded_units", "tier3_step_units",
                 "tier3_degraded")

    def __init__(self):
        self.functions_compiled = 0
        #: Compilations served from a persisted source (codegen skipped).
        self.warm_compiles = 0
        self.codegen_seconds = 0.0
        #: Total translation time (source generation + ``compile()``).
        self.compile_seconds = 0.0
        self.invalidations = 0
        self.deopts = 0
        self.pins = 0
        self.promotions_by_steps = 0
        #: Units whose arms were emitted from a trace layout.
        self.superblocks_compiled = 0
        #: Profiling-stage units (block dispatch + counters).
        self.profiling_compiled = 0
        #: Tier-1 activations resumed mid-loop inside a tier-2 unit.
        self.osr_entries = 0
        #: Profiling units swapped for trace-guided ones mid-activation.
        self.osr_upgrades = 0
        #: Promotions handed to the background compile service.
        self.async_enqueued = 0
        #: Background-compiled units installed at a safe point.
        self.swap_ins = 0
        #: Total enqueue-to-swap-in latency across swap-ins.
        self.swap_wait_seconds = 0.0
        #: Background results discarded because SMC replaced the body
        #: while the job was in flight.
        self.stale_drops = 0
        #: Queued jobs cancelled in favour of an inline compile after
        #: the function proved hot while its build was deferred.
        self.escalations = 0
        #: Hosted native (tier-3) units built or warm-loaded.
        self.tier3_compiled = 0
        #: Tier-3 units served from the persisted ``llee-tier3`` blob.
        self.tier3_warm = 0
        self.tier3_compile_seconds = 0.0
        #: Native activations abandoned by a deliverable trap.
        self.tier3_deopts = 0
        #: Functions the hosted translator cannot express (or that
        #: deopted), permanently routed back to tier 2.
        self.tier3_pins = 0
        self.tier3_invalidations = 0
        #: Units running the block-compiled direct-threaded backend.
        self.tier3_threaded_units = 0
        #: Units running the one-instruction step backend (requested or
        #: degraded).
        self.tier3_step_units = 0
        #: Threaded compiles that hit an unsupported instruction and
        #: fell back per-function to the step backend (not a pin).
        self.tier3_degraded = 0


def function_hash(function: Function) -> str:
    """A stable content hash of one function body (the per-function
    component of the persistent translation key)."""
    return hashlib.sha256(
        print_function(function).encode("utf-8")).hexdigest()[:24]


# ---------------------------------------------------------------------------
# The code generator
# ---------------------------------------------------------------------------

_CMP_OP = {"seteq": "==", "setne": "!=", "setlt": "<",
           "setgt": ">", "setle": "<=", "setge": ">="}
_BIN_OP = {"add": "+", "sub": "-", "mul": "*",
           "and": "&", "or": "|", "xor": "^"}


class _SourceWriter:
    def __init__(self):
        self.lines: List[str] = []

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class _FnCodegen:
    """Generates the Python source of one tier-2 generator function."""

    def __init__(self, function: Function, target: types.TargetData,
                 layout=None, profile_blocks: bool = False,
                 upgrade_threshold: int = DEFAULT_SUPERBLOCK_THRESHOLD):
        self.function = function
        self.target = target
        #: Trace layout (a list of ``tracecache.Trace``) guiding
        #: superblock emission; block order/ids are never changed.
        self.layout = layout or []
        #: Emit per-block execution counters plus the ``('osr', b)``
        #: upgrade trigger (profiling-stage units).
        self.profile_blocks = profile_blocks
        self.upgrade_threshold = max(int(upgrade_threshold), 1)
        #: (from-block, to-block) name pairs, one per side exit emitted.
        self.side_exits: List[Tuple[str, str]] = []
        #: Superblock emission state: the trace head (back edges to it
        #: become the inner loop's ``continue``) and the next trace
        #: block (edges to it fall through with no jump at all).
        self._sb_head = None
        self._sb_next = None
        self.w = _SourceWriter()
        self.slot_of: Dict[int, int] = {}
        self.block_id: Dict[int, int] = {}
        #: alias -> referenced module-level symbol name (functions and
        #: globals both resolve through the image at generator entry).
        self.global_refs: Dict[str, str] = {}
        self._alias_of: Dict[str, str] = {}
        #: aliases of direct-call Function targets: alias -> name.
        self.func_refs: Dict[str, str] = {}
        self._func_alias_of: Dict[str, str] = {}
        self.uses_mem = False
        self.uses_image = False
        self._tmp = 0

    # -- operands ------------------------------------------------------

    def expr(self, operand) -> str:
        slot = self.slot_of.get(id(operand))
        if slot is not None:
            return "r{0}".format(slot)
        if isinstance(operand, ConstantInt):
            return repr(operand.value)
        if isinstance(operand, ConstantBool):
            return "True" if operand.value else "False"
        if isinstance(operand, ConstantFP):
            value = operand.value
            if not math.isfinite(value):
                raise UnsupportedFunction("non-finite float constant")
            return repr(value)
        if isinstance(operand, ConstantNull):
            return "0"
        if isinstance(operand, UndefValue):
            return repr(_zero_of(operand.type))
        if isinstance(operand, (Function, GlobalVariable)):
            return self.global_ref(operand.name)
        raise UnsupportedFunction(
            "unresolvable operand {0!r}".format(
                getattr(operand, "name", operand)))

    def global_ref(self, name: str) -> str:
        alias = self._alias_of.get(name)
        if alias is None:
            alias = "__g{0}".format(len(self.global_refs))
            self.global_refs[alias] = name
            self._alias_of[name] = alias
            self.uses_image = True
        return alias

    def func_ref(self, function: Function) -> str:
        alias = self._func_alias_of.get(function.name)
        if alias is None:
            alias = "__fn{0}".format(len(self.func_refs))
            self.func_refs[alias] = function.name
            self._func_alias_of[function.name] = alias
        return alias

    def tmp(self) -> str:
        self._tmp += 1
        return "__t{0}".format(self._tmp)

    # -- integer helpers -----------------------------------------------

    @staticmethod
    def wrap_expr(expr: str, type_) -> str:
        mask = (1 << type_.bits) - 1
        if type_.is_signed:
            sign = 1 << (type_.bits - 1)
            return "((({0}) & {1}) ^ {2}) - {2}".format(expr, mask, sign)
        return "({0}) & {1}".format(expr, mask)

    # -- the fault suffix ----------------------------------------------

    def emit_exc_fault(self, ind: int, inst, dst: Optional[int]) -> None:
        """Inside ``except ... as __f:`` — apply the ExceptionsEnabled
        rule to a caught memory/stack fault, exactly like tier 1's
        ``_fast_fault``: deliver when unmaskable or (!ee and the dynamic
        mask allows), else complete with a zero result."""
        if inst.exceptions_enabled:
            self.w.emit(ind, "if __f.unmaskable or st.exceptions_dynamic:")
        else:
            self.w.emit(ind, "if __f.unmaskable:")
        self.w.emit(ind + 1, "st.steps = __steps")
        self.w.emit(ind + 1, "yield ('trap', __f.trap_number, "
                             "__f.address or 0, __f.detail)")
        self.w.emit(ind + 1, "__steps = st.steps")
        if dst is not None:
            self.w.emit(ind, "r{0} = {1!r}".format(dst, _zero_of(inst.type)))

    def emit_explicit_trap(self, ind: int, inst, dst: Optional[int],
                           trapno: int, masked_value_expr: str) -> None:
        """A condition the generated code detects itself (divide by
        zero, integer overflow): deliver if the static !ee bit and the
        dynamic mask agree, else store *masked_value_expr*."""
        if inst.exceptions_enabled:
            self.w.emit(ind, "if st.exceptions_dynamic:")
            self.w.emit(ind + 1, "st.steps = __steps")
            self.w.emit(ind + 1, "yield ('trap', {0}, 0, '')".format(trapno))
            self.w.emit(ind + 1, "__steps = st.steps")
            if dst is not None:
                self.w.emit(ind + 1,
                            "r{0} = {1!r}".format(dst, _zero_of(inst.type)))
            self.w.emit(ind, "else:")
            if dst is not None:
                self.w.emit(ind + 1, "r{0} = {1}".format(dst,
                                                         masked_value_expr))
            else:
                self.w.emit(ind + 1, "pass")
        else:
            if dst is not None:
                self.w.emit(ind, "r{0} = {1}".format(dst, masked_value_expr))

    # -- instruction emitters ------------------------------------------
    # Each returns True if it handled its own step accounting (faultable
    # ops are preceded by a flushed "__steps += run" by the block walker).

    def emit_arith(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        a = self.expr(inst.operand(0))
        b = self.expr(inst.operand(1))
        opcode = inst.opcode
        type_ = inst.type
        if type_.is_floating_point:
            if opcode in ("add", "sub", "mul"):
                raw = "{0} {1} {2}".format(a, _BIN_OP[opcode], b)
            else:
                raw = "_float_arith({0!r}, {1}, {2})".format(opcode, a, b)
            if type_ is types.FLOAT:
                raw = "_round_f32({0})".format(raw)
            self.w.emit(ind, "r{0} = {1}".format(dst, raw))
            return
        if opcode in ("div", "rem"):
            self.emit_divrem(ind, inst, dst, a, b)
            return
        raw = "{0} {1} {2}".format(a, _BIN_OP[opcode], b)
        if inst.exceptions_enabled:
            # !ee arithmetic: overflow traps (when dynamically enabled),
            # otherwise the wrapped value is stored — never zero.
            v = self.tmp()
            w = self.tmp()
            self.w.emit(ind, "{0} = {1}".format(v, raw))
            self.w.emit(ind, "{0} = {1}".format(
                w, self.wrap_expr(v, type_)))
            self.w.emit(ind, "if {0} != {1} and st.exceptions_dynamic:"
                        .format(w, v))
            self.w.emit(ind + 1, "st.steps = __steps")
            self.w.emit(ind + 1, "yield ('trap', 3, 0, '')")
            self.w.emit(ind + 1, "__steps = st.steps")
            self.w.emit(ind + 1, "r{0} = {1!r}".format(dst,
                                                       _zero_of(type_)))
            self.w.emit(ind, "else:")
            self.w.emit(ind + 1, "r{0} = {1}".format(dst, w))
            return
        self.w.emit(ind, "r{0} = {1}".format(dst, self.wrap_expr(raw, type_)))

    @staticmethod
    def _divrem_const_divisor(inst) -> Optional[int]:
        """For integer div/rem whose divisor is a nonzero constant that
        can neither trap nor overflow, the divisor's Python value; else
        None.  (Signed ``div`` by -1 keeps the checked path — INT_MIN
        divided by -1 is the one overflowing case.)"""
        if inst.opcode not in ("div", "rem"):
            return None
        type_ = inst.type
        if not type_.is_integer:
            return None
        divisor = inst.operand(1)
        if not isinstance(divisor, ConstantInt):
            return None
        value = int(divisor.value)
        if value == 0:
            return None
        if not type_.is_signed and value < 0:
            return None
        if type_.is_signed and value == -1 and inst.opcode == "div":
            return None
        return value

    def _emit_divrem_const(self, ind: int, inst, dst: int, a: str,
                           const: int) -> None:
        """Constant-nonzero-divisor fast path: no zero-check suffix and
        no !ee overflow suffix (neither condition can occur).  Unsigned
        operands are non-negative, so Python's floor ``//``/``%``
        already *are* the truncating forms."""
        if not inst.type.is_signed:
            op = "//" if inst.opcode == "div" else "%"
            self.w.emit(ind, "r{0} = ({1}) {2} {3}".format(
                dst, a, op, const))
            return
        av = self.tmp()
        q = self.tmp()
        self.w.emit(ind, "{0} = {1}".format(av, a))
        self.w.emit(ind, "{0} = abs({1}) // {2}".format(q, av, abs(const)))
        self.w.emit(ind, "if {0} {1} 0:".format(av,
                                                "<" if const > 0 else ">"))
        self.w.emit(ind + 1, "{0} = -{0}".format(q))
        if inst.opcode == "div":
            self.w.emit(ind, "r{0} = {1}".format(dst, q))
        else:
            self.w.emit(ind, "r{0} = {1} - {2} * ({3})".format(
                dst, av, q, const))

    def emit_divrem(self, ind: int, inst, dst: int, a: str, b: str) -> None:
        type_ = inst.type
        const = self._divrem_const_divisor(inst)
        if const is not None:
            self._emit_divrem_const(ind, inst, dst, a, const)
            return
        bv = self.tmp()
        av = self.tmp()
        self.w.emit(ind, "{0} = {1}".format(av, a))
        self.w.emit(ind, "{0} = {1}".format(bv, b))
        self.w.emit(ind, "if {0} == 0:".format(bv))
        self.emit_explicit_trap(ind + 1, inst, dst, 2,
                                repr(_zero_of(type_)))
        if not inst.exceptions_enabled:
            # emit_explicit_trap emitted the masked store only; keep the
            # else arm below symmetric.
            pass
        self.w.emit(ind, "else:")
        q = self.tmp()
        self.w.emit(ind + 1, "{0} = abs({1}) // abs({2})".format(q, av, bv))
        self.w.emit(ind + 1, "if ({0} < 0) != ({1} < 0):".format(av, bv))
        self.w.emit(ind + 2, "{0} = -{0}".format(q))
        if inst.opcode == "div":
            raw = q
        else:
            raw = "{0} - {1} * {2}".format(av, q, bv)
        v = self.tmp()
        w = self.tmp()
        self.w.emit(ind + 1, "{0} = {1}".format(v, raw))
        self.w.emit(ind + 1, "{0} = {1}".format(w, self.wrap_expr(v, type_)))
        if inst.exceptions_enabled:
            self.w.emit(ind + 1, "if {0} != {1} and st.exceptions_dynamic:"
                        .format(w, v))
            self.w.emit(ind + 2, "st.steps = __steps")
            self.w.emit(ind + 2, "yield ('trap', 3, 0, '')")
            self.w.emit(ind + 2, "__steps = st.steps")
            self.w.emit(ind + 2, "r{0} = {1!r}".format(dst, _zero_of(type_)))
            self.w.emit(ind + 1, "else:")
            self.w.emit(ind + 2, "r{0} = {1}".format(dst, w))
        else:
            self.w.emit(ind + 1, "r{0} = {1}".format(dst, w))

    def emit_shift(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        type_ = inst.type
        bmask = type_.bits - 1
        a = self.expr(inst.operand(0))
        amount_operand = inst.operand(1)
        if isinstance(amount_operand, ConstantInt):
            amt = str(int(amount_operand.value) & bmask)
        else:
            amt = "(({0}) & {1})".format(self.expr(amount_operand), bmask)
        if inst.opcode == "shl":
            self.w.emit(ind, "r{0} = {1}".format(
                dst, self.wrap_expr("({0}) << {1}".format(a, amt), type_)))
        else:
            # shr is arithmetic for signed, logical for unsigned — both
            # are plain ``>>`` on the in-range host value.
            self.w.emit(ind, "r{0} = ({1}) >> {2}".format(dst, a, amt))

    def emit_compare(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        self.w.emit(ind, "r{0} = {1} {2} {3}".format(
            dst, self.expr(inst.operand(0)), _CMP_OP[inst.opcode],
            self.expr(inst.operand(1))))

    def emit_logical(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        self.w.emit(ind, "r{0} = {1} {2} {3}".format(
            dst, self.expr(inst.operand(0)), _BIN_OP[inst.opcode],
            self.expr(inst.operand(1))))

    def emit_load(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        type_ = inst.type
        size = self.target.size_of(type_)
        endian = self.target.endianness
        self.uses_mem = True
        p = self.expr(inst.pointer)
        read = "__rb({0}, {1})".format(p, size)
        if isinstance(type_, types.IntegerType) and type_.is_signed:
            sbit = 1 << (type_.bits - 1)
            value = "(__fb({0}, {1!r}) ^ {2}) - {2}".format(read, endian,
                                                            sbit)
        elif type_.is_integer or type_.is_pointer:
            value = "__fb({0}, {1!r})".format(read, endian)
        elif type_.is_bool:
            value = "{0}[0] != 0".format(read)
        else:
            fmt = _FP_FORMAT[(size, endian)]
            value = "__unpack({0!r}, {1})[0]".format(fmt, read)
        self.w.emit(ind, "try:")
        self.w.emit(ind + 1, "r{0} = {1}".format(dst, value))
        self.w.emit(ind, "except MemoryError_ as __f:")
        self.emit_exc_fault(ind + 1, inst, dst)

    def emit_store(self, ind: int, inst) -> None:
        vtype = inst.value.type
        size = self.target.size_of(vtype)
        endian = self.target.endianness
        self.uses_mem = True
        p = self.expr(inst.pointer)
        if vtype.is_integer or vtype.is_pointer:
            mask = ((1 << vtype.bits) - 1 if vtype.is_integer
                    else _pointer_mask(self.target))
            value_operand = inst.value
            if isinstance(value_operand, (ConstantInt, ConstantNull)):
                const = 0 if isinstance(value_operand, ConstantNull) \
                    else int(value_operand.value)
                raw = repr((const & mask).to_bytes(size, endian))
            else:
                raw = "(({0}) & {1}).to_bytes({2}, {3!r})".format(
                    self.expr(value_operand), mask, size, endian)
        elif vtype.is_bool:
            raw = "b'\\x01' if {0} else b'\\x00'".format(
                self.expr(inst.value))
        else:
            fmt = _FP_FORMAT[(size, endian)]
            raw = "__pack({0!r}, float({1}))".format(fmt,
                                                     self.expr(inst.value))
        self.w.emit(ind, "try:")
        self.w.emit(ind + 1, "__wb({0}, {1})".format(p, raw))
        self.w.emit(ind, "except MemoryError_ as __f:")
        self.emit_exc_fault(ind + 1, inst, None)

    def emit_gep(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        target = self.target
        pointee = inst.pointer.type.pointee
        pmask = _pointer_mask(target)
        p = self.expr(inst.pointer)
        const_indices = inst.constant_indices()
        if const_indices is not None:
            off = target.gep_offset(pointee, list(const_indices))
            if off:
                self.w.emit(ind, "r{0} = (({1}) + {2}) & {3}".format(
                    dst, p, off, pmask))
            else:
                self.w.emit(ind, "r{0} = ({1}) & {2}".format(dst, p, pmask))
            return
        const_off = 0
        terms: List[str] = []
        current: types.Type = pointee
        for position, index_value in enumerate(inst.indices):
            if position == 0:
                scale = target.size_of(current)
            elif current.is_struct:
                field = index_value.value  # constant ubyte by construction
                const_off += target.struct_offsets(current)[field]
                current = current.fields[field]
                continue
            else:  # array
                scale = target.size_of(current.element)
                current = current.element
            if isinstance(index_value, ConstantInt):
                const_off += int(index_value.value) * scale
            else:
                terms.append("({0}) * {1}".format(self.expr(index_value),
                                                  scale))
        pieces = [("({0})".format(p))]
        if const_off:
            pieces.append(str(const_off))
        pieces.extend(terms)
        self.w.emit(ind, "r{0} = ({1}) & {2}".format(
            dst, " + ".join(pieces), pmask))

    def emit_alloca(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        target = self.target
        esize = target.size_of(inst.allocated_type)
        align = max(target.align_of(inst.allocated_type), 1)
        self.uses_mem = True
        count_operand = inst.count
        if count_operand is None or isinstance(count_operand, ConstantInt):
            count = 1 if count_operand is None else count_operand.value
            total = max(esize * max(count, 0), 1)
            size_expr = str(total)
        else:
            size_expr = "max({0} * max({1}, 0), 1)".format(
                esize, self.expr(count_operand))
        self.w.emit(ind, "try:")
        self.w.emit(ind + 1, "r{0} = __mem.push_frame({1}, {2})".format(
            dst, size_expr, align))
        self.w.emit(ind, "except ExecutionTrap as __f:")
        self.emit_exc_fault(ind + 1, inst, dst)

    def emit_cast(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        source = inst.value.type
        dest = inst.type
        v = self.expr(inst.value)
        if source is dest:
            self.w.emit(ind, "r{0} = {1}".format(dst, v))
            return
        if dest.is_bool:
            self.w.emit(ind, "r{0} = bool({1})".format(dst, v))
            return
        if dest.is_integer:
            if source.is_floating_point:
                t = self.tmp()
                self.w.emit(ind, "{0} = {1}".format(t, v))
                self.w.emit(
                    ind,
                    "{0} = 0 if {0} != {0} or {0} in (__inf, __ninf) "
                    "else int({0})".format(t))
                self.w.emit(ind, "r{0} = {1}".format(
                    dst, self.wrap_expr(t, dest)))
            elif source.is_bool:
                self.w.emit(ind, "r{0} = 1 if {1} else 0".format(dst, v))
            else:
                self.w.emit(ind, "r{0} = {1}".format(
                    dst, self.wrap_expr(v, dest)))
            return
        if dest.is_floating_point:
            if source.is_bool:
                raw = "1.0 if {0} else 0.0".format(v)
            else:
                raw = "float({0})".format(v)
            if dest is types.FLOAT:
                raw = "_round_f32({0})".format(raw)
            self.w.emit(ind, "r{0} = {1}".format(dst, raw))
            return
        if dest.is_pointer:
            if source.is_bool:
                self.w.emit(ind, "r{0} = 1 if {1} else 0".format(dst, v))
            elif source.is_floating_point:
                raise UnsupportedFunction("float-to-pointer cast")
            else:
                self.w.emit(ind, "r{0} = ({1}) & {2}".format(
                    dst, v, _pointer_mask(self.target)))
            return
        raise UnsupportedFunction(
            "cast {0} -> {1}".format(source, dest))

    # -- control flow --------------------------------------------------

    def emit_edge(self, ind: int, pred: BasicBlock, succ: BasicBlock,
                  extra: int) -> None:
        """Transfer to *succ*: simultaneous phi assignment, merged step
        bump (taken-branch + one per phi), the max_steps check, and the
        jump.  Inside a superblock the jump specializes — the trace's
        fallthrough successor emits no jump at all, a back edge to the
        trace head re-enters the inner loop with a bare ``continue``,
        and every other target is a *side exit* that breaks back to the
        block-dispatch loop."""
        phis = succ.phis()
        bump = extra + len(phis)
        if phis:
            dsts = []
            srcs = []
            for phi in phis:
                value = phi.incoming_for_block(pred)
                if value is None:
                    raise UnsupportedFunction("phi missing incoming edge")
                dsts.append("r{0}".format(self.slot_of[id(phi)]))
                srcs.append(self.expr(value))
            # Tuple assignment evaluates every source before any write —
            # the simultaneous-assignment phi semantics for free.
            self.w.emit(ind, "{0} = {1}".format(", ".join(dsts),
                                                ", ".join(srcs)))
        if bump:
            self.w.emit(ind, "__steps += {0}".format(bump))
            self.w.emit(ind, "if __steps > __ms:")
            self.w.emit(ind + 1, "st.steps = __steps")
            self.w.emit(ind + 1, "raise StepLimitExceeded("
                                 "'exceeded {0} steps'"
                                 ".format(st.max_steps))")
        if self._sb_head is not None:
            if succ is self._sb_next:
                if not phis and not bump:
                    self.w.emit(ind, "pass")
                return  # falls through into the next trace block's code
            if succ is self._sb_head:
                self.w.emit(ind, "continue")
                return
            self.side_exits.append((pred.name or "", succ.name or ""))
            self.w.emit(ind, "st.t2_side_exits += 1")
            # Flight recording costs one attribute test when off; the
            # event names are baked in as literals at codegen time.
            self.w.emit(ind, "if st.flight is not None:")
            self.w.emit(ind + 1,
                        "st.flight.record('tier2.side_exit', "
                        "function={0!r}, src={1!r}, dst={2!r})".format(
                            self.function.name, pred.name or "",
                            succ.name or ""))
            self.w.emit(ind, "__blk = {0}".format(self.block_id[id(succ)]))
            self.w.emit(ind, "break")
            return
        self.w.emit(ind, "__blk = {0}".format(self.block_id[id(succ)]))
        self.w.emit(ind, "continue")

    def emit_br(self, ind: int, block: BasicBlock, inst) -> None:
        if not inst.is_conditional:
            self.emit_edge(ind, block, inst.operand(0), 1)
            return
        cond = inst.operand(0)
        if isinstance(cond, ConstantBool):
            self.emit_edge(ind, block,
                           inst.operand(1) if cond.value
                           else inst.operand(2), 1)
            return
        self.w.emit(ind, "if {0}:".format(self.expr(cond)))
        self.emit_edge(ind + 1, block, inst.operand(1), 1)
        self.w.emit(ind, "else:")
        self.emit_edge(ind + 1, block, inst.operand(2), 1)

    def emit_mbr(self, ind: int, block: BasicBlock, inst) -> None:
        sel = self.tmp()
        self.w.emit(ind, "{0} = {1}".format(sel, self.expr(inst.selector)))
        seen = set()
        first = True
        for case_value, case_label in inst.cases():
            if case_value.value in seen:  # first match wins
                continue
            seen.add(case_value.value)
            self.w.emit(ind, "{0} {1} == {2!r}:".format(
                "if" if first else "elif", sel, case_value.value))
            first = False
            self.emit_edge(ind + 1, block, case_label, 1)
        if first:
            self.emit_edge(ind, block, inst.default, 1)
        else:
            self.w.emit(ind, "else:")
            self.emit_edge(ind + 1, block, inst.default, 1)

    def emit_ret(self, ind: int, inst, pending: int) -> None:
        self.w.emit(ind, "st.steps = __steps + {0}".format(pending + 1))
        if inst.return_value is None:
            self.w.emit(ind, "return")
        else:
            self.w.emit(ind, "return {0}".format(
                self.expr(inst.return_value)))

    def emit_call(self, ind: int, inst, pending: int) -> None:
        """A call costs one step; the request is yielded to the driver.
        Runtime faults are thrown back in at the yield so the masking
        rules run here, with the compiled function's state live."""
        dst = self.slot_of.get(id(inst))
        args = ", ".join(self.expr(a) for a in inst.args)
        args_tuple = "({0},)".format(args) if args else "()"
        callee = inst.callee
        self.w.emit(ind, "__steps += {0}".format(pending + 1))
        if isinstance(callee, Function) and not callee.is_intrinsic \
                and not (callee.is_declaration
                         and is_runtime_name(callee.name)):
            # Direct LLVA call: the budget check precedes the push
            # (tier-1 parity), then the driver pushes a frame and the
            # return value is sent back into the generator.
            self.w.emit(ind, "if __steps > __ms:")
            self.w.emit(ind + 1, "st.steps = __steps")
            self.w.emit(ind + 1, "raise StepLimitExceeded("
                                 "'exceeded {0} steps'"
                                 ".format(st.max_steps))")
            self.w.emit(ind, "st.steps = __steps")
            lhs = "r{0} = ".format(dst) if dst is not None else ""
            self.w.emit(ind, "{0}yield ('call', {1}, {2})".format(
                lhs, self.func_ref(callee), args_tuple))
            self.w.emit(ind, "__steps = st.steps")
            return
        self.w.emit(ind, "st.steps = __steps")
        if isinstance(callee, Function):
            kind = "intr" if callee.is_intrinsic else "rt"
            request = "('{0}', {1!r}, {2})".format(kind, callee.name,
                                                   args_tuple)
        else:
            kind = "icall"
            request = "('icall', {0}, {1})".format(self.expr(callee),
                                                   args_tuple)
        lhs = "r{0} = ".format(dst) if dst is not None else ""
        self.w.emit(ind, "try:")
        self.w.emit(ind + 1, "{0}yield {1}".format(lhs, request))
        self.w.emit(ind, "except MemoryError_ as __f:")
        self.emit_exc_fault(ind + 1, inst, dst)
        self.w.emit(ind, "__steps = st.steps")

    # -- vector emitters -----------------------------------------------
    # Vector runtime values are host tuples (one entry per lane), and
    # every lane walk is emitted 0..L-1 in order so results and fault
    # addresses match tiers 0/1 bit for bit.  ``vec.lanes`` counting
    # guards on the unit's ``__vlanes`` hook (None when the unit was
    # built with observability off — one is-None test per vector op).

    def _emit_vlanes(self, ind: int, lanes: int) -> None:
        self.w.emit(ind, "if __vlanes is not None:")
        self.w.emit(ind + 1, "__vlanes({0})".format(lanes))

    def emit_vbinary(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        a = self.expr(inst.operand(0))
        b = self.expr(inst.operand(1))
        op = _BIN_OP[inst.opcode[1:]]
        element = inst.type.element
        if element is types.FLOAT:
            lane = "_round_f32(__x {0} __y)".format(op)
        elif element.is_floating_point:
            lane = "__x {0} __y".format(op)
        else:
            # Vector integer arithmetic always wraps (no !ee overflow
            # delivery on the lanes), matching the reference tier.
            lane = self.wrap_expr("__x {0} __y".format(op), element)
        self.w.emit(ind, "r{0} = tuple({1} for __x, __y in zip({2}, {3}))"
                    .format(dst, lane, a, b))
        self._emit_vlanes(ind, inst.type.lanes)

    def emit_vsplat(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        lanes = inst.type.lanes
        self.w.emit(ind, "r{0} = (({1}),) * {2}".format(
            dst, self.expr(inst.scalar), lanes))
        self._emit_vlanes(ind, lanes)

    def emit_vreduce(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        kind = inst.kind
        element = inst.type
        self.w.emit(ind, "r{0} = {1}".format(dst, self.expr(inst.init)))
        self.w.emit(ind, "for __lane in {0}:".format(
            self.expr(inst.vector)))
        if kind == "add":
            if element is types.FLOAT:
                self.w.emit(ind + 1,
                            "r{0} = _round_f32(r{0} + __lane)".format(dst))
            elif element.is_floating_point:
                self.w.emit(ind + 1, "r{0} = r{0} + __lane".format(dst))
            else:
                self.w.emit(ind + 1, "r{0} = {1}".format(
                    dst,
                    self.wrap_expr("r{0} + __lane".format(dst), element)))
        elif kind == "min":
            # Explicit compare-and-keep (never host min/max): replays
            # the scalar ``x < acc`` select, NaN ordering included.
            self.w.emit(ind + 1, "if __lane < r{0}:".format(dst))
            self.w.emit(ind + 2, "r{0} = __lane".format(dst))
        else:
            self.w.emit(ind + 1, "if __lane > r{0}:".format(dst))
            self.w.emit(ind + 2, "r{0} = __lane".format(dst))
        self._emit_vlanes(ind, inst.vector.type.lanes)

    def emit_vload(self, ind: int, inst) -> None:
        dst = self.slot_of[id(inst)]
        element = inst.type.element
        lanes = inst.type.lanes
        esize = self.target.size_of(element)
        endian = self.target.endianness
        self.uses_mem = True
        base = self.tmp()
        self.w.emit(ind, "{0} = {1}".format(base,
                                            self.expr(inst.pointer)))
        reads = []
        for off in range(0, lanes * esize, esize):
            addr = base if off == 0 else "{0} + {1}".format(base, off)
            raw = "__rb({0}, {1})".format(addr, esize)
            if isinstance(element, types.IntegerType) \
                    and element.is_signed:
                sbit = 1 << (element.bits - 1)
                reads.append("(__fb({0}, {1!r}) ^ {2}) - {2}".format(
                    raw, endian, sbit))
            elif element.is_integer:
                reads.append("__fb({0}, {1!r})".format(raw, endian))
            else:
                fmt = _FP_FORMAT[(esize, endian)]
                reads.append("__unpack({0!r}, {1})[0]".format(fmt, raw))
        bulk = _vector_struct_format(element, esize, endian, lanes)
        self.w.emit(ind, "try:")
        if bulk is not None:
            # One region lookup for the whole vector; a bulk fault
            # replays lane by lane (still inside the outer try) so the
            # delivered trap carries the reference tier's exact
            # faulting-lane address.
            self.w.emit(ind + 1, "try:")
            self.w.emit(ind + 2, "r{0} = __unpack({1!r}, __rb({2}, {3}))"
                        .format(dst, bulk, base, lanes * esize))
            self.w.emit(ind + 1, "except MemoryError_:")
            self.w.emit(ind + 2, "r{0} = ({1})".format(
                dst, ", ".join(reads)))
        else:
            self.w.emit(ind + 1, "r{0} = ({1})".format(
                dst, ", ".join(reads)))
        self._emit_vlanes(ind + 1, lanes)
        self.w.emit(ind, "except MemoryError_ as __f:")
        self.emit_exc_fault(ind + 1, inst, dst)

    def emit_vstore(self, ind: int, inst) -> None:
        vtype = inst.value.type
        element = vtype.element
        lanes = vtype.lanes
        esize = self.target.size_of(element)
        endian = self.target.endianness
        self.uses_mem = True
        base = self.tmp()
        val = self.tmp()
        self.w.emit(ind, "{0} = {1}".format(base,
                                            self.expr(inst.pointer)))
        self.w.emit(ind, "{0} = {1}".format(val, self.expr(inst.value)))
        if element.is_floating_point:
            fmt = _FP_FORMAT[(esize, endian)]

            def lane_bytes(slot: int) -> str:
                return "__pack({0!r}, float({1}[{2}]))".format(fmt, val,
                                                               slot)

            def bulk_bytes(bulk: str) -> str:
                return "__pack({0!r}, *{1})".format(bulk, val)
        else:
            mask = (1 << element.bits) - 1

            def lane_bytes(slot: int) -> str:
                return "({0}[{1}] & {2}).to_bytes({3}, {4!r})".format(
                    val, slot, mask, esize, endian)

            def bulk_bytes(bulk: str) -> str:
                # Unsigned code of the same width: the lanes are packed
                # as their masked (two's-complement) byte image.
                bulk = bulk[:-1] + bulk[-1].upper()
                return "__pack({0!r}, *[__x & {1} for __x in {2}])" \
                    .format(bulk, mask, val)
        bulk = _vector_struct_format(element, esize, endian, lanes)
        self.w.emit(ind, "try:")
        lane_ind = ind + 1
        if bulk is not None:
            # Bulk store first; on a bulk fault replay lane by lane so
            # leading lanes land (stop-at-fault) and the trap carries
            # the exact faulting-lane address.
            self.w.emit(ind + 1, "try:")
            self.w.emit(ind + 2, "__wb({0}, {1})".format(
                base, bulk_bytes(bulk)))
            self.w.emit(ind + 1, "except MemoryError_:")
            lane_ind = ind + 2
        for slot in range(lanes):
            off = slot * esize
            addr = base if off == 0 else "{0} + {1}".format(base, off)
            self.w.emit(lane_ind, "__wb({0}, {1})".format(
                addr, lane_bytes(slot)))
        self._emit_vlanes(ind + 1, lanes)
        self.w.emit(ind, "except MemoryError_ as __f:")
        self.emit_exc_fault(ind + 1, inst, None)

    # -- the block walker ----------------------------------------------

    #: Opcodes whose generated code cannot fault, yield, or branch —
    #: their step counts merge into one ``__steps += k``.  Vector
    #: arithmetic wraps (and reductions fold) without trapping, so the
    #: whole register-only vector group is pure.
    _PURE = frozenset(["and", "or", "xor", "shl", "shr", "seteq", "setne",
                       "setlt", "setgt", "setle", "setge",
                       "getelementptr", "cast",
                       "vadd", "vsub", "vmul", "vsplat",
                       "vreduce.add", "vreduce.min", "vreduce.max"])

    def _is_pure(self, inst) -> bool:
        opcode = inst.opcode
        if opcode in self._PURE:
            return True
        if opcode in ("add", "sub", "mul"):
            # Pure unless the !ee bit makes overflow deliverable.
            return inst.type.is_floating_point \
                or not inst.exceptions_enabled
        if opcode in ("div", "rem"):
            # A constant nonzero divisor removes both the zero check
            # and the overflow suffix, so the op can neither trap nor
            # yield — its step merges like any other pure op.
            return not inst.type.is_floating_point \
                and self._divrem_const_divisor(inst) is not None
        return False

    def emit_block(self, block: BasicBlock) -> None:
        """One plain dispatch arm (optionally instrumented with the
        profiling-stage block counter and its upgrade trigger)."""
        bid = self.block_id[id(block)]
        self.w.emit(2, "{0} __blk == {1}:".format(
            "if" if bid == 0 else "elif", bid))
        if self.profile_blocks:
            # The equality test fires the upgrade request exactly once
            # per block (the counter list is shared unit-wide); the
            # driver may answer by swapping this generator for a
            # trace-guided one, resuming at this very block.
            self.w.emit(3, "__bc[{0}] += 1".format(bid))
            self.w.emit(3, "if __bc[{0}] == {1}:".format(
                bid, self.upgrade_threshold))
            self.w.emit(4, "st.steps = __steps")
            self.w.emit(4, "yield ('osr', {0})".format(bid))
            self.w.emit(4, "__steps = st.steps")
        self.emit_block_body(block, 3)

    def emit_trace(self, trace_blocks: List[BasicBlock]) -> None:
        """One superblock arm: the whole trace as straight-line code
        inside its own ``while True``.  Entering the arm (from dispatch
        or OSR) starts at the trace head; the loop's back edge never
        touches the dispatcher again until a side exit breaks out."""
        head = trace_blocks[0]
        bid = self.block_id[id(head)]
        self.w.emit(2, "{0} __blk == {1}:".format(
            "if" if bid == 0 else "elif", bid))
        self.w.emit(3, "while True:")
        try:
            for position, block in enumerate(trace_blocks):
                self._sb_head = head
                self._sb_next = (trace_blocks[position + 1]
                                 if position + 1 < len(trace_blocks)
                                 else None)
                self.emit_block_body(block, 4)
        finally:
            self._sb_head = None
            self._sb_next = None

    def emit_block_body(self, block: BasicBlock, ind: int) -> None:
        instructions = block.instructions
        start = len(block.phis())
        pending = 0  # pure ops since the last __steps flush
        body_emitted = False
        for index in range(start, len(instructions)):
            inst = instructions[index]
            opcode = inst.opcode
            if opcode in ("invoke", "unwind"):
                raise UnsupportedFunction(opcode)
            if opcode == "phi":
                raise UnsupportedFunction("phi after block head")
            if self._is_pure(inst):
                pending += 1
                self._emit_simple(ind, inst)
                body_emitted = True
                continue
            if opcode == "br":
                if pending:
                    self.w.emit(ind, "__steps += {0}".format(pending))
                self.emit_br(ind, block, inst)
                return
            if opcode == "mbr":
                if pending:
                    self.w.emit(ind, "__steps += {0}".format(pending))
                self.emit_mbr(ind, block, inst)
                return
            if opcode == "ret":
                self.emit_ret(ind, inst, pending)
                return
            if opcode in ("call",):
                self.emit_call(ind, inst, pending)
                pending = 0
                body_emitted = True
                continue
            # Faultable straight-line op: its own step merges into the
            # preceding run so the count is exact at the fault point.
            self.w.emit(ind, "__steps += {0}".format(pending + 1))
            pending = 0
            if opcode in ("add", "sub", "mul", "div", "rem"):
                self.emit_arith(ind, inst)
            elif opcode == "load":
                self.emit_load(ind, inst)
            elif opcode == "store":
                self.emit_store(ind, inst)
            elif opcode == "vload":
                self.emit_vload(ind, inst)
            elif opcode == "vstore":
                self.emit_vstore(ind, inst)
            elif opcode == "alloca":
                self.emit_alloca(ind, inst)
            else:
                raise UnsupportedFunction("opcode {0}".format(opcode))
            body_emitted = True
        if not body_emitted:
            raise UnsupportedFunction("block without terminator")
        raise UnsupportedFunction("block falls through")

    def _emit_simple(self, ind: int, inst) -> None:
        opcode = inst.opcode
        if opcode in ("add", "sub", "mul", "div", "rem"):
            self.emit_arith(ind, inst)
        elif opcode in ("and", "or", "xor"):
            self.emit_logical(ind, inst)
        elif opcode in ("shl", "shr"):
            self.emit_shift(ind, inst)
        elif opcode in _CMP_OP:
            self.emit_compare(ind, inst)
        elif opcode == "getelementptr":
            self.emit_gep(ind, inst)
        elif opcode == "cast":
            self.emit_cast(ind, inst)
        elif opcode in ("vadd", "vsub", "vmul"):
            self.emit_vbinary(ind, inst)
        elif opcode == "vsplat":
            self.emit_vsplat(ind, inst)
        elif opcode in ("vreduce.add", "vreduce.min", "vreduce.max"):
            self.emit_vreduce(ind, inst)
        else:  # pragma: no cover - guarded by _is_pure
            raise UnsupportedFunction(opcode)

    # -- driver --------------------------------------------------------

    def generate(self) -> Tuple[str, int]:
        """Emit the whole generator function; returns (source,
        num_slots)."""
        function = self.function
        blocks = function.blocks
        if not blocks:
            raise UnsupportedFunction("declaration")
        slot = 0
        for arg in function.args:
            self.slot_of[id(arg)] = slot
            slot += 1
        for block in blocks:
            for inst in block.instructions:
                if inst.produces_value:
                    self.slot_of[id(inst)] = slot
                    slot += 1
        num_slots = slot
        for index, block in enumerate(blocks):
            self.block_id[id(block)] = index
        # Superblock layout: each trace head's arm becomes the whole
        # trace; interior blocks keep their own plain arms so side
        # exits and OSR entries always have a dispatch target.
        trace_of: Dict[int, List[BasicBlock]] = {}
        for trace in self.layout:
            if trace.blocks and id(trace.blocks[0]) in self.block_id:
                trace_of[id(trace.blocks[0])] = trace.blocks
        # Body first (so prologue hoists only what is referenced).
        body = _SourceWriter()
        self.w = body
        for block in blocks:
            trace_blocks = trace_of.get(id(block))
            if trace_blocks is not None:
                self.emit_trace(trace_blocks)
            else:
                self.emit_block(block)
        head = _SourceWriter()
        params = ", ".join("r{0}".format(i)
                           for i in range(len(function.args)))
        head.emit(0, "def __tier2(st{0}, __osr=None):".format(
            ", " + params if params else ""))
        if self.uses_mem:
            head.emit(1, "__mem = st.memory")
            head.emit(1, "__rb = __mem.read_bytes")
            head.emit(1, "__wb = __mem.write_bytes")
            head.emit(1, "__fb = int.from_bytes")
        for alias, name in self.global_refs.items():
            head.emit(1, "{0} = st.image.address_of({1!r})".format(alias,
                                                                   name))
        head.emit(1, "__ms = st.max_steps")
        head.emit(1, "if __ms is None:")
        head.emit(2, "__ms = 0x7fffffffffffffff")
        head.emit(1, "__steps = st.steps")
        # On-stack replacement entry: __osr carries (block id, full
        # register file); the V-ABI slot numbering is shared with tier
        # 1, so restoring the frame is one tuple unpack.  Normal calls
        # pay a single None test.
        head.emit(1, "if __osr is None:")
        head.emit(2, "__blk = 0")
        head.emit(1, "else:")
        head.emit(2, "__blk = __osr[0]")
        if num_slots:
            names = ", ".join("r{0}".format(i) for i in range(num_slots))
            if num_slots == 1:
                names += ","
            head.emit(2, "{0} = __osr[1]".format(names))
        # A function whose body never yields must still be a generator
        # for the driver protocol; the dead yield below forces that.
        head.emit(1, "if False:")
        head.emit(2, "yield None")
        head.emit(1, "while True:")
        return head.text() + body.text(), num_slots


def _vlanes_counter():
    """Per-unit ``vec.lanes`` hook.  None when observability is off at
    build time — generated vector ops then pay a single is-None test —
    else a bound counter tagged with this tier's engine label.  Like
    tier 1's decode-time gate, toggling observability does not retrofit
    already-built units; the next (re)build picks the new state up."""
    if not observe.enabled():
        return None

    def bump(lanes, _c=observe.counter):
        _c("vec.lanes", lanes, engine="tier2")
    return bump


_BASE_NAMESPACE = {
    "MemoryError_": MemoryError_,
    "__vlanes": None,
    "ExecutionTrap": ExecutionTrap,
    "StepLimitExceeded": StepLimitExceeded,
    "_float_arith": _float_arith,
    "_round_f32": _round_f32,
    "__pack": struct.pack,
    "__unpack": struct.unpack,
    "__inf": float("inf"),
    "__ninf": float("-inf"),
    "__builtins__": {"abs": abs, "max": max, "min": min, "bool": bool,
                     "int": int, "float": float, "len": len,
                     "tuple": tuple, "zip": zip},
}


def generate_source(function: Function, target: types.TargetData,
                    layout=None, profile_blocks: bool = False,
                    upgrade_threshold: int = DEFAULT_SUPERBLOCK_THRESHOLD
                    ) -> Tuple[str, Dict[str, str], int, List[Tuple[str, str]]]:
    """Tier-2 codegen for one function.  Returns ``(source, func_refs,
    num_slots, side_exits)``; raises :class:`UnsupportedFunction` for
    bodies the generator cannot express.  *layout* (a list of
    ``tracecache.Trace``) turns hot traces into superblock arms;
    *profile_blocks* instruments every dispatch arm with the
    profiling-stage counter and upgrade trigger instead."""
    cg = _FnCodegen(function, target, layout=layout,
                    profile_blocks=profile_blocks,
                    upgrade_threshold=upgrade_threshold)
    source, num_slots = cg.generate()
    return source, dict(cg.func_refs), num_slots, list(cg.side_exits)


def build_unit(function: Function, module: Module,
               target: types.TargetData,
               source: Optional[str] = None,
               func_refs: Optional[Dict[str, str]] = None,
               num_slots: Optional[int] = None,
               code=None, kind: str = "dispatch",
               layout_hash: str = "-",
               side_exits=(), block_counts=None) -> CompiledUnit:
    """``compile()`` tier-2 source into a :class:`CompiledUnit`.

    With *source* (and *func_refs*) given — the persisted-translation
    warm path — codegen is skipped entirely and direct-call targets are
    re-resolved by name against *module*.  With *code* also given (an
    unmarshalled code object from a same-``cache_tag`` persisted blob),
    even ``compile()`` is skipped.
    """
    if source is None:
        source, func_refs, num_slots, side_exits = generate_source(
            function, target)
    elif func_refs is None or num_slots is None:
        raise ValueError("persisted source requires func_refs/num_slots")
    if code is None:
        code = compile(source, "<tier2:{0}>".format(function.name),
                       "exec")
    namespace = dict(_BASE_NAMESPACE)
    namespace["__vlanes"] = _vlanes_counter()
    if block_counts is not None:
        namespace["__bc"] = block_counts
    for alias, name in func_refs.items():
        target_fn = module.functions.get(name)
        if target_fn is None:
            raise UnsupportedFunction(
                "direct callee {0!r} not in module".format(name))
        namespace[alias] = target_fn
    exec(code, namespace)
    factory = namespace["__tier2"]
    snap_map = tuple(("r{0}".format(i), i) for i in range(num_slots))
    return CompiledUnit(
        function=function,
        smc_version=function.smc_version,
        factory=factory,
        num_args=len(function.args),
        num_slots=num_slots,
        snap_map=snap_map,
        source=source,
        func_hash=function_hash(function),
        code=code,
        kind=kind,
        layout_hash=layout_hash,
        side_exits=tuple(side_exits),
        block_counts=block_counts,
    )


# ---------------------------------------------------------------------------
# The tier-2 cache: promotion policy, deopt, SMC invalidation, persistence
# ---------------------------------------------------------------------------


class _CompilePlan:
    """An immutable compilation decision, captured on the engine
    thread so :meth:`Tier2Cache._build_plan` can run on a background
    worker without reading shared mutable state."""

    __slots__ = ("kind", "layout", "layout_hash", "warm")

    def __init__(self, kind, layout, layout_hash, warm):
        #: "warm" (persisted source/bytecode), "profiling" (counter
        #: stage), or "codegen" (fresh dispatch/superblock emission).
        self.kind = kind
        #: Trace layout for superblock codegen (None otherwise); trace
        #: objects are never mutated after formation.
        self.layout = layout
        self.layout_hash = layout_hash
        #: The preloaded-blob tuple for warm builds.
        self.warm = warm


class Tier2Cache:
    """Per-module tier-2 state, shareable across runs (like
    :class:`~repro.execution.fastpath.DecodeCache`)."""

    def __init__(self, module: Module, target: types.TargetData,
                 threshold: int = DEFAULT_THRESHOLD,
                 step_threshold: int = DEFAULT_STEP_THRESHOLD,
                 superblocks: bool = False, osr: bool = False,
                 superblock_threshold: int = DEFAULT_SUPERBLOCK_THRESHOLD,
                 osr_step_threshold: int = DEFAULT_OSR_STEP_THRESHOLD,
                 trace_hot_threshold: Optional[int] = None,
                 trace_successor_bias: float = 0.4,
                 async_compile: bool = False,
                 compile_workers: Optional[int] = None,
                 compile_service=None,
                 escalate_step_threshold: Optional[int] = None,
                 tier3: bool = False,
                 tier3_threshold: Optional[int] = None,
                 tier3_target: Optional[str] = None,
                 tier3_backend: str = "threaded"):
        self.module = module
        self.target = target
        self.threshold = max(int(threshold), 0)
        self.step_threshold = max(int(step_threshold), 0)
        #: Trace-guided superblock emission (plus the profiling stage
        #: that collects layouts when no profile is available yet).
        self.superblocks = bool(superblocks)
        #: Tier-1 on-stack replacement at loop back edges.
        self.osr = bool(osr)
        self.superblock_threshold = max(int(superblock_threshold), 1)
        self.osr_step_threshold = max(int(osr_step_threshold), 1)
        if trace_hot_threshold is None:
            # Scale trace formation to the profiling-stage horizon: by
            # the time a block hits superblock_threshold, anything a
            # trace should cover has seen a proportional share.
            trace_hot_threshold = max(self.superblock_threshold // 32, 1)
        self.trace_hot_threshold = int(trace_hot_threshold)
        self.trace_successor_bias = float(trace_successor_bias)
        self.stats = Tier2Stats()
        #: Block-level profile guiding trace formation — absorbed from
        #: ``prime_from_profile``, the persisted snapshot, and live
        #: profiling-unit counters.
        self._profile = None
        self._profile_dirty = False
        self.profile_cache_hit = False
        # id(function) -> CompiledUnit; the unit pins the function
        # object through .function, keeping the id unique.
        self._units: Dict[int, CompiledUnit] = {}
        self._counts: Dict[int, int] = {}
        self._step_credit: Dict[int, int] = {}
        self._pinned: Dict[int, str] = {}
        #: function name -> (func_hash, source, func_refs, num_slots,
        #: code-object-or-None) loaded from the persistent translation
        #: cache.  The code object is present when the blob was written
        #: by the same Python (``sys.implementation.cache_tag``).
        self._preloaded: Dict[str, Tuple] = {}
        self._storage = None
        self._storage_cache: Optional[str] = None
        self._storage_key: Optional[str] = None
        self._dirty = False
        self.translation_cache_hit = False
        # -- asynchronous (idle-time) compilation ----------------------
        # A shared service may be injected (the multi-tenant LLEE
        # shape); otherwise the cache owns a private one, created
        # lazily so a synchronous cache costs nothing.
        self.async_compile = bool(async_compile) or \
            compile_service is not None
        self._service = compile_service
        self._owns_service = False
        self._compile_workers = compile_workers
        if escalate_step_threshold is None:
            escalate_step_threshold = DEFAULT_ESCALATE_STEP_THRESHOLD
        self.escalate_step_threshold = max(int(escalate_step_threshold),
                                           0)
        #: id(function) -> (function, plan, CompileJob, smc_version,
        #: step-credit-at-enqueue): jobs submitted but not yet
        #: installed.  One entry per function — promotion requests
        #: while a job is in flight coalesce into a poll of the
        #: existing job (or an escalation once enough tier-1 steps
        #: burn while it waits).
        self._pending: Dict[int, Tuple] = {}
        #: run_begin/run_end nesting depth (engine-active bookkeeping
        #: for the service's idle policy).
        self._run_depth = 0
        # -- tier 3: hosted native translations ------------------------
        #: Functions that stay hot *inside* tier 2 are translated with
        #: the offline FunctionJIT pipeline (targets/) and executed by
        #: the hosted machine-code executor, still speaking the tier-2
        #: yield protocol.
        self.tier3 = bool(tier3)
        if tier3_threshold is None:
            tier3_threshold = DEFAULT_TIER3_STEP_THRESHOLD
        self.tier3_threshold = max(int(tier3_threshold), 0)
        self.tier3_target_name = tier3_target or "x86"
        from repro.execution.machine_sim import TIER3_BACKENDS
        if tier3_backend not in TIER3_BACKENDS:
            raise ValueError(
                "unknown tier-3 backend {0!r} (choose from {1})".format(
                    tier3_backend, ", ".join(TIER3_BACKENDS)))
        #: Execution backend for hosted units: "threaded"
        #: (block-compiled, default) or "step" (one-instruction oracle).
        self.tier3_backend = tier3_backend
        self._tier3_target = None
        #: id(function) -> machine_sim.Tier3Unit.
        self._units3: Dict[int, object] = {}
        #: Steps burned inside tier-2 activations, per function.
        self._credit3: Dict[int, int] = {}
        self._pinned3: Dict[int, str] = {}
        #: id(function) -> (function, CompileJob, smc_version).
        self._pending3: Dict[int, Tuple] = {}
        #: function name -> (machine, num_args, num_slots, block_steps,
        #: slot_by_site) loaded from the persistent ``llee-tier3`` blob.
        self._preloaded3: Dict[str, Tuple] = {}
        self._dirty3 = False
        self.tier3_cache_hit = False

    # -- the background compile service --------------------------------

    def _compile_service(self):
        if self._service is None:
            from repro.llee.compile_service import CompileService
            workers = self._compile_workers
            if workers is None:
                from repro.llee.compile_service import DEFAULT_WORKERS
                workers = DEFAULT_WORKERS
            self._service = CompileService(workers=workers)
            self._owns_service = True
            # Created mid-run: replay the engine-active depth so the
            # idle policy parks builds until this run ends.
            for _ in range(self._run_depth):
                self._service.engine_begin()
        return self._service

    def has_pending(self, function: Function) -> bool:
        """True while a background compile of *function* is in flight
        (the engine uses this to shorten its OSR re-poll interval)."""
        return id(function) in self._pending

    @property
    def pending_compiles(self) -> int:
        return len(self._pending) + len(self._pending3)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every in-flight background compile and install the
        results (engine thread only).  Returns True when no jobs
        remain pending — always True for a synchronous cache."""
        if not self._pending and not self._pending3:
            return True
        deadline = None if timeout is None else \
            time.perf_counter() + timeout
        service = self._service
        # Raise demand so idle-policy workers build even if an engine
        # is (nominally) still marked active.
        if service is not None:
            service.begin_demand()
        try:
            while self._pending or self._pending3:
                futures = [entry[2].future
                           for entry in self._pending.values()]
                futures.extend(entry[1].future
                               for entry in self._pending3.values())
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining < 0:
                        remaining = 0
                from concurrent.futures import wait as _wait
                _wait(futures, timeout=remaining)
                progressed = False
                for key in list(self._pending):
                    entry = self._pending.get(key)
                    if entry is not None and entry[2].future.done():
                        self._poll(entry[0], force=True)
                        progressed = True
                for key in list(self._pending3):
                    entry = self._pending3.get(key)
                    if entry is not None and entry[1].future.done():
                        self._poll3(entry[0], force=True)
                        progressed = True
                if not progressed and deadline is not None \
                        and time.perf_counter() >= deadline:
                    return False
            return True
        finally:
            if service is not None:
                service.end_demand()

    def run_begin(self) -> None:
        """The engine entered a run: under the service's idle policy
        this parks background builds until the run ends.  Tracked as a
        depth so a service created lazily mid-run (first promotion)
        still starts in the engine-active state."""
        self._run_depth += 1
        if self.async_compile and self._service is not None:
            self._service.engine_begin()

    def run_end(self) -> None:
        if self._run_depth > 0:
            self._run_depth -= 1
            if self.async_compile and self._service is not None:
                self._service.engine_end()

    def close(self) -> None:
        """Shut down a privately owned compile service (shared
        services are the owner's to close); abandon pending jobs."""
        self._pending.clear()
        self._pending3.clear()
        if self._owns_service and self._service is not None:
            self._service.shutdown(wait=False)
            self._service = None
            self._owns_service = False

    # -- promotion ------------------------------------------------------

    def lookup(self, function: Function) -> Optional[CompiledUnit]:
        """The per-call hook: return the compiled unit for *function*,
        compiling it if its counters cross the promotion threshold, or
        None to stay on tier 1.

        Call boundaries are the primary safe swap-in point: in async
        mode a crossing submits a background job instead of compiling
        inline, and every later call polls the job — the caller keeps
        running tier 1 until the finished unit is installed here."""
        key = id(function)
        if self.tier3:
            unit3 = self._lookup3(function)
            if unit3 is not None:
                return unit3
        unit = self._units.get(key)
        if unit is not None:
            if unit.smc_version == function.smc_version:
                return unit
            self.invalidate(function)
        if key in self._pinned:
            return None
        if key in self._pending:
            unit = self._poll(function)
            if unit is not None:
                return unit
            entry = self._pending.get(key)
            if entry is not None and self.escalate_step_threshold:
                burned = self._step_credit.get(key, 0) - entry[4]
                if burned >= self.escalate_step_threshold:
                    return self._escalate(function)
            return None
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count <= self.threshold:
            if self._step_credit.get(key, 0) < self.step_threshold \
                    or self.step_threshold == 0:
                return None
            self.stats.promotions_by_steps += 1
            reason = "steps"
        else:
            reason = "invocations"
        flight = observe.flight()
        if flight is not None:
            flight.record("tier2.promote", function=function.name,
                          reason=reason, invocations=count,
                          step_credit=self._step_credit.get(key, 0))
        if self.async_compile:
            # Priority = accumulated heat, so the hottest code leaves
            # the queue first.  (Warm blobs install inline and are
            # returned immediately.)
            return self._submit(
                function,
                priority=self._step_credit.get(key, 0) + count)
        return self._compile(function)

    def lookup_osr(self, function: Function) -> Optional[CompiledUnit]:
        """The on-stack-replacement hook: a tier-1 activation sitting
        in a hot loop wants to finish in tier 2.  Returns a unit whose
        generator accepts mid-function entry, compiling one on the
        spot if needed — or None (off, pinned, uncompilable) to keep
        interpreting."""
        if not self.osr:
            return None
        key = id(function)
        unit = self._units.get(key)
        if unit is not None:
            if unit.smc_version == function.smc_version:
                return unit
            self.invalidate(function)
        if key in self._pinned:
            return None
        if key in self._pending:
            # The back-edge check is the second safe swap-in point:
            # poll the in-flight job.  An activation that has already
            # burned a full OSR threshold inside one loop is proven
            # hot — stop deferring and compile inline.
            unit = self._poll(function)
            if unit is not None:
                return unit
            return self._escalate(function, reason="osr")
        flight = observe.flight()
        if flight is not None:
            flight.record("tier2.promote", function=function.name,
                          reason="osr")
        # Heat is proven (a full OSR step threshold burned inside one
        # activation), so even in async mode deferral has nothing left
        # to price — compile inline, exactly like the sync path.
        return self._compile(function)

    def osr_upgrade(self, function: Function,
                    unit: CompiledUnit) -> Optional[CompiledUnit]:
        """Answer a profiling unit's ``('osr', block)`` request: fold
        its live block counters into the cache profile, recompile —
        ideally as a trace-guided superblock — and return the
        replacement unit.  Returns the already-upgraded unit when
        another activation got here first, or None when compilation
        now pins the function (the requesting generator then simply
        keeps running)."""
        key = id(function)
        current = self._units.get(key)
        if current is not None and current is not unit:
            return current
        if key in self._pinned:
            return None
        if key in self._pending:
            # A deferred (invocation-count) build is still queued, but
            # the profiling unit just proved the function hot — stop
            # waiting and upgrade inline.
            replacement = self._poll(function)
            if replacement is not None and replacement is not unit:
                pass  # background unit landed; use it below
            else:
                self._absorb_block_counts(function, unit)
                self._units.pop(key, None)
                replacement = self._escalate(function,
                                             reason="osr-upgrade")
            if replacement is None or replacement is unit:
                return None
        else:
            # The upgrade request comes from code executing *right
            # now*: deferral has no value, so async mode takes the
            # same inline path as sync.
            self._absorb_block_counts(function, unit)
            self._units.pop(key, None)
            replacement = self._compile(function)
        if replacement is not None:
            self.stats.osr_upgrades += 1
            if observe.enabled():
                observe.counter("tier2.osr_upgrades", 1)
            flight = observe.flight()
            if flight is not None:
                flight.record("tier2.osr.upgrade",
                              function=function.name,
                              kind=replacement.kind)
        return replacement

    def _absorb_block_counts(self, function: Function,
                             unit: CompiledUnit) -> None:
        """Fold a profiling unit's live block counters into the cache
        profile, zeroing the (shared) list in place so still-live
        generators never re-merge the same executions."""
        counts = unit.block_counts
        if not counts:
            return
        profile = self._ensure_profile()
        blocks = function.blocks
        for index in range(min(len(blocks), len(counts))):
            profile.record(function.name,
                           blocks[index].name or "", counts[index])
            counts[index] = 0
        self._profile_dirty = True

    # -- profiles and trace layouts ------------------------------------

    def _ensure_profile(self):
        if self._profile is None:
            from repro.llee.profile import Profile
            self._profile = Profile()
        return self._profile

    def _has_profile_data(self, function: Function) -> bool:
        if self._profile is None:
            return False
        counts = self._profile.counts
        name = function.name
        for block in function.blocks:
            if counts.get((name, block.name or "")):
                return True
        return False

    def _layout_for(self, function: Function):
        """The trace layout superblock codegen should use for
        *function* (a list of ``tracecache.Trace``), or None for plain
        block dispatch."""
        if not self.superblocks or self._profile is None:
            return None
        from repro.llee.tracecache import form_function_traces
        traces = form_function_traces(
            function, self._profile,
            hot_threshold=self.trace_hot_threshold,
            successor_bias=self.trace_successor_bias)
        return traces or None

    def credit_steps(self, function: Function, steps: int) -> None:
        """Credit architectural steps to a function (called by the
        engine when a tier-1 activation returns); enough accumulated
        heat promotes the function even at a low invocation count."""
        key = id(function)
        self._step_credit[key] = self._step_credit.get(key, 0) + steps

    def prime(self, function: Function, invocations: int) -> None:
        """Pre-seed the invocation counter (profile-guided warm-up)."""
        key = id(function)
        self._counts[key] = self._counts.get(key, 0) + int(invocations)

    def prime_from_profile(self, profile, module: Optional[Module] = None
                           ) -> None:
        """Seed promotion counters from a collected
        :class:`repro.llee.profile.Profile` — the offline
        reoptimization loop feeding the online tiering decision.  The
        profile is also absorbed for superblock trace formation."""
        module = module or self.module
        self._ensure_profile().merge(profile)
        for function in module.functions.values():
            if function.is_declaration:
                continue
            entries = profile.function_entry_count(function)
            if entries:
                self.prime(function, entries)

    # -- compilation ----------------------------------------------------
    #
    # Compilation is split into three stages so the middle one can run
    # on a background worker:
    #
    #   _plan        engine thread   reads promotion/profile/warm state
    #   _build_plan  any thread      pure codegen + compile()/exec
    #   _install     engine thread   mutates stats, units, flight log
    #
    # The synchronous path composes all three inline; the async path
    # runs _build_plan through the CompileService and installs the
    # result when a safe point (_poll) sees the future resolve.

    def _plan(self, function: Function) -> "_CompilePlan":
        """Decide, on the engine thread, *how* the function will be
        compiled — warm blob, profiling stage, or fresh codegen — and
        capture everything the builder needs so it never touches
        shared mutable state."""
        layout = self._layout_for(function)
        from repro.llee.tracecache import layout_signature
        lhash = layout_signature(layout)
        warm = self._preloaded.get(function.name)
        if warm is not None and warm[5].get("layout_hash", "-") != lhash:
            # The persisted unit was generated from a different trace
            # layout than the current profile implies — a stale
            # superblock must not be resurrected.  Fall back to online
            # translation (satisfying the same llee.cache.invalid
            # contract as every other stale-blob path).
            observe.counter("llee.cache.invalid", 1, target="tier2",
                            reason="layout")
            flight = observe.flight()
            if flight is not None:
                flight.record("llee.cache", cache="llee-tier2",
                              event="invalid", reason="layout",
                              function=function.name)
            self._preloaded.pop(function.name, None)
            warm = None
        if warm is not None and function.smc_version == 0:
            return _CompilePlan("warm", None, lhash, warm)
        if layout is None and self.superblocks \
                and len(function.blocks) > 1 \
                and not self._has_profile_data(function):
            return _CompilePlan("profiling", None, lhash, None)
        return _CompilePlan("codegen", layout, lhash, None)

    def _build_plan(self, function: Function,
                    plan: "_CompilePlan") -> Tuple[CompiledUnit, float]:
        """Execute a compile plan — thread-safe: only reads the module
        and the immutable plan.  Returns ``(unit, codegen_seconds)``;
        raises :class:`UnsupportedFunction` for bodies tier 2 cannot
        express."""
        if plan.kind == "warm":
            # Persisted translation: the blob's module hash matched at
            # load and the body has not been SMC-mutated since, so the
            # stored source is the one codegen would emit — skip
            # straight to compile(), or past it entirely when the blob
            # carried same-cache_tag marshalled bytecode.
            _hash, source, func_refs, num_slots, code, meta = plan.warm
            unit = build_unit(function, self.module, self.target,
                              source=source, func_refs=func_refs,
                              num_slots=num_slots, code=code,
                              kind=meta.get("kind", "dispatch"),
                              layout_hash=plan.layout_hash,
                              side_exits=meta.get("side_exits", ()))
            return unit, 0.0
        if plan.kind == "profiling":
            # Superblocks requested but no profile yet: compile the
            # profiling stage — block dispatch plus counters that feed
            # trace formation and trigger the mid-activation upgrade.
            # Its source references the per-unit counter list, so it
            # is never persisted.
            codegen_started = time.perf_counter()
            block_counts = [0] * len(function.blocks)
            source, func_refs, num_slots, side_exits = \
                generate_source(
                    function, self.target, profile_blocks=True,
                    upgrade_threshold=self.superblock_threshold)
            codegen_seconds = time.perf_counter() - codegen_started
            unit = build_unit(function, self.module, self.target,
                              source=source, func_refs=func_refs,
                              num_slots=num_slots, kind="profiling",
                              block_counts=block_counts)
            return unit, codegen_seconds
        codegen_started = time.perf_counter()
        source, func_refs, num_slots, side_exits = \
            generate_source(function, self.target, layout=plan.layout)
        codegen_seconds = time.perf_counter() - codegen_started
        unit = build_unit(
            function, self.module, self.target, source=source,
            func_refs=func_refs, num_slots=num_slots,
            kind="superblock" if plan.layout else "dispatch",
            layout_hash=plan.layout_hash, side_exits=side_exits)
        return unit, codegen_seconds

    def _install(self, function: Function, plan: "_CompilePlan",
                 unit: CompiledUnit, elapsed: float,
                 codegen_seconds: float) -> CompiledUnit:
        """Book a built unit into the cache (engine thread)."""
        self.stats.codegen_seconds += codegen_seconds
        self.stats.compile_seconds += elapsed
        self.stats.functions_compiled += 1
        if plan.kind == "warm":
            self.stats.warm_compiles += 1
            if observe.enabled():
                observe.counter("tier2.warm_compiles", 1)
        elif plan.kind == "profiling":
            self.stats.profiling_compiled += 1
        else:
            self._dirty = True
        if unit.kind == "superblock":
            self.stats.superblocks_compiled += 1
            if observe.enabled():
                observe.counter("tier2.superblocks", 1)
        self._units[id(function)] = unit
        if observe.enabled():
            observe.counter("tier2.functions_compiled", 1)
            observe.histogram("tier2.compile_seconds", elapsed,
                              function=function.name)
        flight = observe.flight()
        if flight is not None:
            flight.record("tier2.compile.end", function=function.name,
                          kind=unit.kind, seconds=round(elapsed, 9),
                          warm=plan.kind == "warm")
            if unit.kind == "superblock":
                flight.record(
                    "tier2.superblock", function=function.name,
                    traces=len(plan.layout) if plan.layout else 0,
                    side_exits=len(unit.side_exits))
        return unit

    def _fail(self, function: Function, reason: str,
              elapsed: float) -> None:
        """Book a failed compilation: pin the function to tier 1 and
        close out the flight record (engine thread)."""
        self.pin(function, reason)
        self.stats.compile_seconds += elapsed
        flight = observe.flight()
        if flight is not None:
            flight.record("tier2.compile.end",
                          function=function.name, kind="error",
                          seconds=round(elapsed, 9), warm=False)

    def _compile(self, function: Function,
                 plan: Optional["_CompilePlan"] = None
                 ) -> Optional[CompiledUnit]:
        started = time.perf_counter()
        flight = observe.flight()
        if flight is not None:
            flight.record("tier2.compile.begin", function=function.name)
        if plan is None:
            plan = self._plan(function)
        try:
            unit, codegen_seconds = self._build_plan(function, plan)
        except UnsupportedFunction as reason:
            self._fail(function, str(reason),
                       time.perf_counter() - started)
            return None
        except Exception as error:  # pragma: no cover - defensive
            # A codegen defect must never take the program down: the
            # tier-1 engine is always a correct fallback.
            self._fail(function,
                       "tier-2 compile error: {0}".format(error),
                       time.perf_counter() - started)
            return None
        return self._install(function, plan, unit,
                             time.perf_counter() - started,
                             codegen_seconds)

    def _submit(self, function: Function,
                priority: int = 0) -> Optional[CompiledUnit]:
        """Hand a promotion to the background service: plan on the
        engine thread, build on a worker.  The caller returns to tier
        1 immediately; _poll installs the unit later.

        Exception: a *warm* plan (validated blob from the translation
        cache) is installed inline and returned — loading it is a
        cheap deserialize, and parking it behind the idle policy would
        make a warm start run tier 1 for no reason."""
        plan = self._plan(function)
        if plan.kind == "warm":
            return self._compile(function, plan=plan)
        service = self._compile_service()
        self.stats.async_enqueued += 1
        depth = service.queue_depth()
        if observe.enabled():
            observe.counter("tier2.async_enqueued", 1)
        flight = observe.flight()
        if flight is not None:
            flight.record("tier2.compile.enqueue",
                          function=function.name, queue_depth=depth,
                          kind=plan.kind)
            flight.record("tier2.compile.begin",
                          function=function.name)
        job = service.submit(
            lambda: self._build_plan(function, plan),
            priority=priority, label=function.name)
        self._pending[id(function)] = (
            function, plan, job, function.smc_version,
            self._step_credit.get(id(function), 0))
        return None

    def _poll(self, function: Function,
              force: bool = False) -> Optional[CompiledUnit]:
        """Check an in-flight background compile at a safe point and
        install its unit if the future has resolved (engine thread).
        Returns the installed unit, or None while still compiling.

        The completion check is the job's lock-free ``ready`` flag —
        this runs on the engine's per-call hot path, where taking the
        future's condition lock is measurable.  ``force`` (used by
        :meth:`drain`) falls back to the authoritative
        ``Future.done()`` to close the set-result-to-ready window."""
        key = id(function)
        entry = self._pending.get(key)
        if entry is None:
            return None
        _function, plan, job, smc_version, _credit0 = entry
        future = job.future
        if not job.ready and not (force and future.done()):
            return None
        del self._pending[key]
        try:
            unit, codegen_seconds = future.result()
        except UnsupportedFunction as reason:
            self._fail(function, str(reason), job.seconds)
            return None
        except CancelledError:
            # Service shut down under us: forget the request; a later
            # promotion simply compiles online.
            return None
        except Exception as error:
            self._fail(function,
                       "tier-2 compile error: {0}".format(error),
                       job.seconds)
            return None
        if function.smc_version != smc_version:
            # SMC replaced the body while the job was in flight; the
            # built unit describes dead code.  Drop it without pinning
            # — the new body gets a fresh promotion run.
            self.stats.stale_drops += 1
            return None
        self._install(function, plan, unit, job.seconds,
                      codegen_seconds)
        wait = time.perf_counter() - job.enqueued_at
        self.stats.swap_ins += 1
        self.stats.swap_wait_seconds += wait
        if observe.enabled():
            observe.counter("tier2.swap_ins", 1)
            observe.histogram("tier2.swap_wait_seconds", wait,
                              function=function.name)
        flight = observe.flight()
        if flight is not None:
            flight.record("tier2.swap_in", function=function.name,
                          wait_seconds=round(wait, 9), kind=unit.kind)
        return unit

    def _escalate(self, function: Function,
                  reason: str = "escalated"
                  ) -> Optional[CompiledUnit]:
        """Stop waiting on a deferred build: cancel the queued job and
        compile inline.  Called when a pending function proves hot —
        burning more tier-1 steps than the compile itself would cost —
        so idle-time deferral has become a loss.  A no-op (returns
        None) when the job is already building; its result lands via
        the normal poll."""
        key = id(function)
        entry = self._pending.get(key)
        if entry is None:
            return None
        job = entry[2]
        if not job.future.cancel():
            return None
        del self._pending[key]
        self.stats.escalations += 1
        if observe.enabled():
            observe.counter("tier2.escalations", 1)
        flight = observe.flight()
        if flight is not None:
            flight.record("tier2.promote", function=function.name,
                          reason=reason)
        return self._compile(function)

    # -- tier 3: hosted native promotion --------------------------------
    #
    # Functions that stay hot *inside* their tier-2 units (step credit
    # above tier3_threshold, accumulated by the engine's tier-2 driver
    # through credit_tier3) are translated with the offline FunctionJIT
    # pipeline and executed by the hosted machine-code executor
    # (machine_sim._run_hosted).  The executor speaks the same yield
    # protocol as tier-2 generators, so the engine drives it with an
    # almost identical driver; a deliverable trap abandons the native
    # activation ("deopt") and the function is pinned back to tier 2.

    def _tier3_target_info(self):
        """The I-ISA back end used for hosted translation, sized to the
        module's pointer width so lowered address arithmetic agrees
        with the interpreter's memory layout."""
        if self._tier3_target is None:
            from repro.targets import TARGET_FACTORIES
            factory = TARGET_FACTORIES[self.tier3_target_name]
            self._tier3_target = factory(
                pointer_size=self.target.pointer_size)
        return self._tier3_target

    def credit_tier3(self, function: Function, steps: int) -> None:
        """Credit architectural steps burned inside tier-2 activations
        of *function* (called by the engine's tier-2 driver on every
        unit return); enough accumulated heat promotes the function to
        the native tier-3 pipeline."""
        key = id(function)
        self._credit3[key] = self._credit3.get(key, 0) + steps

    def _lookup3(self, function: Function):
        """The tier-3 arm of :meth:`lookup`: return an installed hosted
        unit, promote a function whose tier-2 step credit crossed the
        threshold, or None to stay on tier 2 (or below)."""
        key = id(function)
        unit = self._units3.get(key)
        if unit is not None:
            if unit.smc_version == function.smc_version:
                return unit
            self.invalidate(function)
            return None
        if key in self._pinned3:
            return None
        if key in self._pending3:
            return self._poll3(function)
        if self.tier3_threshold and \
                self._credit3.get(key, 0) < self.tier3_threshold:
            return None
        flight = observe.flight()
        if flight is not None:
            flight.record("tier3.promote", function=function.name,
                          step_credit=self._credit3.get(key, 0))
        if self.async_compile \
                and function.name not in self._preloaded3:
            return self._submit3(function)
        return self._compile3(function)

    def _build3(self, function: Function):
        """Build (or warm-load) the hosted unit for *function* —
        thread-safe: only reads the module, the function body, and the
        (resolved) back end.  Returns ``(unit, warm)``; raises
        :class:`machine_sim.UnsupportedHosted` for bodies the hosted
        executor cannot honour exactly."""
        from repro.execution.machine_sim import (
            Tier3Unit,
            build_tier3_unit,
        )
        warm = self._preloaded3.get(function.name)
        if warm is not None and function.smc_version == 0:
            machine, num_args, num_slots, block_steps, slot_by_site = \
                warm
            unit = Tier3Unit(function.name, machine, 0, num_args,
                             num_slots, block_steps, slot_by_site,
                             backend=self.tier3_backend)
            return unit, True
        unit = build_tier3_unit(function, self.module,
                                self._tier3_target_info(),
                                backend=self.tier3_backend)
        return unit, False

    def _install3(self, function: Function, unit, warm: bool,
                  elapsed: float):
        """Book a built hosted unit into the cache (engine thread)."""
        self._units3[id(function)] = unit
        self.stats.tier3_compiled += 1
        self.stats.tier3_compile_seconds += elapsed
        if unit.backend == "threaded":
            self.stats.tier3_threaded_units += 1
        else:
            self.stats.tier3_step_units += 1
        if unit.degraded:
            self.stats.tier3_degraded += 1
        if warm:
            self.stats.tier3_warm += 1
        else:
            self._dirty3 = True
        if observe.enabled():
            observe.counter("tier3.functions_compiled", 1)
            observe.counter("tier3.backend." + unit.backend, 1)
        flight = observe.flight()
        if flight is not None:
            flight.record("tier3.compile.end", function=function.name,
                          kind="tier3", seconds=round(elapsed, 9),
                          warm=bool(warm))
            flight.record("tier3.backend", function=function.name,
                          backend=unit.backend,
                          degraded=bool(unit.degraded))
        return unit

    def _fail3(self, function: Function, reason: str,
               elapsed: float) -> None:
        """Book a failed hosted translation: pin the function to tier 2
        and close out the flight record (engine thread)."""
        self.pin3(function, reason)
        self.stats.tier3_compile_seconds += elapsed
        flight = observe.flight()
        if flight is not None:
            flight.record("tier3.compile.end",
                          function=function.name, kind="error",
                          seconds=round(elapsed, 9), warm=False)

    def _compile3(self, function: Function):
        from repro.execution.machine_sim import UnsupportedHosted
        started = time.perf_counter()
        flight = observe.flight()
        if flight is not None:
            flight.record("tier3.compile.begin",
                          function=function.name)
        try:
            unit, warm = self._build3(function)
        except UnsupportedHosted as reason:
            self._fail3(function, str(reason),
                        time.perf_counter() - started)
            return None
        except Exception as error:  # pragma: no cover - defensive
            # A translation defect must never take the program down:
            # the tier-2 unit (and below it tier 1) stays correct.
            self._fail3(function,
                        "tier-3 compile error: {0}".format(error),
                        time.perf_counter() - started)
            return None
        return self._install3(function, unit, warm,
                              time.perf_counter() - started)

    def _submit3(self, function: Function):
        """Hand a tier-3 promotion to the background service.  The
        caller keeps running its tier-2 unit; _poll3 installs the
        native unit at a later call boundary."""
        service = self._compile_service()
        self._tier3_target_info()  # resolve on the engine thread
        self.stats.async_enqueued += 1
        if observe.enabled():
            observe.counter("tier2.async_enqueued", 1)
        flight = observe.flight()
        if flight is not None:
            flight.record("tier3.compile.begin",
                          function=function.name)
        job = service.submit(
            lambda: self._build3(function),
            priority=self._credit3.get(id(function), 0),
            label="tier3:" + function.name)
        self._pending3[id(function)] = (
            function, job, function.smc_version)
        return None

    def _poll3(self, function: Function, force: bool = False):
        """Check an in-flight tier-3 build at a safe point and install
        its unit if the future has resolved (engine thread)."""
        from repro.execution.machine_sim import UnsupportedHosted
        key = id(function)
        entry = self._pending3.get(key)
        if entry is None:
            return None
        _function, job, smc_version = entry
        future = job.future
        if not job.ready and not (force and future.done()):
            return None
        del self._pending3[key]
        try:
            unit, warm = future.result()
        except UnsupportedHosted as reason:
            self._fail3(function, str(reason), job.seconds)
            return None
        except CancelledError:
            return None
        except Exception as error:
            self._fail3(function,
                        "tier-3 compile error: {0}".format(error),
                        job.seconds)
            return None
        if function.smc_version != smc_version:
            self.stats.stale_drops += 1
            return None
        return self._install3(function, unit, warm, job.seconds)

    def pin3(self, function: Function, reason: str) -> None:
        """Permanently route *function* back to tier 2 (until SMC
        replaces its body)."""
        if id(function) not in self._pinned3:
            self._pinned3[id(function)] = reason
            self.stats.tier3_pins += 1
            if observe.enabled():
                observe.counter("tier3.pins", 1, reason=reason[:40])
            flight = observe.flight()
            if flight is not None:
                flight.record("tier3.pin", function=function.name,
                              reason=reason[:120])

    def pinned3_reason(self, function: Function) -> Optional[str]:
        return self._pinned3.get(id(function))

    def note_deopt3(self, function: Function) -> None:
        """A deliverable trap abandoned a native activation (the engine
        rebuilt a tier-1 frame from the deopt shadow).  Drop and pin
        the hosted unit — trap-heavy code re-runs at most at tier 2,
        whose own fault handling is exact — and demote the tier-2 unit
        the usual way."""
        if self._units3.pop(id(function), None) is not None:
            self.stats.tier3_deopts += 1
        self.pin3(function, "deopt: trap delivered mid-execution")
        self.note_deopt(function)

    # -- pinning / deopt / invalidation --------------------------------

    def pin(self, function: Function, reason: str) -> None:
        """Permanently route *function* to tier 1 (until SMC replaces
        its body)."""
        if id(function) not in self._pinned:
            self._pinned[id(function)] = reason
            self.stats.pins += 1
            if observe.enabled():
                observe.counter("tier2.pins", 1, reason=reason[:40])
            flight = observe.flight()
            if flight is not None:
                flight.record("tier2.pin", function=function.name,
                              reason=reason[:120])

    def pinned_reason(self, function: Function) -> Optional[str]:
        return self._pinned.get(id(function))

    def note_deopt(self, function: Function) -> None:
        """A trap was delivered inside a tier-2 activation.  The active
        generator completes precisely in place (its own fault handling
        is exact); the *function* is demoted so future invocations take
        the tier-1 path, where trap-heavy code belongs."""
        if id(function) in self._units:
            self._units.pop(id(function), None)
            self.stats.deopts += 1
            flight = observe.flight()
            if flight is not None:
                flight.record("tier2.deopt", function=function.name,
                              reason="trap delivered mid-execution")
            self.pin(function, "deopt: trap delivered mid-execution")
            if observe.enabled():
                observe.counter("tier2.deopts", 1)

    def invalidate(self, function: Function) -> None:
        """SMC invalidation — mirrors ``DecodeCache``: drop the unit,
        forget counters and pins (the new body is different code)."""
        if self._units.pop(id(function), None) is not None:
            self.stats.invalidations += 1
            if observe.enabled():
                observe.counter("tier2.invalidations", 1)
            flight = observe.flight()
            if flight is not None:
                flight.record("smc.invalidate", layer="tier2",
                              reason="smc-replace",
                              function=function.name)
        if self._units3.pop(id(function), None) is not None:
            self.stats.tier3_invalidations += 1
            if observe.enabled():
                observe.counter("tier3.invalidations", 1)
            flight = observe.flight()
            if flight is not None:
                flight.record("smc.invalidate", layer="tier3",
                              reason="smc-replace",
                              function=function.name)
        self._counts.pop(id(function), None)
        self._step_credit.pop(id(function), None)
        self._pinned.pop(id(function), None)
        self._preloaded.pop(function.name, None)
        self._credit3.pop(id(function), None)
        self._pinned3.pop(id(function), None)
        self._pending3.pop(id(function), None)
        self._preloaded3.pop(function.name, None)
        # An in-flight background job now describes dead code; unhook
        # it so its result is never installed (the worker's future
        # resolves unobserved — _poll's smc_version check is a second
        # line of defence for jobs polled before this ran).
        self._pending.pop(id(function), None)
        if self._profile is not None:
            # The profile described the replaced body; a layout formed
            # from it would mis-guide the new one.
            name = function.name
            for stale in [key for key in self._profile.counts
                          if key[0] == name]:
                del self._profile.counts[stale]

    def listener(self):
        """A callback for ``Interpreter.smc_listeners``."""
        return self.invalidate

    # -- persistence through the storage API ---------------------------

    def serialize(self, module_key: str) -> bytes:
        """All current translations as a JSON blob keyed by engine
        version, target fingerprint, module hash, and per-function
        content hashes."""
        functions = {}
        for unit in self._units.values():
            if unit.kind == "profiling":
                # Profiling sources reference the per-unit counter
                # list; they are a transient bootstrap, never persisted.
                continue
            entry = {
                "hash": unit.func_hash,
                "num_slots": unit.num_slots,
                "func_refs": {alias: name for alias, name
                              in self._refs_of(unit)},
                "source": unit.source,
                "kind": unit.kind,
                "layout_hash": unit.layout_hash,
                "side_exits": [list(pair) for pair in unit.side_exits],
            }
            if unit.code is not None:
                # .pyc-style: same-interpreter warm starts skip
                # compile(); the source stays as the portable fallback.
                entry["code"] = base64.b64encode(
                    marshal.dumps(unit.code)).decode("ascii")
            functions[unit.function.name] = entry
        # Keep warm entries we did not recompile this run.
        for name, (fhash, source, func_refs, num_slots, code, meta) \
                in self._preloaded.items():
            if name in functions:
                continue
            entry = {
                "hash": fhash,
                "num_slots": num_slots,
                "func_refs": func_refs,
                "source": source,
                "kind": meta.get("kind", "dispatch"),
                "layout_hash": meta.get("layout_hash", "-"),
                "side_exits": [list(pair)
                               for pair in meta.get("side_exits", [])],
            }
            if code is not None:
                entry["code"] = base64.b64encode(
                    marshal.dumps(code)).decode("ascii")
            functions[name] = entry
        blob = {
            "version": TIER2_VERSION,
            "module": module_key,
            "pointer_size": self.target.pointer_size,
            "endianness": self.target.endianness,
            "cache_tag": sys.implementation.cache_tag,
            "functions": functions,
        }
        return json.dumps(blob, sort_keys=True).encode("utf-8")

    @staticmethod
    def _refs_of(unit: CompiledUnit) -> List[Tuple[str, str]]:
        refs = []
        for name, value in unit.factory.__globals__.items():
            if isinstance(value, Function) and name.startswith("__fn"):
                refs.append((name, value.name))
        return refs

    def load_serialized(self, data: bytes, module_key: str) -> int:
        """Validate and index a persisted translation blob; returns the
        number of usable per-function entries.  Raises ``ValueError``
        on any corrupt, truncated, stale, or mismatched blob — callers
        fall back to online translation."""
        try:
            blob = json.loads(data.decode("utf-8"))
        except Exception as error:
            raise ValueError("corrupt tier-2 cache: {0}".format(error))
        if not isinstance(blob, dict):
            raise ValueError("corrupt tier-2 cache: not an object")
        if blob.get("version") != TIER2_VERSION:
            raise ValueError("tier-2 cache version mismatch")
        if blob.get("module") != module_key:
            raise ValueError("tier-2 cache is for a different module")
        if blob.get("pointer_size") != self.target.pointer_size \
                or blob.get("endianness") != self.target.endianness:
            raise ValueError("tier-2 cache target fingerprint mismatch")
        functions = blob.get("functions")
        if not isinstance(functions, dict):
            raise ValueError("corrupt tier-2 cache: missing functions")
        # Marshalled bytecode is only trusted from the exact same
        # Python build (like .pyc); otherwise the source is recompiled.
        code_ok = blob.get("cache_tag") == sys.implementation.cache_tag
        loaded = 0
        for name, entry in functions.items():
            try:
                fhash = entry["hash"]
                source = entry["source"]
                func_refs = dict(entry["func_refs"])
                num_slots = int(entry["num_slots"])
                meta = {
                    "kind": str(entry.get("kind", "dispatch")),
                    "layout_hash": str(entry.get("layout_hash", "-")),
                    "side_exits": [tuple(pair) for pair
                                   in entry.get("side_exits", [])],
                }
                code = None
                if code_ok and "code" in entry:
                    code = marshal.loads(
                        base64.b64decode(entry["code"]))
            except Exception as error:
                raise ValueError(
                    "corrupt tier-2 cache entry {0!r}: {1}".format(
                        name, error))
            if not isinstance(source, str) or not source:
                raise ValueError(
                    "corrupt tier-2 cache entry {0!r}: empty source"
                    .format(name))
            self._preloaded[name] = (fhash, source, func_refs,
                                     num_slots, code, meta)
            loaded += 1
        return loaded

    def serialize3(self, module_key: str) -> bytes:
        """All current hosted translations as a JSON blob: the machine
        code rides in a single serialized :class:`NativeModule`, with
        the per-function deopt metadata (V-ABI slot map, step charges)
        alongside it."""
        from repro.targets.native import NativeModule, serialize_native
        target = self._tier3_target_info()
        native = NativeModule(target, module_key)
        functions = {}
        for unit in self._units3.values():
            if unit.smc_version != 0:
                # Units built from SMC-mutated bodies only match this
                # process's mutation history; never persisted.
                continue
            native.add_function(unit.machine)
            functions[unit.name] = {
                "num_args": unit.num_args,
                "num_slots": unit.num_slots,
                "block_steps": unit.block_steps,
                "slot_by_site": unit.slot_by_site,
            }
        # Keep warm entries we did not recompile this run.
        for name, entry in self._preloaded3.items():
            if name in functions:
                continue
            machine, num_args, num_slots, block_steps, slot_by_site = \
                entry
            native.add_function(machine)
            functions[name] = {
                "num_args": num_args,
                "num_slots": num_slots,
                "block_steps": block_steps,
                "slot_by_site": slot_by_site,
            }
        blob = {
            "version": TIER3_VERSION,
            "module": module_key,
            "target": target.name,
            "pointer_size": self.target.pointer_size,
            "endianness": self.target.endianness,
            "functions": functions,
            "native": serialize_native(native).decode("utf-8"),
        }
        return json.dumps(blob, sort_keys=True).encode("utf-8")

    def load_serialized3(self, data: bytes, module_key: str) -> int:
        """Validate and index a persisted tier-3 blob; returns the
        number of usable per-function entries.  Raises ``ValueError``
        on any corrupt, stale, or mismatched blob — callers fall back
        to online translation."""
        from repro.targets.native import deserialize_native
        try:
            blob = json.loads(data.decode("utf-8"))
        except Exception as error:
            raise ValueError("corrupt tier-3 cache: {0}".format(error))
        if not isinstance(blob, dict):
            raise ValueError("corrupt tier-3 cache: not an object")
        if blob.get("version") != TIER3_VERSION:
            raise ValueError("tier-3 cache version mismatch")
        if blob.get("module") != module_key:
            raise ValueError("tier-3 cache is for a different module")
        if blob.get("target") != self.tier3_target_name:
            raise ValueError("tier-3 cache is for a different target")
        if blob.get("pointer_size") != self.target.pointer_size \
                or blob.get("endianness") != self.target.endianness:
            raise ValueError("tier-3 cache target fingerprint mismatch")
        functions = blob.get("functions")
        native_text = blob.get("native")
        if not isinstance(functions, dict) \
                or not isinstance(native_text, str):
            raise ValueError("corrupt tier-3 cache: missing sections")
        try:
            native = deserialize_native(native_text.encode("utf-8"),
                                        self._tier3_target_info())
        except Exception as error:
            raise ValueError("corrupt tier-3 cache: {0}".format(error))
        loaded = 0
        for name, entry in functions.items():
            machine = native.functions.get(name)
            if machine is None:
                raise ValueError(
                    "corrupt tier-3 cache entry {0!r}: no machine code"
                    .format(name))
            try:
                num_args = int(entry["num_args"])
                num_slots = int(entry["num_slots"])
                block_steps = {str(block): int(charge) for block, charge
                               in entry["block_steps"].items()}
                slot_by_site = {str(site): int(slot) for site, slot
                                in entry["slot_by_site"].items()}
            except Exception as error:
                raise ValueError(
                    "corrupt tier-3 cache entry {0!r}: {1}".format(
                        name, error))
            self._preloaded3[name] = (machine, num_args, num_slots,
                                      block_steps, slot_by_site)
            loaded += 1
        return loaded

    @staticmethod
    def _flight_cache(event: str, cache: str = TIER2_CACHE_NAME,
                      **fields) -> None:
        flight = observe.flight()
        if flight is not None:
            flight.record("llee.cache", cache=cache, event=event,
                          **fields)

    def attach_storage(self, storage, key: str,
                       cache_name: str = TIER2_CACHE_NAME,
                       executable_timestamp: Optional[float] = None
                       ) -> bool:
        """Wire this cache to a Section-4.1 storage API and try a warm
        start.  Returns True on a validated hit.  Every failure mode —
        missing, corrupt, truncated, stale, version-mismatched — logs
        ``llee.cache.invalid`` (or a plain miss) and degrades to online
        translation; persistence must never break execution."""
        self._storage = storage
        self._storage_cache = cache_name
        self._storage_key = key
        # The profile snapshot rides next to the translation blob and
        # loads first: warm compiles below need the trace layouts it
        # implies to validate per-function layout hashes.
        self._load_profile_snapshot()
        if self.tier3:
            self._load_tier3_blob()
        try:
            data = storage.read(cache_name, key)
        except Exception:
            observe.counter("llee.cache.invalid", 1, target="tier2",
                            reason="read-error")
            observe.counter("llee.cache.miss", 1, target="tier2")
            self._flight_cache("invalid", cache=cache_name,
                               reason="read-error")
            return False
        if not data:
            observe.counter("llee.cache.miss", 1, target="tier2")
            self._flight_cache("miss", cache=cache_name)
            return False
        if executable_timestamp is not None:
            try:
                cached_at = storage.timestamp(cache_name, key)
            except Exception:
                cached_at = None
            if cached_at is None or cached_at < executable_timestamp:
                observe.counter("llee.cache.invalid", 1, target="tier2",
                                reason="stale")
                observe.counter("llee.cache.miss", 1, target="tier2")
                self._flight_cache("invalid", cache=cache_name,
                                   reason="stale")
                return False
        try:
            self.load_serialized(data, key)
        except ValueError as error:
            observe.counter("llee.cache.invalid", 1, target="tier2",
                            reason=str(error)[:60])
            observe.counter("llee.cache.miss", 1, target="tier2")
            self._flight_cache("invalid", cache=cache_name,
                               reason=str(error)[:60])
            self._preloaded.clear()
            return False
        self.translation_cache_hit = True
        observe.counter("llee.cache.hit", 1, target="tier2")
        self._flight_cache("hit", cache=cache_name,
                           functions=len(self._preloaded))
        return True

    def _load_profile_snapshot(self) -> bool:
        """Best-effort load of the persisted profile snapshot: on a
        hit, ``prime_from_profile`` runs automatically so promotion
        counters and superblock layouts are warm on run 2 without
        re-profiling."""
        try:
            data = self._storage.read(PROFILE_CACHE_NAME,
                                      self._storage_key)
        except Exception:
            data = None
        if not data:
            observe.counter("llee.profile.miss", 1)
            self._flight_cache("miss", cache=PROFILE_CACHE_NAME)
            return False
        from repro.llee.profile import Profile
        try:
            profile = Profile.from_json(data)
        except ValueError as error:
            observe.counter("llee.profile.invalid", 1,
                            reason=str(error)[:60])
            self._flight_cache("invalid", cache=PROFILE_CACHE_NAME,
                               reason=str(error)[:60])
            return False
        self.prime_from_profile(profile)
        self.profile_cache_hit = True
        observe.counter("llee.profile.hit", 1)
        self._flight_cache("hit", cache=PROFILE_CACHE_NAME)
        return True

    def _load_tier3_blob(self) -> bool:
        """Best-effort warm start for the hosted tier: a validated hit
        lets promotion skip the whole translation pipeline."""
        try:
            data = self._storage.read(TIER3_CACHE_NAME,
                                      self._storage_key)
        except Exception:
            data = None
        if not data:
            observe.counter("llee.cache.miss", 1, target="tier3")
            self._flight_cache("miss", cache=TIER3_CACHE_NAME)
            return False
        try:
            loaded = self.load_serialized3(data, self._storage_key)
        except ValueError as error:
            observe.counter("llee.cache.invalid", 1, target="tier3",
                            reason=str(error)[:60])
            observe.counter("llee.cache.miss", 1, target="tier3")
            self._flight_cache("invalid", cache=TIER3_CACHE_NAME,
                               reason=str(error)[:60])
            self._preloaded3.clear()
            return False
        self.tier3_cache_hit = True
        observe.counter("llee.cache.hit", 1, target="tier3")
        self._flight_cache("hit", cache=TIER3_CACHE_NAME,
                           functions=loaded)
        return True

    def flush_storage(self) -> bool:
        """Write new translations (and any newly collected profile
        counts) back through the storage API — no-op when nothing
        changed or no storage is attached.  Best-effort, like the
        native cache write-back."""
        # Land any background-compiled units first so a short-lived
        # process still persists (and reports) everything it queued.
        self.drain()
        if self._storage is not None and self._profile_dirty \
                and self._profile is not None:
            try:
                self._storage.write(PROFILE_CACHE_NAME,
                                    self._storage_key,
                                    self._profile.to_json())
                self._profile_dirty = False
                observe.counter("llee.profile.store", 1)
                self._flight_cache("store", cache=PROFILE_CACHE_NAME)
            except Exception:
                pass
        if self._storage is None:
            return False
        stored = False
        if self._dirty:
            try:
                self._storage.write(self._storage_cache,
                                    self._storage_key,
                                    self.serialize(self._storage_key))
                self._dirty = False
                stored = True
                observe.counter("llee.cache.store", 1, target="tier2")
                self._flight_cache("store", cache=self._storage_cache)
            except Exception:
                pass
        if self._dirty3:
            try:
                self._storage.write(TIER3_CACHE_NAME,
                                    self._storage_key,
                                    self.serialize3(self._storage_key))
                self._dirty3 = False
                stored = True
                observe.counter("llee.cache.store", 1, target="tier3")
                self._flight_cache("store", cache=TIER3_CACHE_NAME)
            except Exception:
                pass
        return stored
