"""Program images: a module materialized into simulated memory.

Loading a module assigns every function a code address (so function
pointers are ordinary pointer-sized integers, castable like any other
pointer) and lays out every global variable, writing its initializer with
the target's endianness and pointer size.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.execution.memory import FUNCTION_BASE, Memory
from repro.ir import types, values
from repro.ir.module import Function, GlobalVariable, Module
from repro.ir.values import (
    Constant,
    ConstantAggregate,
    ConstantBool,
    ConstantFP,
    ConstantInt,
    ConstantNull,
    ConstantZero,
    UndefValue,
)

_FUNCTION_STRIDE = 16


class ProgramImage:
    """A loaded module: symbol addresses plus initialized memory."""

    def __init__(self, module: Module, memory: Memory):
        self.module = module
        self.memory = memory
        self.function_addresses: Dict[str, int] = {}
        self.functions_by_address: Dict[int, Function] = {}
        self.global_addresses: Dict[str, int] = {}
        self._layout_functions()
        self._layout_globals()

    # -- layout ----------------------------------------------------------------

    def _layout_functions(self) -> None:
        next_address = FUNCTION_BASE
        for function in self.module.functions.values():
            self.function_addresses[function.name] = next_address
            self.functions_by_address[next_address] = function
            next_address += _FUNCTION_STRIDE

    def _layout_globals(self) -> None:
        target = self.memory.target
        # Allocate all addresses first so initializers may refer to any
        # global (mutual references between globals are legal).
        for variable in self.module.globals.values():
            size = target.size_of(variable.value_type)
            align = target.align_of(variable.value_type)
            address = self.memory.allocate_global(size, align)
            self.global_addresses[variable.name] = address
        for variable in self.module.globals.values():
            if variable.initializer is not None:
                self.write_constant(
                    self.global_addresses[variable.name],
                    variable.value_type, variable.initializer)

    def register_function(self, function: Function) -> int:
        """Self-extending code (Section 3.4): give a function added to
        the module *after* loading its code address, so it is callable
        through pointers like any other.  Idempotent."""
        existing = self.function_addresses.get(function.name)
        if existing is not None:
            return existing
        address = FUNCTION_BASE + _FUNCTION_STRIDE * len(
            self.function_addresses)
        self.function_addresses[function.name] = address
        self.functions_by_address[address] = function
        return address

    # -- queries ---------------------------------------------------------------

    def address_of(self, symbol: str) -> int:
        if symbol in self.global_addresses:
            return self.global_addresses[symbol]
        if symbol in self.function_addresses:
            return self.function_addresses[symbol]
        raise KeyError("no symbol {0!r} in image".format(symbol))

    def function_at(self, address: int) -> Optional[Function]:
        return self.functions_by_address.get(address)

    # -- initializer writing ------------------------------------------------------

    def constant_value(self, constant: Constant):
        """Evaluate a scalar constant to its runtime representation."""
        if isinstance(constant, ConstantInt):
            return constant.value
        if isinstance(constant, ConstantBool):
            return constant.value
        if isinstance(constant, ConstantFP):
            return constant.value
        if isinstance(constant, ConstantNull):
            return 0
        if isinstance(constant, UndefValue):
            return _zero_for(constant.type)
        raise TypeError("not a scalar constant: {0!r}".format(constant))

    def operand_address(self, symbol) -> int:
        """Address of a Function or GlobalVariable operand."""
        return self.address_of(symbol.name)

    def write_constant(self, address: int, type_: types.Type,
                       constant: Constant) -> None:
        """Write *constant* of *type_* into memory at *address*."""
        memory = self.memory
        target = memory.target
        if isinstance(constant, ConstantZero):
            memory.write_bytes(address,
                               b"\x00" * target.size_of(type_))
            return
        if isinstance(constant, ConstantAggregate):
            if isinstance(type_, types.ArrayType):
                stride = target.size_of(type_.element)
                for index, element in enumerate(constant.elements):
                    self.write_constant(address + index * stride,
                                        type_.element, element)
                return
            if isinstance(type_, types.StructType):
                offsets = target.struct_offsets(type_)
                for offset, field, element in zip(
                        offsets, type_.fields, constant.elements):
                    self.write_constant(address + offset, field, element)
                return
            raise TypeError("aggregate constant for non-aggregate type")
        if isinstance(constant, (Function, GlobalVariable)):
            memory.write_typed(address, constant.type,
                               self.address_of(constant.name))
            return
        memory.write_typed(address, type_, self.constant_value(constant))


def _zero_for(type_: types.Type):
    if type_.is_floating_point:
        return 0.0
    if type_.is_bool:
        return False
    return 0
