"""Execution engines: the LLVA interpreter and the native machine
simulator, sharing one memory model and the Section 3.3 exception model."""

from repro.execution.events import (
    ExecutionTrap,
    ExitRequest,
    TrapKind,
    UnwindSignal,
)
from repro.execution.fastpath import DecodeCache, FastInterpreter
from repro.execution.interpreter import (
    ExecutionResult,
    Interpreter,
    StepLimitExceeded,
)
from repro.execution.memory import Memory
from repro.execution.sanitizer import (
    FaultReport,
    SanitizedMemory,
    SanitizerFault,
    ShadowSanitizer,
)
from repro.execution.tier2 import CompiledUnit, Tier2Cache, Tier2Stats

__all__ = [
    "ExecutionTrap",
    "ExitRequest",
    "TrapKind",
    "UnwindSignal",
    "ExecutionResult",
    "DecodeCache",
    "FastInterpreter",
    "Interpreter",
    "StepLimitExceeded",
    "Memory",
    "FaultReport",
    "SanitizedMemory",
    "SanitizerFault",
    "ShadowSanitizer",
    "CompiledUnit",
    "Tier2Cache",
    "Tier2Stats",
]
