"""Simulated memory for LLVA execution.

One flat virtual address space with the three regions the V-ISA
distinguishes (Section 3.1: "memory is partitioned into stack, heap, and
global memory, and all memory is explicitly allocated"):

* globals at :data:`GLOBAL_BASE`,
* heap growing upward from :data:`HEAP_BASE`,
* stack growing downward from :data:`STACK_TOP`.

All accesses are bounds-checked; a reference outside an allocated region
(including the unmapped null page) is a memory fault — the condition the
paper's ``ExceptionsEnabled`` bit controls for ``load``/``store``.

Scalar encoding honours the :class:`~repro.ir.types.TargetData` endianness
and pointer size, so the same program state serializes differently on the
two V-ABI configurations — which the differential tests exercise.
"""

from __future__ import annotations

import bisect as _bisect
import struct as _struct
from typing import Dict, List, Tuple

from repro.execution.events import ExecutionTrap, TrapKind
from repro.ir import types
from repro.ir.types import TargetData, Type

GLOBAL_BASE = 0x0001_0000
FUNCTION_BASE = 0x0000_1000  # addresses standing for functions
HEAP_BASE = 0x0100_0000
STACK_TOP = 0x7FFF_0000
DEFAULT_STACK_LIMIT = 8 * 1024 * 1024

_FP_FORMAT = {(4, "little"): "<f", (4, "big"): ">f",
              (8, "little"): "<d", (8, "big"): ">d"}


class MemoryError_(ExecutionTrap):
    """A memory fault, as an :class:`ExecutionTrap` subclass."""

    def __init__(self, detail: str, address: int):
        super().__init__(TrapKind.MEMORY_FAULT, detail, address)


_GLOBAL_ARENA_LIMIT = 32 * 1024 * 1024
_HEAP_CHUNK = 4 * 1024 * 1024


class Memory:
    """Flat byte-addressable memory built from three growable arenas
    (globals, heap, stack) plus explicitly mapped extra pages.

    Arenas keep every access O(1): the heap arena in particular grows in
    large chunks instead of one region per ``malloc`` (a program making
    thousands of allocations would otherwise pay a per-access scan).
    """

    #: Shadow-metadata hook; :class:`SanitizedMemory` replaces this with
    #: a live :class:`~repro.execution.sanitizer.ShadowSanitizer`.  A
    #: class attribute so unsanitized instances pay nothing per access.
    san = None

    def __init__(self, target: TargetData,
                 stack_limit: int = DEFAULT_STACK_LIMIT):
        self.target = target
        self._global_cursor = GLOBAL_BASE
        self._global_arena = bytearray(64 * 1024)
        self._heap_cursor = HEAP_BASE
        self._heap_arena = bytearray(_HEAP_CHUNK)
        self._free_lists: Dict[int, List[int]] = {}
        self._alloc_sizes: Dict[int, int] = {}
        # Freed-but-not-reallocated blocks, kept unmapped: sorted start
        # addresses plus start -> size.  Empty for programs that never
        # free, so the hot-path guard is a falsy check.
        self._freed_starts: List[int] = []
        self._freed_sizes: Dict[int, int] = {}
        self.stack_pointer = STACK_TOP
        self.stack_limit = stack_limit
        self._stack_arena = bytearray(stack_limit)
        self._stack_base = STACK_TOP - stack_limit
        # Extra regions (llva.pagetable.map): few, scanned linearly.
        self._regions: List[Tuple[int, bytearray]] = []
        #: Cumulative heap bytes ever allocated (monotonic).
        self.heap_allocated = 0
        #: Heap bytes currently live (allocated minus freed).
        self.heap_live = 0

    # -- region management ---------------------------------------------------

    def add_region(self, base: int, size: int) -> None:
        """Map a fresh zero-filled region at [base, base+size)."""
        if size <= 0:
            raise ValueError("region size must be positive")
        self._regions.append((base, bytearray(size)))

    def _find_region(self, address: int,
                     size: int) -> Tuple[int, bytearray]:
        # Only addresses at or above the live stack pointer are mapped
        # stack; [_stack_base, stack_pointer) is unallocated headroom.
        if self.stack_pointer <= address \
                and address + size <= STACK_TOP:
            return self._stack_base, self._stack_arena
        if HEAP_BASE <= address \
                and address + size <= self._heap_cursor:
            if self._freed_starts:
                self._check_not_freed(address, size)
            return HEAP_BASE, self._heap_arena
        if GLOBAL_BASE <= address \
                and address + size <= self._global_cursor:
            return GLOBAL_BASE, self._global_arena
        for base, data in self._regions:
            if base <= address and address + size <= base + len(data):
                return base, data
        if self._stack_base <= address \
                and address + size <= STACK_TOP:
            raise MemoryError_(
                "access of {0} bytes at 0x{1:x} below the live stack "
                "pointer 0x{2:x}".format(size, address,
                                         self.stack_pointer), address)
        raise MemoryError_(
            "access of {0} bytes at 0x{1:x} outside mapped memory"
            .format(size, address), address)

    def _check_not_freed(self, address: int, size: int) -> None:
        """Fault if [address, address+size) touches a freed heap block."""
        starts = self._freed_starts
        i = _bisect.bisect_right(starts, address)
        if i and starts[i - 1] + self._freed_sizes[starts[i - 1]] \
                > address:
            raise MemoryError_(
                "access of {0} bytes at 0x{1:x} inside freed heap "
                "block 0x{2:x}".format(size, address, starts[i - 1]),
                address)
        if i < len(starts) and starts[i] < address + size:
            raise MemoryError_(
                "access of {0} bytes at 0x{1:x} spans freed heap "
                "block 0x{2:x}".format(size, address, starts[i]),
                address)

    def is_mapped(self, address: int, size: int = 1) -> bool:
        try:
            self._find_region(address, size)
            return True
        except MemoryError_:
            return False

    # -- raw bytes -------------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        base, data = self._find_region(address, size)
        offset = address - base
        return bytes(data[offset:offset + size])

    def write_bytes(self, address: int, payload: bytes) -> None:
        base, data = self._find_region(address, len(payload))
        offset = address - base
        data[offset:offset + len(payload)] = payload

    # -- typed access ------------------------------------------------------------

    def read_typed(self, address: int, type_: Type):
        """Load one scalar of *type_* from *address*."""
        size = self.target.size_of(type_)
        raw = self.read_bytes(address, size)
        if type_.is_pointer:
            return int.from_bytes(raw, self.target.endianness)
        if type_.is_bool:
            return raw[0] != 0
        if isinstance(type_, types.IntegerType):
            return int.from_bytes(raw, self.target.endianness,
                                  signed=type_.signed)
        if type_.is_floating_point:
            fmt = _FP_FORMAT[(size, self.target.endianness)]
            return _struct.unpack(fmt, raw)[0]
        raise MemoryError_("cannot load type {0}".format(type_), address)

    def write_typed(self, address: int, type_: Type, value) -> None:
        """Store one scalar of *type_* at *address*."""
        size = self.target.size_of(type_)
        if type_.is_pointer:
            raw = int(value).to_bytes(size, self.target.endianness)
        elif type_.is_bool:
            raw = b"\x01" if value else b"\x00"
        elif isinstance(type_, types.IntegerType):
            raw = int(value).to_bytes(size, self.target.endianness,
                                      signed=type_.signed)
        elif type_.is_floating_point:
            fmt = _FP_FORMAT[(size, self.target.endianness)]
            raw = _struct.pack(fmt, value)
        else:
            raise MemoryError_("cannot store type {0}".format(type_),
                               address)
        self.write_bytes(address, raw)

    def read_cstring(self, address: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string of up to *limit* bytes.

        A NUL landing exactly at position *limit* still terminates the
        string; the fault for a genuinely unterminated string reports
        the cursor that overran, not the start address.
        """
        out = bytearray()
        cursor = address
        while True:
            byte = self.read_bytes(cursor, 1)[0]
            if byte == 0:
                return bytes(out)
            if len(out) >= limit:
                raise MemoryError_(
                    "unterminated string starting at 0x{0:x}"
                    .format(address), cursor)
            out.append(byte)
            cursor += 1

    # -- globals ----------------------------------------------------------------

    def allocate_global(self, size: int, align: int = 8) -> int:
        """Reserve global space (module loading)."""
        size = max(size, 1)
        cursor = _align_up(self._global_cursor, align)
        end = cursor + size
        if end - GLOBAL_BASE > len(self._global_arena):
            if end - GLOBAL_BASE > _GLOBAL_ARENA_LIMIT:
                raise MemoryError_("global arena exhausted", cursor)
            grown = max(len(self._global_arena) * 2, end - GLOBAL_BASE)
            self._global_arena.extend(
                bytearray(grown - len(self._global_arena)))
        self._global_cursor = end
        return cursor

    # -- heap --------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate heap memory (runtime ``malloc``)."""
        if size <= 0:
            size = 1
        size = _align_up(size, 16)
        free_list = self._free_lists.get(size)
        if free_list:
            address = free_list.pop()
            # Remap the block before touching it, then zero it for
            # determinism.
            self._remove_freed(address)
            self.write_bytes(address, b"\x00" * size)
        else:
            address = self._heap_cursor
            end = address + size - HEAP_BASE
            if end > len(self._heap_arena):
                grow = _align_up(end - len(self._heap_arena),
                                 _HEAP_CHUNK)
                self._heap_arena.extend(bytearray(grow))
            self._heap_cursor += size
        self._alloc_sizes[address] = size
        self.heap_allocated += size
        self.heap_live += size
        return address

    def free(self, address: int) -> None:
        """Release heap memory (runtime ``free``).

        The block stays unmapped — accesses fault — until a later
        ``malloc`` of the same size hands it back out.
        """
        if address == 0:
            return
        size = self._alloc_sizes.pop(address, None)
        if size is None:
            raise MemoryError_("free of unallocated address", address)
        self.heap_live -= size
        self._free_lists.setdefault(size, []).append(address)
        _bisect.insort(self._freed_starts, address)
        self._freed_sizes[address] = size

    def _remove_freed(self, address: int) -> None:
        del self._freed_sizes[address]
        i = _bisect.bisect_left(self._freed_starts, address)
        del self._freed_starts[i]

    # -- stack --------------------------------------------------------------------

    def push_frame(self, size: int, align: int = 16) -> int:
        """Extend the stack downward by *size* bytes; returns the new
        frame's base address (its lowest address)."""
        new_sp = _align_down(self.stack_pointer - size, align)
        if new_sp < self._stack_base:
            raise ExecutionTrap(TrapKind.STACK_OVERFLOW,
                                "stack limit {0} exceeded"
                                .format(self.stack_limit))
        self.stack_pointer = new_sp
        return new_sp

    def pop_frame(self, old_stack_pointer: int) -> None:
        self.stack_pointer = old_stack_pointer


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def _align_down(value: int, align: int) -> int:
    return value // align * align
